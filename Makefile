# Convenience targets for the AQL_Sched reproduction.

PYTHON ?= python3
JOBS ?= 4

.PHONY: install test lint bench bench-json bench-fleet-json bench-check fleet fleet-fast figures sweep examples resume-demo clean clean-cache

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# static analysis: simlint (always — stdlib only; whole-program passes
# gated on the committed findings baseline), then ruff and mypy when
# installed (CI installs both; config lives in pyproject.toml so local
# and CI runs agree)
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis --whole-program \
		--changed-only --baseline simlint-baseline.json \
		src/repro benchmarks
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else echo "lint: ruff not installed, skipping"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else echo "lint: mypy not installed, skipping"; fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# full benchmark run; rewrites the tracked BENCH_sim.json baseline
bench-json:
	$(PYTHON) benchmarks/run_bench.py

# full fleet benchmark; rewrites the tracked BENCH_fleet.json baseline
bench-fleet-json:
	$(PYTHON) benchmarks/run_bench.py --suite fleet

# CI smoke: quick runs gated against the committed baselines (25% floor)
bench-check:
	$(PYTHON) benchmarks/run_bench.py --quick --out BENCH_quick.json \
		--compare BENCH_sim.json
	$(PYTHON) benchmarks/run_bench.py --suite fleet --quick \
		--out BENCH_fleet_quick.json --compare BENCH_fleet.json

# the datacenter fleet comparison (64 hosts, >500 VMs at peak);
# `make fleet-fast` runs the 6-host smoke configuration instead
fleet:
	$(PYTHON) -m repro.experiments fleet --jobs $(JOBS)

fleet-fast:
	$(PYTHON) -m repro.experiments fleet --fast --jobs $(JOBS)

figures:
	$(PYTHON) -m repro.experiments all

sweep:
	$(PYTHON) -m repro.experiments all --jobs $(JOBS)

# crash/resume demonstration: SIGKILL a sweep after its 3rd
# checkpointed cell, then resume the run directory and verify the
# folded pickle is byte-identical to an uninterrupted run (the same
# drill CI's engine-smoke job and tests/test_exec_crash_resume.py run)
resume-demo:
	rm -rf .demo-runs ref.pickle resumed.pickle
	PYTHONPATH=src $(PYTHON) -m tests.engine_cells \
		--run-root .demo-runs/ref --cells 8 --jobs 2 --fold-out ref.pickle
	-PYTHONPATH=src REPRO_ENGINE_KILL_AFTER=3 $(PYTHON) -m tests.engine_cells \
		--run-root .demo-runs/crash --cells 8 --jobs 2
	@echo "--- killed after 3 cells; journal so far:"
	@wc -l .demo-runs/crash/run-*/journal.jsonl
	PYTHONPATH=src $(PYTHON) -m tests.engine_cells \
		--run-root .demo-runs/crash --cells 8 --jobs 2 --fold-out resumed.pickle
	cmp ref.pickle resumed.pickle
	PYTHONPATH=src $(PYTHON) -m repro.exec.events .demo-runs/crash/run-*/events.jsonl
	@echo "resume-demo: resumed fold is byte-identical to the clean run"
	rm -rf .demo-runs ref.pickle resumed.pickle

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/consolidated_cloud.py
	$(PYTHON) examples/calibrate_platform.py
	$(PYTHON) examples/online_recognition.py
	$(PYTHON) examples/schedule_trace.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info

clean-cache:
	rm -rf .repro_cache
