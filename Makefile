# Convenience targets for the AQL_Sched reproduction.

PYTHON ?= python3
JOBS ?= 4

.PHONY: install test lint bench bench-json bench-fleet-json bench-check fleet fleet-fast figures sweep examples clean clean-cache

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# static analysis: simlint (always — stdlib only), then ruff and mypy
# when installed (CI installs both; config lives in pyproject.toml so
# local and CI runs agree)
lint:
	PYTHONPATH=src $(PYTHON) -m repro.analysis src/repro benchmarks
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else echo "lint: ruff not installed, skipping"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else echo "lint: mypy not installed, skipping"; fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# full benchmark run; rewrites the tracked BENCH_sim.json baseline
bench-json:
	$(PYTHON) benchmarks/run_bench.py

# full fleet benchmark; rewrites the tracked BENCH_fleet.json baseline
bench-fleet-json:
	$(PYTHON) benchmarks/run_bench.py --suite fleet

# CI smoke: quick runs gated against the committed baselines (25% floor)
bench-check:
	$(PYTHON) benchmarks/run_bench.py --quick --out BENCH_quick.json \
		--compare BENCH_sim.json
	$(PYTHON) benchmarks/run_bench.py --suite fleet --quick \
		--out BENCH_fleet_quick.json --compare BENCH_fleet.json

# the datacenter fleet comparison (64 hosts, >500 VMs at peak);
# `make fleet-fast` runs the 6-host smoke configuration instead
fleet:
	$(PYTHON) -m repro.experiments fleet --jobs $(JOBS)

fleet-fast:
	$(PYTHON) -m repro.experiments fleet --fast --jobs $(JOBS)

figures:
	$(PYTHON) -m repro.experiments all

sweep:
	$(PYTHON) -m repro.experiments all --jobs $(JOBS)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/consolidated_cloud.py
	$(PYTHON) examples/calibrate_platform.py
	$(PYTHON) examples/online_recognition.py
	$(PYTHON) examples/schedule_trace.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info

clean-cache:
	rm -rf .repro_cache
