"""The long-lived experiment engine: phased, resumable, streaming.

:class:`Engine` replaces the one-shot batch sweep loop.  Each call to
:meth:`Engine.run` (one *sweep* — a flat figure sweep, one fleet
epoch, one fuzz batch) is planned into four explicit phases:

``plan``
    Compute every cell's content-addressed cache key and the sweep's
    plan fingerprint; open (or attach to) the run directory when
    checkpointing is configured.
``probe``
    Warm-path probe: satisfy cells from the run directory's checkpoint
    journal (``resumed``) or the result cache (``hit``) before any
    process is forked.
``execute``
    Fan the remaining cells out through the work-stealing queue
    (:mod:`repro.exec.queue`); journal every completion durably before
    reporting its checkpoint.
``fold``
    Assemble results back into cell order and emit the terminal
    ``Finished`` event.

The engine *narrates* all of this as a typed event stream
(:mod:`repro.exec.events`) consumed by pluggable sinks — TTY progress,
a JSONL event log, telemetry counters.  A killed run resumes from its
journal with only unfinished cells re-executed; because run ids are
content-addressed, re-running the same sweep against the same run root
resumes automatically, and ``--resume <run-id>`` pins a directory
explicitly.

One engine may run many sweeps (the fleet's bulk-synchronous epoch
barrier is exactly a sequence of ``run()`` calls — each barrier is a
phase boundary): the checkpoint journal is keyed by cache key, not by
position, so multi-sweep runs resume just as precisely.

Wall-clock note: SIM001 allowlists this module for the same reason it
allowlists the queue — per-cell wall timing is progress metadata,
never an input to any result.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.cells import Cell
from repro.exec.checkpoint import RunDir, resolve_run_root
from repro.exec.events import (
    CellFinished,
    CellScheduled,
    CheckpointWritten,
    Event,
    EventSink,
    Finished,
    Interrupted,
    JsonlSink,
    PhaseStarted,
    TTYSink,
)
from repro.exec.hashing import code_salt, fingerprint
from repro.exec.progress import ProgressHook
from repro.exec.queue import (
    Profile,
    Task,
    WorkerCrash,
    WorkerHealth,
    WorkStealingPool,
    fork_available,
    profiled_call,
)

ENV_JOBS = "REPRO_JOBS"
#: fault injection for the crash-consistency suite and the CI
#: engine-smoke job: SIGKILL the process after this many cells have
#: been journalled (cumulative over the engine lifetime)
ENV_KILL_AFTER = "REPRO_ENGINE_KILL_AFTER"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` > serial."""
    if jobs is None:
        # Worker-count selection: jobs=N ≡ jobs=1 is the engine's core
        # pinned guarantee (test_exec_equivalence), so parallelism is a
        # throughput knob with no reach into results.
        env = os.environ.get(ENV_JOBS, "").strip()  # simlint: disable=SIM008
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {env!r}"
                ) from exc
    if jobs is None:
        return 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _resolve_kill_after(kill_after: Optional[int]) -> Optional[int]:
    if kill_after is not None:
        return kill_after
    # Crash-injection knob for the resume tests: it kills the process
    # mid-run, it cannot change what a completed run computes (the
    # resumed fold is pinned byte-identical by test_exec_crash_resume).
    env = os.environ.get(ENV_KILL_AFTER, "").strip()  # simlint: disable=SIM008
    if not env:
        return None
    try:
        return int(env)
    except ValueError as exc:
        raise ValueError(
            f"{ENV_KILL_AFTER} must be an integer, got {env!r}"
        ) from exc


class Engine:
    """Run sweeps of :class:`Cell` through phases, durably, streaming."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        salt: Optional[str] = None,
        run_root: Union[str, Path, None] = None,
        run_id: Optional[str] = None,
        sinks: Sequence[EventSink] = (),
        kill_after: Optional[int] = None,
        schedule: Optional[Sequence[int]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self._salt = salt
        #: run root from the argument or ``REPRO_RUN_DIR``; None means
        #: no checkpointing (and, explicit-resume aside, no keys when
        #: the cache is off too)
        self.run_root = resolve_run_root(run_root)
        self._requested_run_id = run_id
        if run_id is not None and self.run_root is None:
            raise ValueError(
                "resuming a run needs a run root (--run-dir or "
                "REPRO_RUN_DIR)"
            )
        self._sinks: list[EventSink] = list(sinks)
        self.kill_after = _resolve_kill_after(kill_after)
        #: optional queue-order permutation (tests exercise steal
        #: interleavings with it); results always fold by index
        self.schedule = list(schedule) if schedule is not None else None
        self.run_dir: Optional[RunDir] = None
        self._journal_keys: set[str] = set()
        self._seq = 0
        self._completed = 0
        #: cumulative outcome tallies over the engine lifetime
        self.stats = {"ran": 0, "hit": 0, "resumed": 0, "sweeps": 0}
        self.last_results: list[Any] = []
        #: worker liveness ledger fed by queue heartbeats (read by the
        #: ops plane, never by the engine's own control flow)
        self.worker_health = WorkerHealth()
        #: fingerprint of the most recently planned sweep
        self.plan_fingerprint: Optional[str] = None
        #: whole-run cell-count hint from multi-sweep drivers (fleet
        #: epoch loops, fuzz campaigns) — see :meth:`expect_cells`
        self.cells_hint: Optional[int] = None
        #: cells already journalled when the run directory attached
        #: (the resume lineage /status reports)
        self.resumed_at_open = 0
        # Live status fold for /status, <run-dir>/status.json and the
        # flight recorder.  Imported lazily: repro.exec must keep no
        # import-time dependency on the ops layer above it.
        from repro.ops.status import RunStatus

        self.status = RunStatus(engine=self)

    # ------------------------------------------------------------------
    @property
    def salt(self) -> str:
        if self._salt is None:
            self._salt = code_salt()
        return self._salt

    def add_sink(self, sink: EventSink) -> None:
        self._sinks.append(sink)

    def expect_cells(self, total: Optional[int]) -> None:
        """Hint the whole-run cell total for /status ETAs.

        Multi-sweep drivers (the fleet's epoch loop, a fuzz campaign)
        know roughly how many cells the *entire* run will take; without
        the hint the ops plane can only project over the cells planned
        so far.  Observability metadata only — nothing in execution
        reads it.
        """
        self.cells_hint = total

    def _event(self, cls: Callable[..., Event], **fields: Any) -> Event:
        event = cls(seq=self._seq, **fields)
        self._seq += 1
        # the status fold observes every event at the source, so /status
        # is live even for callers that iterate stream() directly
        self.status.observe(event)
        return event

    # ------------------------------------------------------------------
    # run directory lifecycle
    # ------------------------------------------------------------------
    def _attach_run_dir(self, plan_fingerprint: str) -> None:
        """Open/attach the run directory on the first planned sweep."""
        if self.run_dir is not None or self.run_root is None:
            return
        self.run_dir = RunDir.open(
            self.run_root,
            salt=self.salt,
            plan_fingerprint=plan_fingerprint,
            run_id=self._requested_run_id,
        )
        self._journal_keys = self.run_dir.completed_keys()
        self._completed = len(self._journal_keys)
        self.resumed_at_open = len(self._journal_keys)
        # the run directory keeps its own event log, appended across
        # resumes so the full history of the run reads in one file
        self._sinks.append(JsonlSink(self.run_dir.events_path, append=True))
        # ... and a live status.json, rewritten atomically on every
        # checkpoint so a detached run stays inspectable without the
        # HTTP ops plane (lazy import: exec stays below repro.ops)
        from repro.ops.status import StatusWriter

        self._sinks.append(
            StatusWriter(self.run_dir.path / "status.json", self.status)
        )

    # ------------------------------------------------------------------
    # the phases, as an event generator
    # ------------------------------------------------------------------
    def stream(
        self, cells: Sequence[Cell], stage: str = ""
    ) -> Iterator[Event]:
        """Execute one sweep, yielding the typed event narration.

        ``self.last_results`` holds the folded results (cell order)
        once the generator is exhausted.  :meth:`run` is the plain
        call-and-collect wrapper.
        """
        cells = list(cells)
        total = len(cells)

        # ---- plan --------------------------------------------------
        # key computation and run-dir attach happen *before* the plan
        # event is emitted, so the run directory's own event log opens
        # with the full narration (including this first event)
        need_keys = self.cache is not None or self.run_root is not None
        keys: list[Optional[str]] = [
            cell.cache_key(self.salt) if need_keys else None
            for cell in cells
        ]
        if need_keys:
            self.plan_fingerprint = fingerprint(keys)
        if self.run_root is not None:
            assert self.plan_fingerprint is not None
            self._attach_run_dir(self.plan_fingerprint)
        yield self._event(
            PhaseStarted, phase="plan", stage=stage, cells=total
        )

        # ---- probe -------------------------------------------------
        yield self._event(
            PhaseStarted, phase="probe", stage=stage, cells=total
        )
        results: list[Any] = [None] * total
        counts = {"ran": 0, "hit": 0, "resumed": 0}
        pending: list[tuple[int, Cell, Optional[str]]] = []
        for index, (cell, key) in enumerate(zip(cells, keys)):
            outcome = None
            checkpointed = False
            if key is not None and self.run_dir is not None and (
                key in self._journal_keys
            ):
                entry = self.run_dir.results.get(key)
                if entry.hit:
                    results[index] = entry.value
                    outcome = "resumed"
            if outcome is None and key is not None and self.cache is not None:
                entry = self.cache.get(key)
                if entry.hit:
                    results[index] = entry.value
                    outcome = "hit"
                    # fold the hit into the run directory too, so a
                    # later resume is whole without the shared cache
                    if self.run_dir is not None and (
                        key not in self._journal_keys
                    ):
                        self._checkpoint(
                            key, index, cell, stage, 0.0, entry.value
                        )
                        checkpointed = True
            if outcome is None:
                pending.append((index, cell, key))
                continue
            counts[outcome] += 1
            yield self._event(
                CellFinished,
                index=index,
                total=total,
                label=cell.display,
                outcome=outcome,
                seconds=0.0,
                key=key,
                stage=stage,
            )
            if checkpointed:
                assert key is not None
                yield self._event(
                    CheckpointWritten,
                    key=key,
                    completed=self._completed,
                    total=total,
                    stage=stage,
                )

        # ---- execute ----------------------------------------------
        yield self._event(
            PhaseStarted, phase="execute", stage=stage, cells=len(pending)
        )
        if self.schedule is not None and pending:
            # a queue-order permutation over positions in the pending
            # list; anything the schedule leaves out keeps natural
            # order at the tail (results still fold by cell index)
            picked = [
                i for i in self.schedule if 0 <= i < len(pending)
            ]
            rest = [
                i for i in range(len(pending)) if i not in set(picked)
            ]
            queue_order = [pending[i] for i in dict.fromkeys(picked)]
            queue_order.extend(pending[i] for i in rest)
        else:
            queue_order = list(pending)
        for index, cell, key in queue_order:
            yield self._event(
                CellScheduled,
                index=index,
                label=cell.display,
                key=key,
                stage=stage,
            )
        by_index = {index: (cell, key) for index, cell, key in pending}
        workers = self._effective_jobs(len(pending))
        try:
            for index, value, seconds, profile in self._completions(
                queue_order, workers
            ):
                cell, key = by_index[index]
                if key is not None and self.cache is not None:
                    self.cache.put(key, value)
                results[index] = value
                counts["ran"] += 1
                profile = profile or {}
                yield self._event(
                    CellFinished,
                    index=index,
                    total=total,
                    label=cell.display,
                    outcome="ran",
                    seconds=seconds,
                    key=key,
                    stage=stage,
                    utime_s=profile.get("utime_s", 0.0),
                    stime_s=profile.get("stime_s", 0.0),
                    max_rss_kb=profile.get("max_rss_kb", 0.0),
                )
                if key is not None and self.run_dir is not None:
                    self._checkpoint(
                        key, index, cell, stage, seconds, value,
                        profile=profile,
                    )
                    yield self._event(
                        CheckpointWritten,
                        key=key,
                        completed=self._completed,
                        total=total,
                        stage=stage,
                    )
                    # fault injection: the yield above has been
                    # dispatched to every sink by the time we resume,
                    # so the kill lands exactly on a cell boundary
                    # with the checkpoint durable
                    self._maybe_kill()
        except KeyboardInterrupt:
            self._flush_for_interrupt()
            yield self._event(
                Interrupted,
                completed=self._completed,
                total=total,
                reason="keyboard-interrupt",
                stage=stage,
            )
            raise
        except WorkerCrash:
            self._flush_for_interrupt()
            yield self._event(
                Interrupted,
                completed=self._completed,
                total=total,
                reason="worker-crash",
                stage=stage,
            )
            raise

        # ---- fold --------------------------------------------------
        yield self._event(
            PhaseStarted, phase="fold", stage=stage, cells=total
        )
        self.last_results = results
        for outcome, count in counts.items():
            self.stats[outcome] += count
        self.stats["sweeps"] += 1
        yield self._event(
            Finished,
            cells=total,
            ran=counts["ran"],
            hits=counts["hit"],
            resumed=counts["resumed"],
            stage=stage,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        cells: Sequence[Cell],
        stage: str = "",
        progress: Optional[ProgressHook] = None,
    ) -> list[Any]:
        """Execute a sweep, dispatching events to every sink."""
        extra: list[EventSink] = [TTYSink(progress)] if progress else []
        for event in self.stream(cells, stage=stage):
            for sink in (*self._sinks, *extra):
                sink(event)
        return self.last_results

    # ------------------------------------------------------------------
    # execution sources
    # ------------------------------------------------------------------
    def _effective_jobs(self, pending: int) -> int:
        if self.jobs <= 1 or pending <= 1 or not fork_available():
            return 1
        return min(self.jobs, pending)

    def _completions(
        self,
        queue_order: Sequence[tuple[int, Cell, Optional[str]]],
        workers: int,
    ) -> Iterator[tuple[int, Any, float, Optional[Profile]]]:
        tasks: list[Task] = [
            (index, cell.fn, dict(cell.kwargs))
            for index, cell, _key in queue_order
        ]
        if workers <= 1:
            for index, fn, kwargs in tasks:
                value, seconds, profile = profiled_call(fn, kwargs)
                yield index, value, seconds, profile
            return
        pool = WorkStealingPool(workers, health=self.worker_health)
        yield from pool.iter_results(tasks)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _checkpoint(
        self,
        key: str,
        index: int,
        cell: Cell,
        stage: str,
        seconds: float,
        value: Any,
        profile: Optional[Profile] = None,
    ) -> None:
        """Store the result, then journal it — durable in that order.

        The value lands in the run directory's result store *before*
        the journal line that declares it complete, so a crash between
        the two leaves an unreferenced store entry (harmless) rather
        than a journalled cell with no result (which a resume would
        have to re-execute anyway, via the store-miss fallback).
        """
        assert self.run_dir is not None
        profile = profile or {}
        self.run_dir.results.put(key, value)
        self.run_dir.record_cell(
            key, index=index, label=cell.display, stage=stage,
            seconds=seconds,
            utime_s=profile.get("utime_s", 0.0),
            stime_s=profile.get("stime_s", 0.0),
            max_rss_kb=profile.get("max_rss_kb", 0.0),
        )
        self._journal_keys.add(key)
        self._completed += 1

    def _flush_for_interrupt(self) -> None:
        """Interrupt hygiene: journal durable, no stranded temp files."""
        if self.run_dir is not None:
            self.run_dir.journal.flush()
            self.run_dir.results.sweep_temps()
        if self.cache is not None:
            self.cache.sweep_temps()

    def _maybe_kill(self) -> None:
        if self.kill_after is not None and self._completed >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def close(self) -> None:
        if self.run_dir is not None:
            self.run_dir.close()
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if callable(closer):
                closer()

    def __repr__(self) -> str:
        cached = "on" if self.cache is not None else "off"
        run_id = self.run_dir.run_id if self.run_dir is not None else None
        return (
            f"<Engine jobs={self.jobs} cache={cached} run={run_id}>"
        )


__all__ = [
    "ENV_JOBS",
    "ENV_KILL_AFTER",
    "Engine",
    "resolve_jobs",
]
