"""Typed engine events: the stream every sweep emits while it runs.

The :class:`~repro.exec.engine.Engine` narrates execution as a flat
sequence of frozen event dataclasses — the taxonomy is deliberately
small (``PhaseStarted``, ``CellScheduled``, ``CellFinished``,
``CheckpointWritten``, ``Interrupted``, ``Finished``) and every event
serialises to one JSON object with a **stable field order** (``kind``
first, then ``seq``, then declared fields), so an event log is both
grep-able and byte-stable for golden snapshots.

Consumers are *sinks*: any callable taking one event.  The built-in
sinks cover the three consumption paths:

* :class:`TTYSink` — adapts ``CellFinished`` events onto the existing
  :class:`~repro.exec.progress.ProgressHook` per-cell lines;
* :class:`JsonlSink` — appends one JSON line per event (the run
  directory's ``events.jsonl``, or ``--events-out``);
* :class:`TelemetrySink` — folds event counts into a
  :class:`repro.telemetry.Telemetry` registry for exposition.

:func:`validate_events` is the executable contract: tests and the CI
``engine-smoke`` job both call it to assert a log is a well-formed,
monotone, parseable sequence.  ``python -m repro.exec.events LOG``
runs the same check from the shell.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.exec.progress import CellReport, ProgressHook

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

#: phases one engine sweep always runs, in order (DESIGN.md §14)
PHASE_ORDER = ("plan", "probe", "execute", "fold")

#: legal ``CellFinished.outcome`` values: executed, replayed from the
#: result cache, or replayed from a resumed run's checkpoint journal
CELL_OUTCOMES = ("ran", "hit", "resumed")


@dataclass(frozen=True)
class Event:
    """Base event: a monotone per-engine sequence number."""

    kind = "event"  # overridden per subclass (class attr, not a field)

    seq: int

    def to_json(self) -> dict[str, Any]:
        """Stable-order JSON object: kind, seq, then declared fields."""
        doc: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            doc[field.name] = getattr(self, field.name)
        return doc


@dataclass(frozen=True)
class PhaseStarted(Event):
    """One engine phase (plan/probe/execute/fold) began."""

    kind = "phase_started"

    phase: str
    stage: str = ""
    #: cells relevant to the phase (planned for plan/probe, pending for
    #: execute, folded for fold)
    cells: int = 0


@dataclass(frozen=True)
class CellScheduled(Event):
    """A pending cell was handed to the work-stealing queue."""

    kind = "cell_scheduled"

    index: int
    label: str
    key: Optional[str] = None
    stage: str = ""


@dataclass(frozen=True)
class CellFinished(Event):
    """A cell's result is known (executed, cache hit, or resumed)."""

    kind = "cell_finished"

    index: int
    total: int
    label: str
    outcome: str  # "ran" | "hit" | "resumed"
    seconds: float
    key: Optional[str] = None
    stage: str = ""
    #: per-cell resource profile (CPU seconds in user/kernel mode and
    #: the executing process's peak RSS) — observability metadata like
    #: ``seconds``, normalised to zero in golden logs; all 0.0 for
    #: cache hits and resumed replays, which execute nothing
    utime_s: float = 0.0
    stime_s: float = 0.0
    max_rss_kb: float = 0.0


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """A completed cell was durably journalled to the run directory."""

    kind = "checkpoint_written"

    key: str
    #: cumulative journalled cells over the engine's lifetime
    completed: int
    total: int
    stage: str = ""


@dataclass(frozen=True)
class Interrupted(Event):
    """The sweep stopped early; the journal was flushed first."""

    kind = "interrupted"

    completed: int
    total: int
    reason: str = "keyboard-interrupt"
    stage: str = ""


@dataclass(frozen=True)
class Finished(Event):
    """One sweep completed; counts partition its cells by outcome."""

    kind = "finished"

    cells: int
    ran: int
    hits: int
    resumed: int
    stage: str = ""


#: kind string -> event class (the parse/validation registry)
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        PhaseStarted,
        CellScheduled,
        CellFinished,
        CheckpointWritten,
        Interrupted,
        Finished,
    )
}

#: signature of an event sink — any callable over events (so a plain
#: ``list.append`` collects a stream)
EventSink = Callable[[Event], None]


def event_from_json(doc: Mapping[str, Any]) -> Event:
    """Rebuild a typed event from its JSON object form."""
    kind = doc.get("kind")
    cls = EVENT_TYPES.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs = {
        field.name: doc[field.name]
        for field in dataclasses.fields(cls)
        if field.name in doc
    }
    missing = {
        field.name for field in dataclasses.fields(cls)
    } - set(kwargs)
    required = {
        field.name
        for field in dataclasses.fields(cls)
        if field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
    }
    if missing & required:
        raise ValueError(
            f"{kind} event missing fields {sorted(missing & required)}"
        )
    return cls(**kwargs)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class JsonlSink:
    """One JSON line per event; every line is flushed as written.

    ``append=True`` (the run directory's mode) continues an existing
    log, so a resumed run's events land after the interrupted run's.
    """

    def __init__(
        self, path: Union[str, Path], append: bool = False
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(
            self.path, "a" if append else "w", encoding="utf-8"
        )

    def __call__(self, event: Event) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(event.to_json(), separators=(", ", ": ")) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TTYSink:
    """Adapt ``CellFinished`` events onto a per-cell progress hook."""

    def __init__(self, hook: ProgressHook) -> None:
        self.hook = hook

    def __call__(self, event: Event) -> None:
        if not isinstance(event, CellFinished):
            return
        self.hook(CellReport(
            index=event.index,
            total=event.total,
            label=event.label,
            outcome=event.outcome,
            seconds=event.seconds,
            key=event.key,
            stage=event.stage,
        ))


class TelemetrySink:
    """Fold the stream into engine_* counters for exposition."""

    def __init__(self, telemetry: "Telemetry") -> None:
        self.telemetry = telemetry

    def __call__(self, event: Event) -> None:
        if not self.telemetry.enabled:
            return
        registry = self.telemetry.registry
        registry.counter("engine_events", kind=event.kind).inc()
        if isinstance(event, CellFinished):
            registry.counter("engine_cells", outcome=event.outcome).inc()
        elif isinstance(event, CheckpointWritten):
            registry.gauge("engine_checkpointed").set(float(event.completed))


# ----------------------------------------------------------------------
# parsing / validation / normalisation
# ----------------------------------------------------------------------
def read_event_log(
    path: Union[str, Path], tolerate_truncation: bool = True
) -> list[dict[str, Any]]:
    """Parse an events.jsonl file into raw JSON objects.

    A run killed mid-write (the crash suite SIGKILLs at arbitrary
    points) can leave a truncated final line; with
    ``tolerate_truncation`` that line is dropped instead of raising.
    """
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if tolerate_truncation and lineno == len(lines) - 1:
                break
            raise
    return records


def _segments(
    records: Sequence[Mapping[str, Any]],
) -> Iterator[tuple[list[Mapping[str, Any]], bool]]:
    """Split a log into ``(sweep segment, crashed)`` pairs.

    One events.jsonl can hold several sweeps (the CLI's ``all``, the
    fleet's epoch loop, an interrupted run plus its resumption), each
    ending in ``finished``/``interrupted``.  A SIGKILLed sweep never
    writes its terminal event — its truncation is proven instead by
    the *next* record starting a fresh engine lifetime
    (``phase_started(plan)`` with ``seq`` back at 0), so that boundary
    also splits, and the cut-short segment is flagged ``crashed``.
    """
    segment: list[Mapping[str, Any]] = []
    for record in records:
        if (
            segment
            and record.get("kind") == "phase_started"
            and record.get("phase") == "plan"
            and record.get("seq") == 0
        ):
            yield segment, True
            segment = []
        segment.append(record)
        if record.get("kind") in ("finished", "interrupted"):
            yield segment, False
            segment = []
    if segment:
        yield segment, False


def validate_events(
    records: Sequence[Mapping[str, Any]],
    partial: bool = False,
    ring: bool = False,
) -> list[str]:
    """Contract-check an event log; returns problems (empty = valid).

    Enforced per sweep segment:

    * every record parses into a known typed event;
    * ``seq`` is strictly increasing within a segment run (it may reset
      only where a new engine lifetime begins, i.e. at a segment start);
    * the segment opens with ``PhaseStarted(plan)`` and its phases
      appear in plan → probe → execute → fold order;
    * a cell finishes at most once, ``outcome`` is legal, and every
      ``outcome="ran"`` cell was scheduled first;
    * ``CheckpointWritten.completed`` is strictly increasing;
    * the terminal ``Finished`` counts match the observed outcomes.

    ``partial=True`` permits the *last* segment to lack a terminal
    event — the shape a SIGKILLed run leaves behind.

    ``ring=True`` validates a flight-recorder dump (``repro.ops``): the
    recorder keeps only the last N events, so the **first** segment may
    be truncated at its head — its opener, its ran-requires-scheduled
    pairing and its ``Finished`` count reconciliation are waived (the
    evidence fell off the ring); every later segment is complete and
    validates fully.
    """
    problems: list[str] = []
    if not records:
        return ["empty event log"]
    segments = list(_segments(records))
    last_seq: Optional[int] = None
    for seg_index, (segment, crashed) in enumerate(segments):
        prefix = f"segment {seg_index}"
        #: the head of a ring dump: possibly truncated from the front
        head = ring and seg_index == 0
        terminal = segment[-1].get("kind") in ("finished", "interrupted")
        # a crashed segment (cut short by the next engine restart) is
        # legal evidence of a kill+resume; a trailing truncation needs
        # the caller to opt in with ``partial``
        if not terminal and not crashed and not head and not (
            partial and seg_index == len(segments) - 1
        ):
            problems.append(f"{prefix}: no terminal event")
        phase_cursor = -1
        scheduled: set[tuple[str, int]] = set()
        finished_cells: set[tuple[str, int]] = set()
        outcomes = {name: 0 for name in CELL_OUTCOMES}
        last_completed: Optional[int] = None
        for pos, record in enumerate(segment):
            where = f"{prefix} record {pos}"
            try:
                event = event_from_json(record)
            except (ValueError, TypeError) as exc:
                problems.append(f"{where}: {exc}")
                continue
            if pos == 0:
                # a ring head may start mid-sweep: no opener requirement
                if not head and (
                    not isinstance(event, PhaseStarted)
                    or event.phase != "plan"
                ):
                    opener = (
                        f"phase_started({event.phase})"
                        if isinstance(event, PhaseStarted)
                        else event.kind
                    )
                    problems.append(
                        f"{where}: segment must open with "
                        f"phase_started(plan), got {opener}"
                    )
                if last_seq is not None and event.seq not in (0, last_seq + 1):
                    problems.append(
                        f"{where}: seq {event.seq} neither continues "
                        f"{last_seq} nor restarts a new engine at 0"
                    )
            elif last_seq is not None and event.seq <= last_seq:
                problems.append(
                    f"{where}: seq {event.seq} not after {last_seq}"
                )
            last_seq = event.seq
            if isinstance(event, PhaseStarted):
                if event.phase not in PHASE_ORDER:
                    problems.append(
                        f"{where}: unknown phase {event.phase!r}"
                    )
                else:
                    cursor = PHASE_ORDER.index(event.phase)
                    if cursor <= phase_cursor:
                        problems.append(
                            f"{where}: phase {event.phase!r} out of order"
                        )
                    phase_cursor = cursor
            elif isinstance(event, CellScheduled):
                scheduled.add((event.stage, event.index))
            elif isinstance(event, CellFinished):
                cell = (event.stage, event.index)
                if event.outcome not in CELL_OUTCOMES:
                    problems.append(
                        f"{where}: illegal outcome {event.outcome!r}"
                    )
                else:
                    outcomes[event.outcome] += 1
                if cell in finished_cells:
                    problems.append(
                        f"{where}: cell {event.index} finished twice"
                    )
                finished_cells.add(cell)
                # a ring head may have evicted the CellScheduled record
                if event.outcome == "ran" and cell not in scheduled and (
                    not head
                ):
                    problems.append(
                        f"{where}: cell {event.index} ran without being "
                        "scheduled"
                    )
            elif isinstance(event, CheckpointWritten):
                if last_completed is not None and (
                    event.completed <= last_completed
                ):
                    problems.append(
                        f"{where}: checkpoint count {event.completed} "
                        f"not after {last_completed}"
                    )
                last_completed = event.completed
            elif isinstance(event, Finished):
                if head:
                    continue  # head truncation dropped early outcomes
                observed = (
                    outcomes["ran"], outcomes["hit"], outcomes["resumed"]
                )
                declared = (event.ran, event.hits, event.resumed)
                if observed != declared:
                    problems.append(
                        f"{where}: finished counts {declared} != observed "
                        f"{observed}"
                    )
                if event.cells != len(finished_cells):
                    problems.append(
                        f"{where}: finished cells={event.cells} != "
                        f"{len(finished_cells)} cell_finished events"
                    )
    return problems


def normalize_events(
    records: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Strip run-to-run noise for golden snapshots.

    Wall-clock ``seconds`` become 0.0 and content-hash ``key`` values
    become the ``"<key>"`` placeholder (the salt digests every source
    file, so raw keys would churn the golden on any code edit).  Field
    order and everything else is preserved.
    """
    normalised: list[dict[str, Any]] = []
    for record in records:
        copy = dict(record)
        for field in ("seconds", "utime_s", "stime_s", "max_rss_kb"):
            if field in copy:
                copy[field] = 0.0
        if copy.get("key"):
            copy["key"] = "<key>"
        normalised.append(copy)
    return normalised


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.exec.events LOG [--partial] [--ring]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.events",
        description="validate an engine event log (events.jsonl)",
    )
    parser.add_argument("log", type=Path)
    parser.add_argument(
        "--partial", action="store_true",
        help="allow the last sweep to lack a terminal event (killed run)",
    )
    parser.add_argument(
        "--ring", action="store_true",
        help="validate a flight-recorder ring dump: the first sweep may "
             "be truncated at its head (implies --partial)",
    )
    args = parser.parse_args(argv)
    records = read_event_log(args.log)
    problems = validate_events(
        records, partial=args.partial or args.ring, ring=args.ring
    )
    for problem in problems:
        print(f"INVALID: {problem}")
    kinds: dict[str, int] = {}
    for record in records:
        kind = str(record.get("kind"))
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = " ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    print(f"{args.log}: {len(records)} events ({summary})")
    return 1 if problems else 0


__all__ = [
    "CELL_OUTCOMES",
    "CellFinished",
    "CellScheduled",
    "CheckpointWritten",
    "EVENT_TYPES",
    "Event",
    "EventSink",
    "Finished",
    "Interrupted",
    "JsonlSink",
    "PHASE_ORDER",
    "PhaseStarted",
    "TTYSink",
    "TelemetrySink",
    "event_from_json",
    "main",
    "normalize_events",
    "read_event_log",
    "validate_events",
]

if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    import sys

    sys.exit(main())
