"""Sweep cells: one picklable, cacheable unit of experiment work.

A :class:`Cell` names a module-level function plus keyword arguments.
Both must pickle (the cell may cross a process boundary) and both feed
the cache key: two cells with the same function and canonically-equal
kwargs are the same computation, regardless of dict insertion order.

Every experiment sweep in :mod:`repro.experiments` reduces to a list
of cells handed to :class:`repro.exec.runner.SweepRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TypeVar

from repro.exec.hashing import fingerprint

F = TypeVar("F", bound=Callable[..., Any])


def engine_cell(fn: F) -> F:
    """Mark ``fn`` as a function the engine executes as a cell.

    Identity decorator — no wrapper, so picklability and the
    ``__module__.__qualname__`` cache identity are untouched.  The
    marker serves the static analyzer: simlint's whole-program pass
    (SIM009, ``repro.analysis.interproc``) proves every marked function
    pure even when the ``Cell(...)`` construction happens through
    indirection its resolver cannot follow.  Decorate any function
    submitted to :class:`~repro.exec.runner.SweepRunner`, the fuzzer
    or the fleet engine outside a literal ``Cell(fn, ...)`` call.
    """
    fn.__engine_cell__ = True  # type: ignore[attr-defined]
    return fn


@dataclass(frozen=True)
class Cell:
    """One ``fn(**kwargs)`` invocation in a sweep."""

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: display label for progress reporting (defaults to the fn name)
    label: str = ""

    @property
    def display(self) -> str:
        return self.label or getattr(self.fn, "__qualname__", repr(self.fn))

    def cache_key(self, salt: str) -> str:
        """Content hash of (function identity, kwargs, code salt)."""
        return fingerprint({
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "kwargs": dict(self.kwargs),
            "salt": salt,
        })


def execute_cell(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> Any:
    """Worker entry point: must stay module-level so it pickles."""
    return fn(**kwargs)


__all__ = ["Cell", "engine_cell", "execute_cell"]
