"""The work-stealing worker pool behind the engine's execute phase.

Earlier revisions fanned cells out through a ``ProcessPoolExecutor``
whose up-front submission amounted to a static split; fleet and fuzz
sweeps have wildly uneven cell costs (a consolidation epoch on a
packed host vs. an idle one), which left cores cold behind the long
tail.  This pool keeps a single shared ``multiprocessing`` task queue:
every forked worker pulls its next cell the moment it finishes the
last one — work-stealing by construction, with no partitioning to get
wrong.  Results carry their cell index, so the fold order (and
therefore every downstream byte) is independent of which worker ran
what and in which interleaving — the Hypothesis property in
``tests/test_exec_engine.py`` pins exactly that.

This module is the **only sanctioned process-pool entry point** in the
tree: simlint's SIM007 flags any other ``multiprocessing`` /
``ProcessPoolExecutor`` use, so ad-hoc pools cannot bypass the
engine's checkpointing and event stream.

Wall-clock note: per-cell ``perf_counter`` timing, the ``os.times`` /
``resource.getrusage`` resource profiles and the heartbeat wall stamps
here are progress/ops metadata only (SIM001 allowlists
``repro.exec.queue``); none of it ever feeds a result.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import queue as stdlib_queue
import resource
import threading
import time
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

#: one unit of queued work: (cell index, function, kwargs)
Task = tuple[int, Callable[..., Any], dict[str, Any]]

#: per-cell resource profile: utime_s / stime_s / max_rss_kb — progress
#: and ops-plane metadata, never an input to any result
Profile = dict[str, float]

#: callback fired in the parent as each result arrives (completion
#: order, not index order): (index, value, seconds)
ResultCallback = Callable[[int, Any, float], None]


class WorkerCrash(RuntimeError):
    """A pool worker died without delivering its result."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def timed_call(
    fn: Callable[..., Any], kwargs: Mapping[str, Any]
) -> tuple[Any, float]:
    """Run one cell on a private copy of its kwargs, timing it.

    The deepcopy mirrors the isolation a forked worker gets for free:
    a policy object mutated by ``setup()`` never leaks back into the
    caller's cell, whose pristine state the cache key was computed
    from.  Module-level so it pickles across the fork.
    """
    start = time.perf_counter()
    value = fn(**copy.deepcopy(dict(kwargs)))
    return value, time.perf_counter() - start


def profiled_call(
    fn: Callable[..., Any], kwargs: Mapping[str, Any]
) -> tuple[Any, float, Profile]:
    """:func:`timed_call` plus a per-cell resource profile.

    utime/stime come from ``os.times()`` deltas around the call and
    peak RSS from ``resource.getrusage`` — observability metadata for
    ``CellFinished`` events, the checkpoint journal and the slowest-
    cells tables, exactly like the wall duration (the event-stream
    golden test normalises all of it to zero).  ``ru_maxrss`` is the
    process-lifetime peak, so on a reused worker it is an upper bound
    per cell, not an exact per-cell delta.
    """
    before = os.times()
    start = time.perf_counter()
    value = fn(**copy.deepcopy(dict(kwargs)))
    seconds = time.perf_counter() - start
    after = os.times()
    usage = resource.getrusage(resource.RUSAGE_SELF)
    profile: Profile = {
        "utime_s": max(0.0, after.user - before.user),
        "stime_s": max(0.0, after.system - before.system),
        "max_rss_kb": float(usage.ru_maxrss),
    }
    return value, seconds, profile


class WorkerHealth:
    """Parent-side worker liveness ledger, fed by queue heartbeats.

    Purely observational: the engine's control flow never reads it — it
    exists so the ops plane (``/metrics`` worker gauges, ``/status``)
    can report which workers are alive, what each is chewing on, and
    when it was last heard from.  Heartbeats ride the existing result
    queue (one at task pickup, one after each completion), so there is
    no extra channel and no polling thread.  Thread-safe because the
    engine thread writes while ops HTTP threads snapshot.
    """

    __slots__ = ("_lock", "_workers")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: dict[int, dict[str, Any]] = {}

    def _entry(self, worker_id: int) -> dict[str, Any]:
        return self._workers.setdefault(
            worker_id,
            {
                "pid": None,
                "last_beat_unix": None,
                "busy_index": None,
                "beats": 0,
                "alive": True,
                "exitcode": None,
            },
        )

    def started(self, worker_id: int, pid: Optional[int]) -> None:
        with self._lock:
            entry = self._entry(worker_id)
            entry["pid"] = pid
            entry["alive"] = True
            entry["exitcode"] = None

    def beat(
        self,
        worker_id: int,
        pid: int,
        wall_ts: float,
        busy_index: Optional[int],
    ) -> None:
        """One heartbeat: ``busy_index`` is the cell being executed, or
        ``None`` when the worker just went idle."""
        with self._lock:
            entry = self._entry(worker_id)
            entry["pid"] = pid
            entry["last_beat_unix"] = wall_ts
            entry["busy_index"] = busy_index
            entry["beats"] = int(entry["beats"]) + 1

    def mark_dead(self, worker_id: int, exitcode: Optional[int]) -> None:
        with self._lock:
            entry = self._entry(worker_id)
            entry["alive"] = False
            entry["exitcode"] = exitcode
            entry["busy_index"] = None

    def snapshot(self) -> dict[str, Any]:
        """A picklable copy for ``/status`` and ``/metrics``."""
        with self._lock:
            workers = {
                str(worker_id): dict(entry)
                for worker_id, entry in sorted(self._workers.items())
            }
        live = sum(1 for entry in workers.values() if entry["alive"])
        return {
            "workers": workers,
            "known": len(workers),
            "live": live,
            "dead": len(workers) - live,
        }


def _worker(
    worker_id: int,
    task_queue: "multiprocessing.queues.Queue[Optional[Task]]",
    result_queue: "multiprocessing.queues.Queue[tuple[Any, ...]]",
) -> None:
    """Worker loop: steal, execute, report; ``None`` is the stop token.

    Besides ``("ok"|"error", index, payload, seconds, profile)`` result
    tuples, the worker emits ``("hb", worker_id, pid, wall_ts, index)``
    heartbeats — one when it picks a task up (``index`` set) and one
    after it reports the result (``index=None`` — idle).  The parent
    folds those into :class:`WorkerHealth` without counting them
    against outstanding work.
    """
    pid = os.getpid()
    while True:
        try:
            item = task_queue.get()
        except KeyboardInterrupt:  # Ctrl-C fan-out while idle: die quietly
            return
        if item is None:
            return
        index, fn, kwargs = item
        result_queue.put(("hb", worker_id, pid, time.time(), index))
        # BaseException on purpose: a cell raising KeyboardInterrupt must
        # be *reported*, not swallowed — a worker that exits cleanly with
        # an outstanding cell would leave the parent polling forever.
        # No simulation runs in this frame beyond the cell itself.
        try:
            value, seconds, profile = profiled_call(fn, kwargs)
        except BaseException as exc:  # simlint: disable=SIM006
            payload: Any = exc
            try:  # the queue pickles in a feeder thread; probe up front
                pickle.dumps(exc)
            # pickling a caught exception cannot raise SimulationError;
            # any failure must degrade to the repr, never propagate
            except Exception:  # simlint: disable=SIM006
                payload = repr(exc)  # unpicklable: degrade to its repr
            result_queue.put(("error", index, payload, 0.0, None))
            if isinstance(exc, KeyboardInterrupt):
                return  # a real Ctrl-C is process-wide: stop stealing
            continue
        result_queue.put(("ok", index, value, seconds, profile))
        result_queue.put(("hb", worker_id, pid, time.time(), None))


class WorkStealingPool:
    """Fork ``workers`` processes over one shared task queue."""

    def __init__(
        self, workers: int, health: Optional[WorkerHealth] = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if not fork_available():
            raise RuntimeError(
                "work-stealing pool needs the fork start method"
            )
        self.workers = workers
        #: optional liveness ledger the parent folds heartbeats into
        self.health = health

    def iter_results(
        self, tasks: Sequence[Task]
    ) -> Iterator[tuple[int, Any, float, Optional[Profile]]]:
        """Execute every task, yielding results in completion order.

        Tasks are enqueued in the given order (the engine may permute
        it — results are index-addressed, so any steal interleaving
        folds identically).  A cell exception or a dead worker tears
        the pool down and re-raises in the parent; a
        ``KeyboardInterrupt`` (or an abandoned generator) terminates
        the workers before propagating, so Ctrl-C never leaves orphan
        processes behind.  Heartbeat tuples are folded into
        :attr:`health` as they drain and never count as completions.
        """
        context = multiprocessing.get_context("fork")
        task_queue: Any = context.Queue()
        result_queue: Any = context.Queue()
        for task in tasks:
            task_queue.put(task)
        for _ in range(self.workers):
            task_queue.put(None)  # stop token per worker

        processes: list[BaseProcess] = [
            context.Process(
                target=_worker,
                args=(worker_id, task_queue, result_queue),
                daemon=True,
            )
            for worker_id in range(min(self.workers, max(1, len(tasks))))
        ]
        for process in processes:
            process.start()
        if self.health is not None:
            for worker_id, process in enumerate(processes):
                self.health.started(worker_id, process.pid)
        outstanding = len(tasks)
        clean = False
        try:
            while outstanding:
                try:
                    item = result_queue.get(timeout=0.2)
                except stdlib_queue.Empty:
                    dead = [
                        p for p in processes
                        if p.exitcode not in (None, 0)
                    ]
                    if dead:
                        if self.health is not None:
                            for worker_id, process in enumerate(processes):
                                if process.exitcode not in (None, 0):
                                    self.health.mark_dead(
                                        worker_id, process.exitcode
                                    )
                        raise WorkerCrash(
                            f"{len(dead)} worker(s) died with exit codes "
                            f"{sorted(p.exitcode for p in dead)} while "
                            f"{outstanding} cell(s) were outstanding"
                        ) from None
                    continue
                status = item[0]
                if status == "hb":
                    _, worker_id, pid, wall_ts, busy_index = item
                    if self.health is not None:
                        self.health.beat(worker_id, pid, wall_ts, busy_index)
                    continue
                _, index, value, seconds, profile = item
                outstanding -= 1
                if status == "error":
                    if isinstance(value, BaseException):
                        raise value
                    raise WorkerCrash(f"cell {index} failed: {value}")
                yield index, value, seconds, profile
            clean = True
        finally:
            if not clean:
                for process in processes:
                    if process.is_alive():
                        process.terminate()
            for process in processes:
                process.join(timeout=2.0)

    def run(self, tasks: Sequence[Task], on_result: ResultCallback) -> None:
        """Callback flavour of :meth:`iter_results` (profile dropped)."""
        for index, value, seconds, _profile in self.iter_results(tasks):
            on_result(index, value, seconds)


__all__ = [
    "Profile",
    "ResultCallback",
    "Task",
    "WorkStealingPool",
    "WorkerCrash",
    "WorkerHealth",
    "fork_available",
    "profiled_call",
    "timed_call",
]
