"""The work-stealing worker pool behind the engine's execute phase.

Earlier revisions fanned cells out through a ``ProcessPoolExecutor``
whose up-front submission amounted to a static split; fleet and fuzz
sweeps have wildly uneven cell costs (a consolidation epoch on a
packed host vs. an idle one), which left cores cold behind the long
tail.  This pool keeps a single shared ``multiprocessing`` task queue:
every forked worker pulls its next cell the moment it finishes the
last one — work-stealing by construction, with no partitioning to get
wrong.  Results carry their cell index, so the fold order (and
therefore every downstream byte) is independent of which worker ran
what and in which interleaving — the Hypothesis property in
``tests/test_exec_engine.py`` pins exactly that.

This module is the **only sanctioned process-pool entry point** in the
tree: simlint's SIM007 flags any other ``multiprocessing`` /
``ProcessPoolExecutor`` use, so ad-hoc pools cannot bypass the
engine's checkpointing and event stream.

Wall-clock note: per-cell ``perf_counter`` timing here is progress
metadata only (SIM001 allowlists ``repro.exec.queue``); it never feeds
a result.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import queue as stdlib_queue
import time
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

#: one unit of queued work: (cell index, function, kwargs)
Task = tuple[int, Callable[..., Any], dict[str, Any]]

#: callback fired in the parent as each result arrives (completion
#: order, not index order): (index, value, seconds)
ResultCallback = Callable[[int, Any, float], None]


class WorkerCrash(RuntimeError):
    """A pool worker died without delivering its result."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def timed_call(
    fn: Callable[..., Any], kwargs: Mapping[str, Any]
) -> tuple[Any, float]:
    """Run one cell on a private copy of its kwargs, timing it.

    The deepcopy mirrors the isolation a forked worker gets for free:
    a policy object mutated by ``setup()`` never leaks back into the
    caller's cell, whose pristine state the cache key was computed
    from.  Module-level so it pickles across the fork.
    """
    start = time.perf_counter()
    value = fn(**copy.deepcopy(dict(kwargs)))
    return value, time.perf_counter() - start


def _worker(
    task_queue: "multiprocessing.queues.Queue[Optional[Task]]",
    result_queue: "multiprocessing.queues.Queue[tuple[str, int, Any, float]]",
) -> None:
    """Worker loop: steal, execute, report; ``None`` is the stop token."""
    while True:
        try:
            item = task_queue.get()
        except KeyboardInterrupt:  # Ctrl-C fan-out while idle: die quietly
            return
        if item is None:
            return
        index, fn, kwargs = item
        # BaseException on purpose: a cell raising KeyboardInterrupt must
        # be *reported*, not swallowed — a worker that exits cleanly with
        # an outstanding cell would leave the parent polling forever.
        # No simulation runs in this frame beyond the cell itself.
        try:
            value, seconds = timed_call(fn, kwargs)
        except BaseException as exc:  # simlint: disable=SIM006
            payload: Any = exc
            try:  # the queue pickles in a feeder thread; probe up front
                pickle.dumps(exc)
            # pickling a caught exception cannot raise SimulationError;
            # any failure must degrade to the repr, never propagate
            except Exception:  # simlint: disable=SIM006
                payload = repr(exc)  # unpicklable: degrade to its repr
            result_queue.put(("error", index, payload, 0.0))
            if isinstance(exc, KeyboardInterrupt):
                return  # a real Ctrl-C is process-wide: stop stealing
            continue
        result_queue.put(("ok", index, value, seconds))


class WorkStealingPool:
    """Fork ``workers`` processes over one shared task queue."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if not fork_available():
            raise RuntimeError(
                "work-stealing pool needs the fork start method"
            )
        self.workers = workers

    def iter_results(
        self, tasks: Sequence[Task]
    ) -> Iterator[tuple[int, Any, float]]:
        """Execute every task, yielding results in completion order.

        Tasks are enqueued in the given order (the engine may permute
        it — results are index-addressed, so any steal interleaving
        folds identically).  A cell exception or a dead worker tears
        the pool down and re-raises in the parent; a
        ``KeyboardInterrupt`` (or an abandoned generator) terminates
        the workers before propagating, so Ctrl-C never leaves orphan
        processes behind.
        """
        context = multiprocessing.get_context("fork")
        task_queue: Any = context.Queue()
        result_queue: Any = context.Queue()
        for task in tasks:
            task_queue.put(task)
        for _ in range(self.workers):
            task_queue.put(None)  # stop token per worker

        processes: list[BaseProcess] = [
            context.Process(
                target=_worker, args=(task_queue, result_queue), daemon=True
            )
            for _ in range(min(self.workers, max(1, len(tasks))))
        ]
        for process in processes:
            process.start()
        outstanding = len(tasks)
        clean = False
        try:
            while outstanding:
                try:
                    status, index, value, seconds = result_queue.get(
                        timeout=0.2
                    )
                except stdlib_queue.Empty:
                    dead = [
                        p for p in processes
                        if p.exitcode not in (None, 0)
                    ]
                    if dead:
                        raise WorkerCrash(
                            f"{len(dead)} worker(s) died with exit codes "
                            f"{sorted(p.exitcode for p in dead)} while "
                            f"{outstanding} cell(s) were outstanding"
                        ) from None
                    continue
                outstanding -= 1
                if status == "error":
                    if isinstance(value, BaseException):
                        raise value
                    raise WorkerCrash(f"cell {index} failed: {value}")
                yield index, value, seconds
            clean = True
        finally:
            if not clean:
                for process in processes:
                    if process.is_alive():
                        process.terminate()
            for process in processes:
                process.join(timeout=2.0)

    def run(self, tasks: Sequence[Task], on_result: ResultCallback) -> None:
        """Callback flavour of :meth:`iter_results`."""
        for index, value, seconds in self.iter_results(tasks):
            on_result(index, value, seconds)


__all__ = [
    "ResultCallback",
    "Task",
    "WorkStealingPool",
    "WorkerCrash",
    "fork_available",
    "timed_call",
]
