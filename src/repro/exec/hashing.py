"""Stable content fingerprints for sweep-cell cache keys.

A cache key must be a pure function of *what the cell computes*: the
cell function's identity, its parameters (scenario spec, policy
configuration, seed, simulation durations), and the version of the
code that computes it.  :func:`fingerprint` canonicalises arbitrary
parameter structures — dataclasses, enums, mappings with non-string
keys, policies — into a deterministic JSON document and hashes it;
:func:`code_salt` digests the ``repro`` package sources so editing the
simulator invalidates every cached result.

Unknown object kinds raise :class:`TypeError` instead of being
silently coerced: a key that ignores part of a parameter would let two
different computations collide in the cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any

#: bump to invalidate every existing cache entry on a format change
CACHE_FORMAT_VERSION = 1

_code_salt_cache: dict[str, str] = {}


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serialisable structure.

    Dicts become key-sorted pair lists (insertion order never leaks
    into the key); dataclasses and plain objects carry their class
    identity so two types with equal fields don't collide.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; avoids 1.0 == 1 key merges
        return ["float", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.name]
    if isinstance(obj, (bytes, bytearray)):
        return ["bytes", hashlib.sha256(bytes(obj)).hexdigest()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return ["dataclass", _class_id(obj), canonical(fields)]
    if isinstance(obj, dict):
        pairs = [[canonical(k), canonical(v)] for k, v in obj.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return ["dict", pairs]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(item) for item in obj]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["set", items]
    if hasattr(obj, "__dict__"):
        # policies and other plain config objects: class + instance state
        return ["object", _class_id(obj), canonical(vars(obj))]
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__qualname__}: "
        "add a canonical() case or pass plain data"
    )


def _class_id(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``obj``."""
    payload = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def code_salt(package_root: Path | None = None) -> str:
    """Digest of every ``.py`` file under the ``repro`` package.

    Any source edit changes the salt and therefore every cache key —
    stale results can never be replayed across code versions.  The walk
    is done once per process and memoised.
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    cache_token = str(package_root)
    cached = _code_salt_cache.get(cache_token)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(f"format:{CACHE_FORMAT_VERSION}".encode())
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(source.read_bytes())
    salt = digest.hexdigest()
    _code_salt_cache[cache_token] = salt
    return salt


__all__ = ["CACHE_FORMAT_VERSION", "canonical", "fingerprint", "code_salt"]
