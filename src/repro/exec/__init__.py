"""``repro.exec`` — parallel experiment execution with result caching.

The substrate for every sweep in :mod:`repro.experiments`: experiment
modules describe their work as independent
:class:`~repro.exec.cells.Cell` invocations and hand them to a
:class:`~repro.exec.runner.SweepRunner`, which fans them out over
worker processes and memoises results in a content-addressed on-disk
:class:`~repro.exec.cache.ResultCache`.

Guarantees (enforced by ``tests/test_exec_equivalence.py``):

* ``jobs=N`` and ``jobs=1`` produce identical results — simulations
  are seeded and deterministic, and nothing about process placement
  leaks into a cell.
* A cache hit replays the byte-identical pickled payload the original
  run stored; editing any source file under ``repro`` changes the
  cache salt and invalidates every entry.
"""

from repro.exec.cache import CacheEntry, CacheStats, ResultCache
from repro.exec.cells import Cell, execute_cell
from repro.exec.hashing import canonical, code_salt, fingerprint
from repro.exec.progress import (
    CellReport,
    ProgressHook,
    ProgressPrinter,
    StagedProgress,
)
from repro.exec.runner import ENV_JOBS, SweepRunner, resolve_jobs

__all__ = [
    "Cell",
    "CellReport",
    "CacheEntry",
    "CacheStats",
    "ENV_JOBS",
    "ProgressHook",
    "ProgressPrinter",
    "ResultCache",
    "StagedProgress",
    "SweepRunner",
    "canonical",
    "code_salt",
    "execute_cell",
    "fingerprint",
    "resolve_jobs",
]
