"""``repro.exec`` — phased, resumable, streaming experiment execution.

The substrate for every sweep in :mod:`repro.experiments`: experiment
modules describe their work as independent
:class:`~repro.exec.cells.Cell` invocations and hand them to a
:class:`~repro.exec.runner.SweepRunner` (or the underlying
:class:`~repro.exec.engine.Engine` directly), which plans them into
explicit phases (plan → probe → execute → fold), fans them out through
a work-stealing worker pool, memoises results in a content-addressed
on-disk :class:`~repro.exec.cache.ResultCache`, and — when a run
directory is configured — journals every completion durably so a
killed sweep resumes with only unfinished cells re-executed.  The
whole run is narrated as a typed event stream
(:mod:`repro.exec.events`) consumed by pluggable sinks.

Guarantees (enforced by ``tests/test_exec_equivalence.py`` and
``tests/test_exec_crash_resume.py``):

* ``jobs=N`` and ``jobs=1`` produce identical results — simulations
  are seeded and deterministic, and nothing about process placement,
  work-stealing interleaving, or queue order leaks into a cell.
* A cache hit replays the byte-identical pickled payload the original
  run stored; editing any source file under ``repro`` changes the
  cache salt and invalidates every entry.
* A sweep killed mid-run (SIGKILL included) and resumed folds to the
  byte-identical result of an uninterrupted run, with no completed
  cell executed twice.
"""

from repro.exec.cache import CacheEntry, CacheStats, ResultCache
from repro.exec.cells import Cell, engine_cell, execute_cell
from repro.exec.checkpoint import (
    ENV_RUN_DIR,
    CheckpointJournal,
    RunDir,
    RunDirError,
    RunManifest,
    derive_run_id,
    resolve_run_root,
)
from repro.exec.engine import ENV_KILL_AFTER, Engine
from repro.exec.events import (
    CellFinished,
    CellScheduled,
    CheckpointWritten,
    Event,
    EventSink,
    Finished,
    Interrupted,
    JsonlSink,
    PhaseStarted,
    TelemetrySink,
    TTYSink,
    read_event_log,
    validate_events,
)
from repro.exec.hashing import canonical, code_salt, fingerprint
from repro.exec.progress import (
    CellReport,
    EtaTracker,
    ProgressHook,
    ProgressPrinter,
    StagedProgress,
)
from repro.exec.queue import (
    WorkerCrash,
    WorkerHealth,
    WorkStealingPool,
    profiled_call,
)
from repro.exec.runner import (
    ENV_JOBS,
    SweepRunner,
    aggregate_telemetry,
    resolve_jobs,
)

__all__ = [
    "Cell",
    "CellFinished",
    "CellReport",
    "CellScheduled",
    "CacheEntry",
    "CacheStats",
    "CheckpointJournal",
    "CheckpointWritten",
    "ENV_JOBS",
    "ENV_KILL_AFTER",
    "ENV_RUN_DIR",
    "Engine",
    "EtaTracker",
    "Event",
    "EventSink",
    "Finished",
    "Interrupted",
    "JsonlSink",
    "PhaseStarted",
    "ProgressHook",
    "ProgressPrinter",
    "ResultCache",
    "RunDir",
    "RunDirError",
    "RunManifest",
    "StagedProgress",
    "SweepRunner",
    "TTYSink",
    "TelemetrySink",
    "WorkStealingPool",
    "WorkerCrash",
    "WorkerHealth",
    "aggregate_telemetry",
    "canonical",
    "code_salt",
    "derive_run_id",
    "engine_cell",
    "execute_cell",
    "fingerprint",
    "profiled_call",
    "read_event_log",
    "resolve_jobs",
    "resolve_run_root",
    "validate_events",
]
