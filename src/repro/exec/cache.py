"""Content-addressed on-disk cache for sweep-cell results.

Entries live under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable or the ``root`` argument),
sharded by the first two hex digits of the key.  Each entry is a
checksummed pickle: a corrupted, truncated or unreadable file is
counted as an *invalidation* and treated as a miss — the sweep simply
recomputes the cell and overwrites the bad entry.

The cache is purely content-addressed: keys already encode the code
version (see :func:`repro.exec.hashing.code_salt`), so there is no
expiry logic; ``clear()`` (or ``make clean-cache``) drops everything.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

_MAGIC = b"REPROCACHE1\n"
_DIGEST_BYTES = 32


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep (or one cache lifetime)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: corrupted / truncated / unpicklable entries discarded as misses
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_line(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} invalidations={self.invalidations}"
        )


@dataclass
class CacheEntry:
    hit: bool
    value: Any = None
    #: raw pickled payload (byte-identical across replays of a key)
    payload: Optional[bytes] = None


@dataclass
class ResultCache:
    """Store/retrieve pickled results keyed by content hash."""

    root: Path = field(default_factory=lambda: Path(
        os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    ))
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> CacheEntry:
        """Look up ``key``; corruption of any kind degrades to a miss."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return CacheEntry(hit=False)
        payload = self._verify(raw)
        if payload is None:
            self.stats.invalidations += 1
            self.stats.misses += 1
            self._discard(path)
            return CacheEntry(hit=False)
        try:
            value = pickle.loads(payload)
        # unpickling a (checksum-valid but stale/foreign) entry can raise
        # nearly anything — AttributeError, ImportError, UnpicklingError —
        # and every one of them must degrade to a cache miss; no
        # simulation runs inside this frame, so no SimulationError can be
        # swallowed here.
        except Exception:  # simlint: disable=SIM006
            self.stats.invalidations += 1
            self.stats.misses += 1
            self._discard(path)
            return CacheEntry(hit=False)
        self.stats.hits += 1
        return CacheEntry(hit=True, value=value, payload=payload)

    def put(self, key: str, value: Any) -> bytes:
        """Store ``value``; returns the pickled payload bytes."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # atomic publish: a crashed writer never leaves a short file
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(digest)
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return payload

    @staticmethod
    def _verify(raw: bytes) -> Optional[bytes]:
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(raw) < header or not raw.startswith(_MAGIC):
            return None
        digest = raw[len(_MAGIC):header]
        payload = raw[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def sweep_temps(self) -> int:
        """Remove stranded atomic-write temp files; returns the count.

        ``put`` publishes entries via rename, so a ``.tmp-*`` file is
        only ever left behind by a process that died mid-write (SIGKILL,
        Ctrl-C delivered at exactly the wrong instruction).  Such files
        are unreachable garbage — no key resolves to them — and the
        engine sweeps them on run-directory open and on interrupt.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.rglob(".tmp-*"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.rglob("*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed


__all__ = ["CacheStats", "CacheEntry", "ResultCache"]
