"""Durable run directories: checkpoint journal + result store + events.

A *run directory* makes a sweep resumable: every completed cell is
journalled (append-only, fsynced) under its content-addressed cache
key, and its pickled result lands in a private
:class:`~repro.exec.cache.ResultCache` inside the run directory.  A
killed sweep — SIGKILL, OOM, a yanked laptop lid — resumes by
re-planning the same cells: journalled keys replay from the run
store, everything else re-executes.

Layout, under ``<root>/<run-id>/``::

    manifest.json    run id, code salt, first plan fingerprint
    journal.jsonl    one {"kind": "cell", "key": ..., ...} per cell
    events.jsonl     the engine event stream (appended across resumes)
    results/         ResultCache keyed by the same cache hashes

Run ids are content-addressed too: ``run-<plan fingerprint>`` of the
first sweep planned against the directory, so re-running the *same*
sweep with the same code automatically lands in (and resumes) the same
run — no wall-clock naming, no id bookkeeping.  ``--resume <run-id>``
pins an id explicitly and fails loudly if it is missing or was written
by different code (the salt check), instead of silently recomputing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Optional, Union

from repro.exec.cache import ResultCache

ENV_RUN_DIR = "REPRO_RUN_DIR"

#: hex digits of the plan fingerprint used in derived run ids
_RUN_ID_DIGITS = 12


class RunDirError(RuntimeError):
    """A run directory cannot be (re)used: missing, or salt mismatch."""


def resolve_run_root(
    root: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Explicit argument > ``REPRO_RUN_DIR`` > no checkpointing."""
    if root is not None:
        return Path(root)
    # Where checkpoints land is operational plumbing: it decides whether
    # results are journalled, never what they are (pinned by
    # tests/test_exec_crash_resume.py's resumed ≡ uninterrupted fold).
    env = os.environ.get(ENV_RUN_DIR, "").strip()  # simlint: disable=SIM008
    return Path(env) if env else None


def derive_run_id(plan_fingerprint: str) -> str:
    return f"run-{plan_fingerprint[:_RUN_ID_DIGITS]}"


class CheckpointJournal:
    """Append-only JSONL journal of completed cells.

    Each :meth:`append` is flushed *and* fsynced before returning —
    when the engine reports a checkpoint, the record is on disk, so a
    SIGKILL one instruction later loses nothing.  :meth:`load`
    tolerates a truncated final line (the half-written record of a
    crash mid-append) by dropping it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def load(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        records: list[dict[str, Any]] = []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    break  # torn final append from a crash
                raise
        return records

    def append(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.flush()

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class RunManifest:
    """Identity of a run directory: which code, which first plan."""

    run_id: str
    salt: str
    plan: str

    def to_json(self) -> dict[str, str]:
        return {"run_id": self.run_id, "salt": self.salt, "plan": self.plan}

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "RunManifest":
        return cls(
            run_id=str(doc["run_id"]),
            salt=str(doc["salt"]),
            plan=str(doc["plan"]),
        )


class RunDir:
    """One resumable run: journal + result store + event log paths."""

    def __init__(self, path: Path, manifest: RunManifest) -> None:
        self.path = path
        self.manifest = manifest
        self.journal = CheckpointJournal(path / "journal.jsonl")
        self.results = ResultCache(root=path / "results")
        self.events_path = path / "events.jsonl"

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        *,
        salt: str,
        plan_fingerprint: str,
        run_id: Optional[str] = None,
    ) -> "RunDir":
        """Create or attach the run directory for one planned sweep.

        Without ``run_id`` the id derives from the plan fingerprint
        (same sweep + same code → same directory → automatic resume).
        With ``run_id`` (``--resume``) the directory must already
        exist.  Either way, a manifest written by a different code
        salt is an error: its journal keys could never match the
        re-planned cells, and silently recomputing everything is the
        failure mode resume exists to prevent.
        """
        root = Path(root)
        explicit = run_id is not None
        if run_id is None:
            run_id = derive_run_id(plan_fingerprint)
        path = root / run_id
        manifest_path = path / "manifest.json"
        if manifest_path.exists():
            manifest = RunManifest.from_json(
                json.loads(manifest_path.read_text(encoding="utf-8"))
            )
            if manifest.salt != salt:
                raise RunDirError(
                    f"run {run_id!r} was written by a different code "
                    "version; its checkpoints cannot be trusted — start "
                    "a fresh run (or clear the run directory)"
                )
        elif explicit:
            raise RunDirError(
                f"cannot resume run {run_id!r}: no manifest under {path}"
            )
        else:
            path.mkdir(parents=True, exist_ok=True)
            manifest = RunManifest(
                run_id=run_id, salt=salt, plan=plan_fingerprint
            )
            tmp = manifest_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(manifest.to_json(), indent=2, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, manifest_path)
        run = cls(path, manifest)
        # a previous crash may have stranded atomic-write temp files in
        # the result store; they are unreachable garbage, drop them
        run.results.sweep_temps()
        return run

    # ------------------------------------------------------------------
    def completed_keys(self) -> set[str]:
        """Cache keys of every cell the journal says finished."""
        return {
            str(record["key"])
            for record in self.journal.load()
            if record.get("kind") == "cell" and record.get("key")
        }

    def record_cell(
        self,
        key: str,
        *,
        index: int,
        label: str,
        stage: str,
        seconds: float,
        utime_s: float = 0.0,
        stime_s: float = 0.0,
        max_rss_kb: float = 0.0,
    ) -> None:
        """Journal one completed cell (durable before returning).

        The resource-profile fields feed the slowest-cells tables
        (``repro.ops.profiles``) and ``python -m repro.ops attach``;
        zeros for cache-hit folds, which executed nothing.
        """
        self.journal.append({
            "kind": "cell",
            "key": key,
            "index": index,
            "label": label,
            "stage": stage,
            "seconds": round(seconds, 6),
            "utime_s": round(utime_s, 6),
            "stime_s": round(stime_s, 6),
            "max_rss_kb": round(max_rss_kb, 3),
        })

    def close(self) -> None:
        self.journal.close()


__all__ = [
    "CheckpointJournal",
    "ENV_RUN_DIR",
    "RunDir",
    "RunDirError",
    "RunManifest",
    "derive_run_id",
    "resolve_run_root",
]
