"""Per-cell progress reporting for long sweeps."""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional, TextIO


@dataclass(frozen=True)
class CellReport:
    """Emitted once per cell, as soon as its result is known."""

    index: int  # position in the sweep (0-based)
    total: int
    label: str
    outcome: str  # "hit" | "ran"
    seconds: float  # compute time (0.0 for cache hits)
    key: Optional[str] = None  # cache key, when caching is active


#: signature of a progress hook
ProgressHook = Callable[[CellReport], None]


class ProgressPrinter:
    """Default hook: one line per cell, timings included.

    Writes to stderr by default so experiment tables on stdout stay
    machine-comparable (parallel and serial runs print identical
    stdout).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, report: CellReport) -> None:
        width = len(str(report.total))
        print(
            f"[{report.index + 1:{width}d}/{report.total}] "
            f"{report.outcome:<3s} {report.label} "
            f"({report.seconds:.2f}s)",
            file=self.stream,
            flush=True,
        )


__all__ = ["CellReport", "ProgressHook", "ProgressPrinter"]
