"""Per-cell progress reporting for long sweeps.

Flat sweeps (one list of cells) report ``[i/total]`` lines.  Nested
sweeps — the fleet simulator runs *epochs*, each of which shards a
fleet of hosts over the pool — wrap their hook in
:class:`StagedProgress` so every line carries the enclosing stage
(``[weekday:aql_aware epoch 2/3] [12/64] ran host07``) instead of a
meaningless flat cell count that resets every epoch.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, replace
from typing import Callable, Optional, TextIO


class EtaTracker:
    """Remaining-time projection that cannot divide by zero or go
    negative.

    Cached and resumed cells complete "instantly" (``seconds == 0.0``),
    so a naive ``elapsed / completed`` rate either divides by zero (no
    cells done yet) or projects a wildly optimistic finish after a warm
    probe phase replayed most of the sweep.  The tracker therefore
    averages **executed** cells only: :meth:`estimate` returns ``None``
    until at least one cell has really run (unknown, not zero), and
    every estimate clamps at ``0.0`` so a run that overshoots its plan
    never reports negative time remaining.  Pinned by
    ``tests/test_exec_progress.py``.
    """

    __slots__ = ("ran", "ran_seconds")

    def __init__(self) -> None:
        self.ran = 0
        self.ran_seconds = 0.0

    def note(self, outcome: str, seconds: float) -> None:
        """Fold one finished cell (the ``CellFinished`` fields)."""
        if outcome == "ran":
            self.ran += 1
            self.ran_seconds += max(0.0, seconds)

    def rate(self) -> Optional[float]:
        """Mean seconds per executed cell; None before the first one."""
        if self.ran <= 0:
            return None
        return self.ran_seconds / self.ran

    def estimate(self, remaining: int) -> Optional[float]:
        """Projected seconds for ``remaining`` more cells.

        ``0.0`` when nothing remains, ``None`` when no executed cell
        has established a rate yet, otherwise ``rate * remaining``
        clamped to be non-negative.
        """
        if remaining <= 0:
            return 0.0
        per_cell = self.rate()
        if per_cell is None:
            return None
        return max(0.0, per_cell * remaining)


@dataclass(frozen=True)
class CellReport:
    """Emitted once per cell, as soon as its result is known."""

    index: int  # position in the sweep (0-based)
    total: int
    label: str
    outcome: str  # "hit" | "ran"
    seconds: float  # compute time (0.0 for cache hits)
    key: Optional[str] = None  # cache key, when caching is active
    #: enclosing stage for nested work (e.g. ``"epoch 2/3"``); empty
    #: for flat sweeps
    stage: str = ""


#: signature of a progress hook
ProgressHook = Callable[[CellReport], None]


class ProgressPrinter:
    """Default hook: one line per cell, timings included.

    Writes to stderr by default so experiment tables on stdout stay
    machine-comparable (parallel and serial runs print identical
    stdout).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, report: CellReport) -> None:
        width = len(str(report.total))
        prefix = f"[{report.stage}] " if report.stage else ""
        print(
            f"{prefix}[{report.index + 1:{width}d}/{report.total}] "
            f"{report.outcome:<3s} {report.label} "
            f"({report.seconds:.2f}s)",
            file=self.stream,
            flush=True,
        )


class StagedProgress:
    """Label nested sweeps: one base hook, many per-stage sub-hooks.

    A driver that runs several inner sweeps (the fleet's epoch loop)
    creates one ``StagedProgress`` over the caller's hook and asks for
    a per-stage hook before each inner sweep; every report the inner
    sweep emits is re-emitted with :attr:`CellReport.stage` set.  The
    aggregate cell count across stages is tracked in
    :attr:`cells_reported` so drivers can summarise total work done.
    """

    def __init__(self, base: Optional[ProgressHook]) -> None:
        self.base = base
        self.cells_reported = 0

    def stage(self, label: str) -> Optional[ProgressHook]:
        """A hook that tags every report with ``label``.

        Returns None when the base hook is None (quiet mode), so
        callers can hand the result straight to a SweepRunner.
        """
        if self.base is None:
            return None

        def hook(report: CellReport) -> None:
            self.cells_reported += 1
            assert self.base is not None
            self.base(replace(report, stage=label))

        return hook


__all__ = [
    "CellReport",
    "EtaTracker",
    "ProgressHook",
    "ProgressPrinter",
    "StagedProgress",
]
