"""The parallel sweep engine.

:class:`SweepRunner` executes a list of independent
:class:`~repro.exec.cells.Cell` invocations, optionally fanning them
out over a ``ProcessPoolExecutor`` and optionally memoising results in
a :class:`~repro.exec.cache.ResultCache`.  Because every simulation is
seeded and deterministic (DESIGN.md §5/§7), parallel, serial and
cache-replayed execution produce identical results — the equivalence
tests in ``tests/test_exec_equivalence.py`` enforce this.

Worker-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  ``jobs=1`` and
platforms without the ``fork`` start method always take the in-process
serial path; workers are forked, so they inherit the parent's imports
and hash seed and cost no re-import time.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.cells import Cell
from repro.exec.hashing import code_salt
from repro.exec.progress import CellReport, ProgressHook

ENV_JOBS = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_JOBS`` > serial."""
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {env!r}"
                ) from exc
    if jobs is None:
        return 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def aggregate_telemetry(results: Sequence[Any]) -> dict[str, float]:
    """Merge per-run telemetry summaries out of sweep results.

    Any result exposing a non-empty ``telemetry_summary`` mapping (a
    :class:`~repro.experiments.runner.ScenarioRun` run with
    ``telemetry=True``) contributes; other results are skipped.  Values
    are summed per qualified instrument name, ``telemetry_runs`` counts
    the contributing results, and keys come back sorted — the aggregate
    is a pure fold over per-cell values, so it is identical for serial,
    parallel and cache-replayed sweeps.  Empty when nothing contributed.
    """
    totals: dict[str, float] = {}
    contributing = 0
    for result in results:
        summary = getattr(result, "telemetry_summary", None)
        if not summary:
            continue
        contributing += 1
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + float(value)
    if not contributing:
        return {}
    aggregate = {key: totals[key] for key in sorted(totals)}
    aggregate["telemetry_runs"] = float(contributing)
    return aggregate


def _timed_call(
    fn: Callable[..., Any], kwargs: Mapping[str, Any]
) -> tuple[Any, float]:
    """Worker entry point (module-level so it pickles across fork)."""
    start = time.perf_counter()
    value = fn(**kwargs)
    return value, time.perf_counter() - start


class SweepRunner:
    """Run independent sweep cells, in parallel and/or from cache."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressHook] = None,
        salt: Optional[str] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress
        self._salt = salt

    @property
    def salt(self) -> str:
        if self._salt is None:
            self._salt = code_salt()
        return self._salt

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute every cell; results come back in cell order."""
        cells = list(cells)
        total = len(cells)
        results: list[Any] = [None] * total
        pending: list[tuple[int, Cell, Optional[str]]] = []

        for index, cell in enumerate(cells):
            key = cell.cache_key(self.salt) if self.cache is not None else None
            if key is not None:
                entry = self.cache.get(key)
                if entry.hit:
                    results[index] = entry.value
                    self._report(index, total, cell, "hit", 0.0, key)
                    continue
            pending.append((index, cell, key))

        if pending:
            if self._effective_jobs(len(pending)) > 1:
                self._run_parallel(pending, results, total)
            else:
                self._run_serial(pending, results, total)
        return results

    def run_one(self, cell: Cell) -> Any:
        return self.run([cell])[0]

    # ------------------------------------------------------------------
    def _effective_jobs(self, pending: int) -> int:
        if self.jobs <= 1 or pending <= 1 or not _fork_available():
            return 1
        return min(self.jobs, pending)

    def _run_serial(
        self,
        pending: Sequence[tuple[int, Cell, Optional[str]]],
        results: list[Any],
        total: int,
    ) -> None:
        for index, cell, key in pending:
            # mirror the isolation a worker process gets: the cell runs
            # on a private copy of its kwargs, so a policy mutated by
            # setup() never leaks back into the caller's cell (whose
            # pristine state the cache key was computed from)
            value, seconds = _timed_call(
                cell.fn, copy.deepcopy(dict(cell.kwargs))
            )
            self._finish(index, cell, key, value, seconds, results, total)

    def _run_parallel(
        self,
        pending: Sequence[tuple[int, Cell, Optional[str]]],
        results: list[Any],
        total: int,
    ) -> None:
        workers = self._effective_jobs(len(pending))
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as executor:
            futures = {
                executor.submit(_timed_call, cell.fn, dict(cell.kwargs)):
                    (index, cell, key)
                for index, cell, key in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, cell, key = futures[future]
                    value, seconds = future.result()
                    self._finish(
                        index, cell, key, value, seconds, results, total
                    )

    def _finish(
        self,
        index: int,
        cell: Cell,
        key: Optional[str],
        value: Any,
        seconds: float,
        results: list[Any],
        total: int,
    ) -> None:
        if key is not None:
            assert self.cache is not None
            self.cache.put(key, value)
        results[index] = value
        self._report(index, total, cell, "ran", seconds, key)

    def _report(
        self,
        index: int,
        total: int,
        cell: Cell,
        outcome: str,
        seconds: float,
        key: Optional[str],
    ) -> None:
        if self.progress is None:
            return
        self.progress(CellReport(
            index=index,
            total=total,
            label=cell.display,
            outcome=outcome,
            seconds=seconds,
            key=key,
        ))

    def __repr__(self) -> str:
        cached = "on" if self.cache is not None else "off"
        return f"<SweepRunner jobs={self.jobs} cache={cached}>"


__all__ = [
    "SweepRunner",
    "aggregate_telemetry",
    "resolve_jobs",
    "ENV_JOBS",
]
