"""The sweep runner facade over the long-lived engine.

:class:`SweepRunner` keeps the API every experiment family programs
against (``run(cells)`` → results in cell order, ``jobs``/``cache``/
``progress``/``salt``) while delegating execution to the phased
:class:`~repro.exec.engine.Engine`: cells fan out through the
work-stealing queue, completions journal to the run directory when one
is configured, and the engine's event stream feeds the progress hook
plus any extra sinks.  Because every simulation is seeded and
deterministic (DESIGN.md §5/§7), serial, parallel, cache-replayed and
*resumed* execution produce identical results — the equivalence tests
in ``tests/test_exec_equivalence.py`` enforce all four legs.

Worker-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  ``jobs=1`` and
platforms without the ``fork`` start method always take the in-process
serial path; workers are forked, so they inherit the parent's imports
and hash seed and cost no re-import time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.exec.cache import ResultCache
from repro.exec.cells import Cell
from repro.exec.engine import ENV_JOBS, ENV_KILL_AFTER, Engine, resolve_jobs
from repro.exec.events import EventSink
from repro.exec.progress import ProgressHook

__all__ = [
    "SweepRunner",
    "aggregate_telemetry",
    "resolve_jobs",
    "ENV_JOBS",
    "ENV_KILL_AFTER",
]


def aggregate_telemetry(results: Sequence[Any]) -> dict[str, float]:
    """Merge per-run telemetry summaries out of sweep results.

    Any result exposing a non-empty ``telemetry_summary`` mapping (a
    :class:`~repro.experiments.runner.ScenarioRun` run with
    ``telemetry=True``) contributes; other results are skipped.  Values
    are summed per qualified instrument name, ``telemetry_runs`` counts
    the contributing results, and keys come back sorted — the aggregate
    is a pure fold over per-cell values, so it is identical for serial,
    parallel, cache-replayed and resumed sweeps.  Empty when nothing
    contributed.
    """
    totals: dict[str, float] = {}
    contributing = 0
    for result in results:
        summary = getattr(result, "telemetry_summary", None)
        if not summary:
            continue
        contributing += 1
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + float(value)
    if not contributing:
        return {}
    aggregate = {key: totals[key] for key in sorted(totals)}
    aggregate["telemetry_runs"] = float(contributing)
    return aggregate


class SweepRunner:
    """Run independent sweep cells: parallel, cached, resumable."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressHook] = None,
        salt: Optional[str] = None,
        run_root: Union[str, Path, None] = None,
        run_id: Optional[str] = None,
        sinks: Sequence[EventSink] = (),
    ):
        self.engine = Engine(
            jobs=jobs,
            cache=cache,
            salt=salt,
            run_root=run_root,
            run_id=run_id,
            sinks=sinks,
        )
        #: per-cell progress hook; mutable (the fleet swaps staged
        #: hooks in and out around its epoch sweeps)
        self.progress = progress

    # -- the facade surface the experiment families program against ----
    @property
    def jobs(self) -> int:
        return self.engine.jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.engine.cache

    @property
    def salt(self) -> str:
        return self.engine.salt

    def run(self, cells: Sequence[Cell], stage: str = "") -> list[Any]:
        """Execute every cell; results come back in cell order."""
        return self.engine.run(cells, stage=stage, progress=self.progress)

    def run_one(self, cell: Cell) -> Any:
        return self.run([cell])[0]

    def __repr__(self) -> str:
        cached = "on" if self.cache is not None else "off"
        return f"<SweepRunner jobs={self.jobs} cache={cached}>"
