"""Hardware substrate: topology, caches, performance counters.

The paper's testbeds were an Intel i7-3770 (single socket, 8 MB LLC) and
a 4-socket Xeon E5-4603.  We model the parts of those machines that the
paper's effects depend on:

* socket/core topology (:mod:`repro.hardware.topology`),
* a shared last-level cache per socket with per-actor occupancy and
  proportional eviction (:mod:`repro.hardware.cache`) — this is what
  makes quantum length matter for LLC-friendly workloads,
* per-vCPU performance-monitoring counters (:mod:`repro.hardware.pmu`),
* pause-loop-exit spin detection (:mod:`repro.hardware.ple`).
"""

from repro.hardware.cache import MemoryProfile, SegmentResult, SharedCache
from repro.hardware.pmu import PmuCounters
from repro.hardware.ple import PleDetector
from repro.hardware.specs import CacheSpec, MachineSpec, i7_3770, xeon_e5_4603
from repro.hardware.topology import PCpu, Socket, Topology

__all__ = [
    "CacheSpec",
    "MachineSpec",
    "i7_3770",
    "xeon_e5_4603",
    "PCpu",
    "Socket",
    "Topology",
    "SharedCache",
    "MemoryProfile",
    "SegmentResult",
    "PmuCounters",
    "PleDetector",
]
