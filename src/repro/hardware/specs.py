"""Machine specifications mirroring the paper's two testbeds.

Table 2 of the paper describes the calibration machine (Intel i7-3770,
one socket, 8 cores, 8 MB 20-way LLC, 256 KB L2, 32 KB L1); the
multi-socket experiment used a 4-socket Xeon E5-4603.  The latency
numbers are not in the paper — they are typical figures for those parts
and only their *ratios* matter for the reproduced effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one cache level."""

    capacity_bytes: int
    line_bytes: int = 64
    hit_ns: float = 0.0  # extra latency of a hit at this level
    miss_ns: float = 0.0  # latency of going past this level (to DRAM for LLC)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        if self.line_bytes <= 0 or self.capacity_bytes % self.line_bytes:
            raise ValueError("capacity must be a whole number of lines")

    @property
    def lines(self) -> int:
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class MachineSpec:
    """A physical machine: sockets of cores sharing an LLC each."""

    name: str
    sockets: int
    cores_per_socket: int
    freq_ghz: float
    l1: CacheSpec = field(default_factory=lambda: CacheSpec(32 * KB))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(256 * KB))
    llc: CacheSpec = field(
        default_factory=lambda: CacheSpec(8 * MB, hit_ns=12.0, miss_ns=80.0)
    )

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError("sockets and cores_per_socket must be positive")
        if self.freq_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


def i7_3770() -> MachineSpec:
    """The paper's calibration machine (Table 2): 1 socket, 8 cores."""
    return MachineSpec(
        name="Intel Core i7-3770",
        sockets=1,
        cores_per_socket=8,
        freq_ghz=3.4,
        l1=CacheSpec(32 * KB),
        l2=CacheSpec(256 * KB),
        llc=CacheSpec(8 * MB, hit_ns=12.0, miss_ns=80.0),
    )


def xeon_e5_4603() -> MachineSpec:
    """The paper's multi-socket machine: 4 sockets x 4 cores."""
    return MachineSpec(
        name="Intel Xeon E5-4603",
        sockets=4,
        cores_per_socket=4,
        freq_ghz=2.0,
        l1=CacheSpec(32 * KB),
        l2=CacheSpec(256 * KB),
        llc=CacheSpec(10 * MB, hit_ns=14.0, miss_ns=90.0),
    )


__all__ = ["KB", "MB", "CacheSpec", "MachineSpec", "i7_3770", "xeon_e5_4603"]
