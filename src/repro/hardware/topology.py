"""Socket/core topology built from a :class:`MachineSpec`.

The topology is deliberately dumb: it owns identities (socket ids, pCPU
ids) and each socket's shared LLC instance.  All *scheduling* state for
a pCPU lives in the hypervisor layer (:mod:`repro.hypervisor`), keeping
hardware reusable under any scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.hardware.cache import SharedCache
from repro.hardware.specs import MachineSpec


@dataclass(eq=False)
class PCpu:
    """One physical core."""

    cpu_id: int
    socket: "Socket"

    def __repr__(self) -> str:
        return f"pCPU{self.cpu_id}(socket{self.socket.socket_id})"


@dataclass(eq=False)
class Socket:
    """One package: a set of cores sharing a last-level cache."""

    socket_id: int
    llc: SharedCache
    pcpus: list[PCpu] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"Socket{self.socket_id}({len(self.pcpus)} cores)"


class Topology:
    """All sockets and cores of a machine, with stable global pCPU ids."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.sockets: list[Socket] = []
        self.pcpus: list[PCpu] = []
        cpu_id = 0
        for socket_id in range(spec.sockets):
            llc = SharedCache(
                capacity_bytes=spec.llc.capacity_bytes,
                line_bytes=spec.llc.line_bytes,
            )
            socket = Socket(socket_id=socket_id, llc=llc)
            for _ in range(spec.cores_per_socket):
                pcpu = PCpu(cpu_id=cpu_id, socket=socket)
                socket.pcpus.append(pcpu)
                self.pcpus.append(pcpu)
                cpu_id += 1
            self.sockets.append(socket)

    def socket_of(self, pcpu: PCpu) -> Socket:
        return pcpu.socket

    def __iter__(self) -> Iterator[PCpu]:
        return iter(self.pcpus)

    def __len__(self) -> int:
        return len(self.pcpus)

    def __repr__(self) -> str:
        return (
            f"Topology({self.spec.name}: {self.spec.sockets} sockets x "
            f"{self.spec.cores_per_socket} cores)"
        )


__all__ = ["PCpu", "Socket", "Topology"]
