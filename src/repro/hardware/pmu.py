"""Per-vCPU performance-monitoring counters.

The paper's vTRS reads LLC misses, LLC references and retired
instructions through perfctr-xen.  In the simulator every run segment's
:class:`~repro.hardware.cache.SegmentResult` is accumulated into the
vCPU's :class:`PmuCounters`; monitors take snapshots and compute
per-period deltas, exactly like reading a free-running hardware counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import SegmentResult


@dataclass(slots=True)
class PmuSnapshot:
    """A point-in-time copy of the free-running counters."""

    instructions: float = 0.0
    llc_refs: float = 0.0
    llc_misses: float = 0.0


class PmuCounters:
    """Free-running counters; deltas are computed from snapshots."""

    __slots__ = ("instructions", "llc_refs", "llc_misses")

    def __init__(self) -> None:
        self.instructions = 0.0
        self.llc_refs = 0.0
        self.llc_misses = 0.0

    def add_segment(self, segment: SegmentResult) -> None:
        self.instructions += segment.instructions
        self.llc_refs += segment.llc_refs
        self.llc_misses += segment.llc_misses

    def add(self, instructions: float, llc_refs: float, llc_misses: float) -> None:
        self.instructions += instructions
        self.llc_refs += llc_refs
        self.llc_misses += llc_misses

    def snapshot(self) -> PmuSnapshot:
        return PmuSnapshot(self.instructions, self.llc_refs, self.llc_misses)

    def delta_since(self, snap: PmuSnapshot) -> PmuSnapshot:
        """Counter increments since ``snap`` was taken."""
        return PmuSnapshot(
            instructions=self.instructions - snap.instructions,
            llc_refs=self.llc_refs - snap.llc_refs,
            llc_misses=self.llc_misses - snap.llc_misses,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PMU instr={self.instructions:.0f} refs={self.llc_refs:.0f} "
            f"miss={self.llc_misses:.0f}>"
        )


__all__ = ["PmuCounters", "PmuSnapshot"]
