"""Analytic shared last-level-cache model.

Rather than simulating individual memory accesses, the model tracks how
many bytes of each actor's (guest thread's) working set are resident in
the socket's LLC, and integrates CPU execution over a run segment in a
handful of sub-steps:

* hit probability of an actor = resident bytes / working-set size
  (uniform-access approximation),
* each LLC miss fetches one line, growing the actor's residency and
  evicting co-resident actors proportionally to their occupancy once the
  cache is full,
* instruction cost = ``base_cpi_ns + llc_ref_rate * (p_hit * hit_ns +
  (1 - p_hit) * miss_ns)``.

This reproduces exactly the effects the paper builds on: an LLC-friendly
(LLCF) working set is evicted while its vCPU is descheduled and must be
re-fetched on return — so short quanta mean permanently cold caches —
while a trashing (LLCO) working set misses at a floor rate regardless of
quantum and constantly evicts its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

#: Occupancy amounts below this many bytes are dropped to keep the
#: occupancy table small and avoid float dust.
_EPSILON_BYTES = 1.0


@dataclass(frozen=True, slots=True)
class MemoryProfile:
    """How a stream of instructions exercises the memory hierarchy.

    ``llc_ref_rate`` is the number of references that reach the LLC per
    instruction, i.e. *after* filtering by the private L1/L2 — a
    low-level-cache-friendly workload therefore has a near-zero rate
    even though it touches memory constantly.  ``base_cpi_ns`` is the
    cost per instruction excluding LLC/DRAM stalls (core pipeline plus
    L1/L2 time).
    """

    wss_bytes: int = 0
    llc_ref_rate: float = 0.0
    base_cpi_ns: float = 0.30

    def __post_init__(self) -> None:
        if self.wss_bytes < 0:
            raise ValueError("working-set size cannot be negative")
        if self.llc_ref_rate < 0:
            raise ValueError("LLC reference rate cannot be negative")
        if self.base_cpi_ns <= 0:
            raise ValueError("base CPI must be positive")


@dataclass(slots=True)
class SegmentResult:
    """What happened during one integrated run segment."""

    instructions: float = 0.0
    llc_refs: float = 0.0
    llc_misses: float = 0.0
    elapsed_ns: float = 0.0

    def merge(self, other: "SegmentResult") -> None:
        self.instructions += other.instructions
        self.llc_refs += other.llc_refs
        self.llc_misses += other.llc_misses
        self.elapsed_ns += other.elapsed_ns


class SharedCache:
    """A socket-wide LLC with per-actor occupancy accounting.

    Actors are arbitrary hashable handles (the simulator uses guest
    thread objects).  Occupancies are floats in bytes; the invariant
    ``sum(occupancy) <= capacity`` always holds.
    """

    __slots__ = (
        "capacity_bytes", "line_bytes", "reuse_exponent", "_occupancy", "_total",
    )

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        reuse_exponent: float = 0.5,
    ):
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ValueError("capacity and line size must be positive")
        if not 0 < reuse_exponent <= 1.0:
            raise ValueError("reuse exponent must be in (0, 1]")
        self.capacity_bytes = float(capacity_bytes)
        self.line_bytes = float(line_bytes)
        #: concavity of the hit curve: real programs have a hot subset,
        #: so the first resident fraction of the working set serves a
        #: disproportionate share of hits (p_hit = resident_fraction **
        #: reuse_exponent).  1.0 recovers the uniform-access model.
        self.reuse_exponent = reuse_exponent
        self._occupancy: dict[Hashable, float] = {}
        self._total = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def occupancy_of(self, actor: Hashable) -> float:
        return self._occupancy.get(actor, 0.0)

    @property
    def total_occupancy(self) -> float:
        return self._total

    @property
    def free_bytes(self) -> float:
        return max(0.0, self.capacity_bytes - self._total)

    def actors(self) -> list[Hashable]:
        return list(self._occupancy)

    def hit_probability(self, actor: Hashable, wss_bytes: int) -> float:
        """P(reference hits), concave in the resident fraction."""
        if wss_bytes <= 0:
            return 1.0
        fraction = min(1.0, self.occupancy_of(actor) / float(wss_bytes))
        return fraction ** self.reuse_exponent

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, actor: Hashable, nbytes: float, wss_bytes: int) -> None:
        """Account ``nbytes`` of miss fills for ``actor``.

        Residency grows toward ``min(wss, capacity)``; growth beyond the
        free space evicts other actors proportionally to their share.
        Fills past the target (a trashing working set cycling through
        itself) keep evicting others at a reduced pressure without
        growing the actor, which is how an LLCO stream keeps the whole
        socket's cache churned.
        """
        if nbytes <= 0:
            return
        target = min(float(wss_bytes), self.capacity_bytes)
        occupancy = self._occupancy.get(actor, 0.0)
        grow = min(nbytes, max(0.0, target - occupancy))
        churn = max(0.0, nbytes - grow)
        if grow > 0:
            from_free = min(grow, self.free_bytes)
            need = grow - from_free
            if need > 0:
                self._evict_from_others(actor, need)
            self._occupancy[actor] = occupancy + grow
            self._total += grow
        if churn > 0:
            # A working set larger than the cache re-fetches its own
            # lines; a fraction of those fills still displace other
            # actors' lines (set-conflict pressure).
            others = self._total - self._occupancy.get(actor, 0.0)
            if others > 0:
                pressure = min(others, churn * (others / self.capacity_bytes))
                evicted = self._evict_from_others(actor, pressure)
                # The displaced space is immediately re-used by the
                # churning actor only up to its target; otherwise it
                # stays free until someone misses.
                del evicted

    def _evict_from_others(self, actor: Hashable, amount: float) -> float:
        """Evict up to ``amount`` bytes from everyone but ``actor``."""
        victims = [(a, occ) for a, occ in self._occupancy.items() if a is not actor]
        others_total = sum(occ for _, occ in victims)
        if others_total <= 0:
            return 0.0
        amount = min(amount, others_total)
        for victim, occ in victims:
            share = occ / others_total
            taken = amount * share
            remaining = occ - taken
            if remaining < _EPSILON_BYTES:
                self._total -= occ
                del self._occupancy[victim]
            else:
                self._total -= taken
                self._occupancy[victim] = remaining
        return amount

    def evict_actor(self, actor: Hashable) -> float:
        """Remove all of ``actor``'s lines (e.g. after socket migration)."""
        occupancy = self._occupancy.pop(actor, 0.0)
        self._total -= occupancy
        if self._total < 0:
            self._total = 0.0
        return occupancy

    def flush(self) -> None:
        """Empty the whole cache."""
        self._occupancy.clear()
        self._total = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        used = 100.0 * self._total / self.capacity_bytes
        return f"<SharedCache {used:.1f}% of {int(self.capacity_bytes)}B>"


# ----------------------------------------------------------------------
# segment integration
# ----------------------------------------------------------------------
def _per_instruction_ns(
    profile: MemoryProfile, p_hit: float, hit_ns: float, miss_ns: float
) -> float:
    stall = profile.llc_ref_rate * (p_hit * hit_ns + (1.0 - p_hit) * miss_ns)
    return profile.base_cpi_ns + stall


def integrate_duration(
    cache: SharedCache,
    actor: Hashable,
    profile: MemoryProfile,
    duration_ns: float,
    hit_ns: float,
    miss_ns: float,
    substeps: int = 8,
) -> SegmentResult:
    """Advance ``actor`` by ``duration_ns`` of CPU time.

    Returns the instructions/refs/misses retired and updates the cache
    occupancy as the working set warms.  Sub-stepping captures the
    warm-up curve: the first sub-steps run miss-heavy and the later ones
    at the warmed speed.

    This is the hottest arithmetic in the whole simulator (it runs at
    every segment boundary), so the bodies of :meth:`SharedCache.
    hit_probability` and :func:`_per_instruction_ns` are inlined below.
    The float operations and their order are kept exactly identical to
    those helpers — the golden-shape tests require bit-for-bit equal
    results.
    """
    result = SegmentResult()
    if duration_ns <= 0:
        return result
    dt = duration_ns / substeps
    wss = profile.wss_bytes
    ref_rate = profile.llc_ref_rate
    base_cpi = profile.base_cpi_ns
    exponent = cache.reuse_exponent
    line_bytes = cache.line_bytes
    occupancy = cache._occupancy
    insert = cache.insert
    instructions_total = 0.0
    refs_total = 0.0
    misses_total = 0.0
    elapsed_total = 0.0
    for _ in range(substeps):
        if wss <= 0:
            p_hit = 1.0
        else:
            fraction = min(1.0, occupancy.get(actor, 0.0) / float(wss))
            p_hit = fraction ** exponent
        per_instr = base_cpi + ref_rate * (
            p_hit * hit_ns + (1.0 - p_hit) * miss_ns
        )
        instructions = dt / per_instr
        refs = instructions * ref_rate
        misses = refs * (1.0 - p_hit)
        if misses > 0.0:
            insert(actor, misses * line_bytes, wss)
        instructions_total += instructions
        refs_total += refs
        misses_total += misses
        elapsed_total += dt
    result.instructions = instructions_total
    result.llc_refs = refs_total
    result.llc_misses = misses_total
    result.elapsed_ns = elapsed_total
    return result


def integrate_instructions(
    cache: SharedCache,
    actor: Hashable,
    profile: MemoryProfile,
    instructions: float,
    hit_ns: float,
    miss_ns: float,
    substeps: int = 8,
) -> SegmentResult:
    """Advance ``actor`` by an instruction budget, returning time spent.

    Used to *estimate* when a compute burst will finish so a completion
    event can be scheduled; the authoritative accounting still happens
    via :func:`integrate_duration` at segment boundaries.
    """
    result = SegmentResult()
    if instructions <= 0:
        return result
    chunk = instructions / substeps
    wss = profile.wss_bytes
    ref_rate = profile.llc_ref_rate
    base_cpi = profile.base_cpi_ns
    exponent = cache.reuse_exponent
    line_bytes = cache.line_bytes
    occupancy = cache._occupancy
    insert = cache.insert
    for _ in range(substeps):
        # same inlined hit/cost math as integrate_duration (see there)
        if wss <= 0:
            p_hit = 1.0
        else:
            fraction = min(1.0, occupancy.get(actor, 0.0) / float(wss))
            p_hit = fraction ** exponent
        per_instr = base_cpi + ref_rate * (
            p_hit * hit_ns + (1.0 - p_hit) * miss_ns
        )
        refs = chunk * ref_rate
        misses = refs * (1.0 - p_hit)
        if misses > 0.0:
            insert(actor, misses * line_bytes, wss)
        result.instructions += chunk
        result.llc_refs += refs
        result.llc_misses += misses
        result.elapsed_ns += chunk * per_instr
    return result


def estimate_duration_ns(
    cache: SharedCache,
    actor: Hashable,
    profile: MemoryProfile,
    instructions: float,
    hit_ns: float,
    miss_ns: float,
) -> float:
    """Cheap non-mutating estimate of the time ``instructions`` will take.

    Assumes the current hit probability holds for the whole burst, which
    under-estimates cold-cache bursts slightly; callers re-evaluate at
    every segment boundary so the error never accumulates.
    """
    wss = profile.wss_bytes
    if wss <= 0:
        p_hit = 1.0
    else:
        fraction = min(1.0, cache._occupancy.get(actor, 0.0) / float(wss))
        p_hit = fraction ** cache.reuse_exponent
    return instructions * (
        profile.base_cpi_ns
        + profile.llc_ref_rate * (p_hit * hit_ns + (1.0 - p_hit) * miss_ns)
    )


__all__ = [
    "MemoryProfile",
    "SegmentResult",
    "SharedCache",
    "integrate_duration",
    "integrate_instructions",
    "estimate_duration_ns",
]
