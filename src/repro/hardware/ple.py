"""Pause-loop-exit (PLE) spin detection.

Modern Intel CPUs trap tight PAUSE loops to the hypervisor
(EXIT_REASON_PAUSE_INSTRUCTION); the paper's ConSpin monitor counts
those exits.  In the simulator, spin phases report their spinning time
here and the detector converts it into an exit count: one exit per
``window_ns`` of continuous spinning (the hardware's pause-loop window).

The paper's fallback for CPUs without PLE — a paravirtual hypercall
wrapping the guest's spin-lock API — is modelled by the guest lock code
reporting each contended acquisition via :meth:`note_lock_event`.
Either source feeds the same per-vCPU count that vTRS consumes.
"""

from __future__ import annotations


class PleDetector:
    """Accumulates spin evidence for one vCPU."""

    def __init__(self, window_ns: int = 10_000):
        if window_ns <= 0:
            raise ValueError("PLE window must be positive")
        self.window_ns = window_ns
        self.exits = 0.0
        self._residual_ns = 0.0

    def note_spin(self, duration_ns: float) -> None:
        """Record ``duration_ns`` of busy-wait spinning on this vCPU."""
        if duration_ns <= 0:
            return
        self._residual_ns += duration_ns
        whole, self._residual_ns = divmod(self._residual_ns, self.window_ns)
        self.exits += whole

    def note_lock_event(self, count: int = 1) -> None:
        """Record paravirtual spin-lock notifications (fallback path)."""
        self.exits += count

    def snapshot(self) -> float:
        return self.exits

    def delta_since(self, snap: float) -> float:
        return self.exits - snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PLE exits={self.exits:.0f}>"


__all__ = ["PleDetector"]
