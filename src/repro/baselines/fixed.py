"""Uniform-quantum policies: Microsliced and the Fig. 7 sweep points."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import Policy, PolicyContext
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


class FixedQuantum(Policy):
    """One quantum length for every vCPU on the machine."""

    def __init__(self, quantum_ns: int, name: str = ""):
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_ns = quantum_ns
        self.name = name or f"fixed-{quantum_ns // MS}ms"

    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        for pool in machine.pools:
            pool.quantum_ns = self.quantum_ns


class Microsliced(FixedQuantum):
    """[6]: shorten everyone's quantum (1 ms, per the paper's §4.2).

    Helps IO and spin workloads, hurts LLC-friendly ones — the
    comparison AQL_Sched wins in Fig. 8.
    """

    def __init__(self, quantum_ns: int = 1 * MS):
        super().__init__(quantum_ns, name="microsliced")


__all__ = ["FixedQuantum", "Microsliced"]
