"""The native Xen Credit configuration — the paper's baseline."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import Policy, PolicyContext
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


class XenCredit(Policy):
    """Fixed 30 ms quantum everywhere, BOOST enabled.

    This is what every figure normalises against.  Nothing to
    configure: the machine's default pool already runs Credit at the
    default quantum.
    """

    name = "xen"

    def __init__(self, quantum_ns: int = 30 * MS):
        self.quantum_ns = quantum_ns

    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        for pool in machine.pools:
            pool.quantum_ns = self.quantum_ns


__all__ = ["XenCredit"]
