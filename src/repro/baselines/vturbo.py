"""vTurbo [14]: dedicated small-quantum "turbo" cores for IO vCPUs.

A fraction of the scenario's pCPUs becomes a turbo pool running a
micro quantum; manually-designated IO vCPUs are pinned there, everyone
else shares the remaining cores at the default quantum.  Like the
original system, there is no online recognition and the turbo capacity
is provisioned statically.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.baselines.base import Policy, PolicyContext
from repro.core.types import VCpuType
from repro.hypervisor.pools import PoolPlan
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


class VTurbo(Policy):
    """Turbo-core pool for IO vCPUs."""

    name = "vturbo"

    def __init__(
        self, micro_quantum_ns: int = 1 * MS, default_quantum_ns: int = 30 * MS
    ):
        if micro_quantum_ns <= 0 or default_quantum_ns <= 0:
            raise ValueError("quanta must be positive")
        self.micro_quantum_ns = micro_quantum_ns
        self.default_quantum_ns = default_quantum_ns

    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        all_vcpus = machine.all_vcpus
        io_vcpus = ctx.vcpus_of_type(machine, VCpuType.IOINT)
        others = [v for v in all_vcpus if v not in io_vcpus]
        pcpus = list(ctx.pool.pcpus) if ctx.pool is not None else list(
            machine.topology.pcpus
        )
        outside = [p for p in machine.topology.pcpus if p not in pcpus]
        if not io_vcpus:
            return
        # provision turbo cores proportionally to the IO share,
        # preserving the scenario's overall consolidation ratio
        k = max(1, math.ceil(len(all_vcpus) / len(pcpus)))
        turbo_count = min(len(pcpus) - 1, max(1, math.ceil(len(io_vcpus) / k)))
        turbo_pcpus = pcpus[:turbo_count]
        normal_pcpus = pcpus[turbo_count:]
        plan = PoolPlan()
        plan.add("turbo", turbo_pcpus, self.micro_quantum_ns, io_vcpus)
        plan.add("normal", normal_pcpus, self.default_quantum_ns, others)
        if outside:
            plan.add("unused", outside, self.default_quantum_ns, [])
        machine.apply_pool_plan(plan)


__all__ = ["VTurbo"]
