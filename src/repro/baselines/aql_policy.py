"""AQL_Sched as a runnable policy."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.baselines.base import Policy, PolicyContext
from repro.core.aql import AqlScheduler
from repro.core.cursors import CursorLimits
from repro.core.types import VCpuType
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


class AqlPolicy(Policy):
    """Attach the AQL_Sched manager to the machine.

    ``oracle`` short-circuits vTRS with the scenario's ground-truth
    types (used by the overhead ablation); ``uniform_quantum_ns``
    disables quantum customisation while keeping clustering (Fig. 7).
    """

    name = "aql"

    def __init__(
        self,
        best_quanta: Optional[Mapping[VCpuType, Optional[int]]] = None,
        limits: Optional[CursorLimits] = None,
        window: int = 4,
        period_ns: int = 30 * MS,
        default_quantum_ns: int = 30 * MS,
        oracle: bool = False,
        uniform_quantum_ns: Optional[int] = None,
        record_history: bool = False,
    ):
        self.best_quanta = best_quanta
        self.limits = limits
        self.window = window
        self.period_ns = period_ns
        self.default_quantum_ns = default_quantum_ns
        self.oracle = oracle
        self.uniform_quantum_ns = uniform_quantum_ns
        self.record_history = record_history
        self.manager: Optional[AqlScheduler] = None
        if uniform_quantum_ns is not None:
            self.name = f"aql-uniform-{uniform_quantum_ns // MS}ms"
        elif oracle:
            self.name = "aql-oracle"

    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        # respect the scenario's confinement: clustering only over the
        # pCPUs the vCPUs were deployed on keeps the consolidation
        # ratio (and therefore LLC concurrency) unchanged
        pcpus = list(ctx.pool.pcpus) if ctx.pool is not None else None
        self.manager = AqlScheduler(
            machine,
            best_quanta=self.best_quanta,
            limits=self.limits,
            window=self.window,
            period_ns=self.period_ns,
            default_quantum_ns=self.default_quantum_ns,
            sockets=ctx.sockets,
            pcpus=pcpus,
            record_history=self.record_history,
            type_oracle=ctx.oracle_types if self.oracle else None,
            uniform_quantum_ns=self.uniform_quantum_ns,
        )
        self.manager.attach()


__all__ = ["AqlPolicy"]
