"""Scheduling policies: Xen Credit plus the paper's comparators.

Every policy implements the tiny :class:`~repro.baselines.base.Policy`
protocol (a ``setup(machine, ctx)`` hook invoked after workloads are
installed, before the run starts).  The comparators of §4.2:

* :class:`~repro.baselines.xen.XenCredit` — the native scheduler,
  30 ms everywhere, BOOST enabled (the normalisation reference);
* :class:`~repro.baselines.fixed.FixedQuantum` /
  :class:`~repro.baselines.fixed.Microsliced` — one quantum for every
  vCPU (Microsliced = 1 ms, per [6]);
* :class:`~repro.baselines.vslicer.VSlicer` — a smaller quantum for
  manually-designated IO vCPUs, shared pCPUs ([15]);
* :class:`~repro.baselines.vturbo.VTurbo` — a dedicated small-quantum
  pCPU pool ("turbo cores") for manually-designated IO vCPUs ([14]);
* :class:`~repro.baselines.aql_policy.AqlPolicy` — the paper's
  contribution, wrapping :class:`~repro.core.aql.AqlScheduler`.

None of the comparators has online type recognition; like the paper's
evaluation, they are configured from the scenario's ground-truth types
("we manually configured each solution in order to obtain its best
performance").
"""

from repro.baselines.aql_policy import AqlPolicy
from repro.baselines.base import Policy, PolicyContext
from repro.baselines.fixed import FixedQuantum, Microsliced
from repro.baselines.vslicer import VSlicer
from repro.baselines.vturbo import VTurbo
from repro.baselines.xen import XenCredit

__all__ = [
    "Policy",
    "PolicyContext",
    "XenCredit",
    "FixedQuantum",
    "Microsliced",
    "VSlicer",
    "VTurbo",
    "AqlPolicy",
]
