"""The policy protocol shared by Xen, the comparators and AQL_Sched."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.types import VCpuType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.topology import Socket
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.pools import CpuPool
    from repro.hypervisor.vm import VCpu


@dataclass
class PolicyContext:
    """What a policy may know about the experiment.

    ``oracle_types`` is the scenario's ground truth (vcpu_id -> type);
    the manually-configured comparators (vTurbo, vSlicer) read it, and
    AQL_Sched ignores it unless run in oracle mode.  ``pool`` is the
    pCPU pool the scenario's VMs are confined to (None = whole
    machine); ``sockets`` restricts AQL clustering (multi-socket case).
    """

    oracle_types: dict[int, VCpuType] = field(default_factory=dict)
    pool: Optional["CpuPool"] = None
    sockets: Optional[list["Socket"]] = None

    def vcpus_of_type(
        self, machine: "Machine", vtype: VCpuType
    ) -> list["VCpu"]:
        return [
            vcpu
            for vcpu in machine.all_vcpus
            if self.oracle_types.get(vcpu.vcpu_id) == vtype
        ]


class Policy(abc.ABC):
    """A scheduling configuration applied to a machine before a run."""

    #: display name used in result tables
    name: str = "policy"

    @abc.abstractmethod
    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        """Configure pools/quanta/managers.  Called once, before run."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


__all__ = ["Policy", "PolicyContext"]
