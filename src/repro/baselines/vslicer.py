"""vSlicer [15]: differentiated-frequency CPU slicing.

Latency-sensitive VMs are scheduled with a smaller quantum ("higher
frequency") while sharing the same pCPUs with everyone else.  No
dedicated cores, no online recognition: the IO vCPUs are designated
manually (here from the scenario's ground truth, matching the paper's
"we manually configured each solution" protocol).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import Policy, PolicyContext
from repro.core.types import VCpuType
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


class VSlicer(Policy):
    """Per-vCPU small quantum for IO vCPUs on shared pCPUs."""

    name = "vslicer"

    def __init__(self, micro_quantum_ns: int = 1 * MS):
        if micro_quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.micro_quantum_ns = micro_quantum_ns

    def setup(self, machine: "Machine", ctx: PolicyContext) -> None:
        io_vcpus = ctx.vcpus_of_type(machine, VCpuType.IOINT)
        if not io_vcpus:
            return
        for vcpu in io_vcpus:
            vcpu.quantum_override = self.micro_quantum_ns


__all__ = ["VSlicer"]
