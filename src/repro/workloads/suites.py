"""Named synthetic analogues of the paper's benchmark programs.

Every program the paper evaluates (Table 3 / Fig. 5) gets a catalog
entry whose parameters put it in the class vTRS should detect:

* SPEC CPU2006 LLCF programs (astar, xalancbmk, bzip2, gcc, omnetpp):
  working sets that fit the LLC;
* SPEC CPU2006 LoLCF programs (hmmer, gobmk, perlbench, sjeng,
  h264ref): working sets inside the private L2;
* SPEC CPU2006 LLCO programs (mcf, libquantum): trashing working sets;
* the 12 PARSEC programs: spin-lock-synchronised parallel workers;
* SPECweb2009 / SPECmail2009: heterogeneous IO services;
* the calibration micro-benchmarks (wordpress, kernbench, the Drepper
  linked-list walker in its three configurations).

Per-program parameters are deterministic jitters of the canonical
profile (hash of the name), so programs of a class behave similarly but
not identically — like real suite members.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.core.types import VCpuType
from repro.hardware.cache import MemoryProfile
from repro.hardware.specs import MachineSpec
from repro.workloads.base import Workload
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import (
    LOLC_REF_RATE,
    MEMORY_REF_RATE,
    llcf_profile,
    llco_profile,
    lolcf_profile,
)
from repro.workloads.spin import SpinWorkload


def _jitter(name: str, low: float, high: float) -> float:
    """Deterministic per-name value in [low, high]."""
    digest = hashlib.sha256(name.encode()).digest()
    unit = int.from_bytes(digest[:4], "little") / 0xFFFFFFFF
    return low + unit * (high - low)


@dataclass(frozen=True)
class AppSpec:
    """Catalog entry: how to build one named program."""

    name: str
    suite: str  # "speccpu2006" | "parsec" | "specweb" | "specmail" | "micro"
    expected_type: VCpuType
    build: Callable[[MachineSpec, int], Workload]


def _cpu_builder(
    name: str, profile_fn: Callable[[MachineSpec], MemoryProfile]
) -> Callable[[MachineSpec, int], Workload]:
    def build(spec: MachineSpec, vcpus: int) -> Workload:
        return CpuBurnWorkload(name, profile_fn(spec), vcpus=vcpus)

    return build


def _llcf_app(name: str) -> AppSpec:
    fraction = _jitter(name, 0.35, 0.60)
    return AppSpec(
        name,
        "speccpu2006",
        VCpuType.LLCF,
        _cpu_builder(name, lambda spec: llcf_profile(spec, llc_fraction=fraction)),
    )


def _lolcf_app(name: str) -> AppSpec:
    fraction = _jitter(name, 0.55, 0.95)
    rate = LOLC_REF_RATE * _jitter(name + ".rate", 0.5, 1.5)
    return AppSpec(
        name,
        "speccpu2006",
        VCpuType.LOLCF,
        _cpu_builder(
            name, lambda spec: lolcf_profile(spec, l2_fraction=fraction, ref_rate=rate)
        ),
    )


def _llco_app(name: str) -> AppSpec:
    multiple = _jitter(name, 12.0, 24.0)
    return AppSpec(
        name,
        "speccpu2006",
        VCpuType.LLCO,
        _cpu_builder(name, lambda spec: llco_profile(spec, llc_multiple=multiple)),
    )


def _parsec_app(name: str) -> AppSpec:
    work = 20_000_000.0 * _jitter(name, 0.6, 1.6)
    cs = 30_000.0 * _jitter(name + ".cs", 0.7, 1.4)

    def build(spec: MachineSpec, vcpus: int) -> Workload:
        return SpinWorkload(
            name, threads=vcpus, work_instructions=work, cs_instructions=cs
        )

    return AppSpec(name, "parsec", VCpuType.CONSPIN, build)


def _web_app(name: str, suite: str) -> AppSpec:
    def build(spec: MachineSpec, vcpus: int) -> Workload:
        return IoWorkload.heterogeneous(name, spec, vcpus=vcpus)

    return AppSpec(name, suite, VCpuType.IOINT, build)


_LLCF_PROGRAMS = ["astar", "xalancbmk", "bzip2", "gcc", "omnetpp"]
_LOLCF_PROGRAMS = ["hmmer", "gobmk", "perlbench", "sjeng", "h264ref"]
_LLCO_PROGRAMS = ["mcf", "libquantum"]
_PARSEC_PROGRAMS = [
    "bodytrack",
    "blackscholes",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "vips",
    "x264",
]

#: name -> AppSpec for every program the paper evaluates.
APP_CATALOG: dict[str, AppSpec] = {}
for _name in _LLCF_PROGRAMS:
    APP_CATALOG[_name] = _llcf_app(_name)
for _name in _LOLCF_PROGRAMS:
    APP_CATALOG[_name] = _lolcf_app(_name)
for _name in _LLCO_PROGRAMS:
    APP_CATALOG[_name] = _llco_app(_name)
for _name in _PARSEC_PROGRAMS:
    APP_CATALOG[_name] = _parsec_app(_name)
APP_CATALOG["specweb2009"] = _web_app("specweb2009", "specweb")
APP_CATALOG["specmail2009"] = _web_app("specmail2009", "specmail")

# ----------------------------------------------------------------------
# calibration micro-benchmarks (Table 1 of the paper)
# ----------------------------------------------------------------------
APP_CATALOG["wordpress"] = _web_app("wordpress", "micro")  # heterogeneous IOInt
APP_CATALOG["kernbench"] = AppSpec(
    "kernbench",
    "micro",
    VCpuType.CONSPIN,
    lambda spec, vcpus: SpinWorkload("kernbench", threads=vcpus),
)
APP_CATALOG["listwalk-llcf"] = AppSpec(
    "listwalk-llcf",
    "micro",
    VCpuType.LLCF,
    _cpu_builder("listwalk-llcf", lambda spec: llcf_profile(spec, 0.5)),
)
APP_CATALOG["listwalk-lolcf"] = AppSpec(
    "listwalk-lolcf",
    "micro",
    VCpuType.LOLCF,
    _cpu_builder("listwalk-lolcf", lambda spec: lolcf_profile(spec, 0.9)),
)
APP_CATALOG["listwalk-llco"] = AppSpec(
    "listwalk-llco",
    "micro",
    VCpuType.LLCO,
    _cpu_builder("listwalk-llco", lambda spec: llco_profile(spec, 8.0)),
)


def make_app(name: str, spec: MachineSpec, vcpus: int = 1) -> Workload:
    """Instantiate a catalog program for ``vcpus`` virtual CPUs."""
    try:
        app = APP_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(APP_CATALOG))
        raise KeyError(f"unknown program {name!r}; catalog: {known}") from None
    return app.build(spec, vcpus)


def programs_of_suite(suite: str) -> list[AppSpec]:
    return [app for app in APP_CATALOG.values() if app.suite == suite]


__all__ = [
    "AppSpec",
    "APP_CATALOG",
    "make_app",
    "programs_of_suite",
    "MEMORY_REF_RATE",
]
