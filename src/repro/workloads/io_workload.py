"""IO-intensive workloads: closed-loop request/response services.

Models the paper's two IOInt flavours (Fig. 2a/2b):

* **exclusive** — the handler does almost no CPU work per request and
  blocks between requests, so Credit's BOOST fast-path fires on every
  arrival and latency is quantum-agnostic;
* **heterogeneous** — the WordPress case: the same vCPU serves light
  web requests *and* runs CGI-like CPU work.  The CGI component keeps
  the vCPU busy, so it exhausts every quantum, loses BOOST eligibility,
  and a light request arriving while the vCPU is queued waits up to
  ``(k - 1) * quantum`` — latency grows with the quantum length.

Clients are closed-loop: a fixed population per served vCPU, each
thinking for an exponential time after its response arrives.  This
self-regulates load (no unbounded queues) exactly like SPECweb/SPECmail
driver sessions.

Metric: mean request latency (post -> handler completion) pooled over
all served vCPUs, lower is better.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.guest.phases import Compute, Phase, WaitEvent
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.hardware.specs import MachineSpec
from repro.sim.units import MS
from repro.workloads.base import PerfResult, Workload
from repro.workloads.profiles import llcf_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.event_channel import EventPort
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM


class IoWorkload(Workload):
    """A closed-loop request/response service, one server per vCPU."""

    def __init__(
        self,
        name: str,
        clients: int = 16,
        think_ns: int = 5 * MS,
        service_instructions: float = 100_000.0,
        service_profile: Optional[MemoryProfile] = None,
        vcpus: int = 1,
        cgi_profile: Optional[MemoryProfile] = None,
        cgi_burst_instructions: float = 3_000_000.0,
    ):
        super().__init__(name)
        if clients <= 0:
            raise ValueError("need at least one client")
        if vcpus <= 0:
            raise ValueError("need at least one served vCPU")
        if think_ns < 0 or service_instructions < 0:
            raise ValueError("think time and service cost cannot be negative")
        self.clients = clients
        self.think_ns = think_ns
        self.service_instructions = service_instructions
        self.service_profile = service_profile or MemoryProfile()
        self.vcpus_wanted = vcpus
        #: when set, each served vCPU also runs an endless CGI burn
        #: thread with this profile — the heterogeneous (BOOST-defeating)
        #: configuration.
        self.cgi_profile = cgi_profile
        self.cgi_burst_instructions = cgi_burst_instructions
        self.ports: list["EventPort"] = []
        self.servers: list[GuestThread] = []
        self.cgi_threads: list[GuestThread] = []
        self.latencies_ns: list[float] = []
        self.completed = 0
        self._window_start_index = 0
        self._window_start_ns: Optional[int] = None
        self._rng = None

    @classmethod
    def exclusive(cls, name: str, vcpus: int = 1) -> "IoWorkload":
        """Pure-IO service (paper Fig. 2a): tiny per-request CPU."""
        return cls(
            name,
            clients=16,
            think_ns=5 * MS,
            service_instructions=100_000.0,  # ~30 us of CPU
            vcpus=vcpus,
        )

    @classmethod
    def heterogeneous(
        cls, name: str, spec: MachineSpec, vcpus: int = 1
    ) -> "IoWorkload":
        """Web + CGI service (paper Fig. 2b): BOOST-defeating.

        Light requests share each vCPU with an always-ready CGI burner
        (a ~1 MB working set, moderately LLC-active), so the vCPU
        consumes its full quantum and light-request latency is at the
        mercy of the quantum length.
        """
        return cls(
            name,
            clients=16,
            think_ns=5 * MS,
            service_instructions=100_000.0,
            vcpus=vcpus,
            cgi_profile=llcf_profile(spec, llc_fraction=0.125),
        )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def _install(self, machine: "Machine", vm: "VM") -> None:
        if len(vm.vcpus) < self.vcpus_wanted:
            raise ValueError(
                f"{self.name} wants {self.vcpus_wanted} vCPUs, "
                f"VM {vm.name} has {len(vm.vcpus)}"
            )
        assert vm.guest is not None
        self._rng = machine.rng.stream(f"io/{self.name}")
        for idx in range(self.vcpus_wanted):
            vcpu = vm.vcpus[idx]
            port = machine.new_port(vcpu, f"{self.name}.port{idx}")
            server = GuestThread(
                f"{self.name}.server{idx}",
                lambda thread, p=port: self._server_body(thread, p),
                profile=self.service_profile,
            )
            vm.guest.add_thread(server, vcpu)
            self.ports.append(port)
            self.servers.append(server)
            if self.cgi_profile is not None:
                cgi = GuestThread(
                    f"{self.name}.cgi{idx}", self._cgi_body, profile=self.cgi_profile
                )
                vm.guest.add_thread(cgi, vcpu)
                self.cgi_threads.append(cgi)
            # stagger the initial requests so clients do not arrive in
            # one bulge
            for _ in range(self.clients):
                initial = int(self._rng.exponential(self.think_ns + 1))
                machine.sim.after(
                    max(initial, 1),
                    lambda p=port: self._send_request(p),
                    f"{self.name}.req",
                )

    def _send_request(self, port: "EventPort") -> None:
        assert self.machine is not None
        port.post(payload=self.machine.sim.now)

    def _client_think_then_send(self, port: "EventPort") -> None:
        assert self.machine is not None and self._rng is not None
        delay = int(self._rng.exponential(self.think_ns)) + 1
        self.machine.sim.after(
            delay, lambda: self._send_request(port), f"{self.name}.think"
        )

    def _cgi_body(self, thread: GuestThread) -> Iterator[Phase]:
        while True:
            yield Compute(self.cgi_burst_instructions)

    def _server_body(self, thread: GuestThread, port: "EventPort") -> Iterator[Phase]:
        while True:
            wait = WaitEvent(port)
            yield wait
            if self.service_instructions > 0:
                yield Compute(self.service_instructions)
            arrival = wait.payload
            assert isinstance(arrival, int)
            self.latencies_ns.append(float(self.now - arrival))
            self.completed += 1
            self._client_think_then_send(port)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        self._window_start_index = len(self.latencies_ns)
        self._window_start_ns = self.now

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(f"{self.name}: begin_measurement was never called")
        window = self.latencies_ns[self._window_start_index:]
        if not window:
            raise RuntimeError(f"{self.name}: no requests completed in window")
        mean_latency = float(np.mean(window))
        p99 = float(np.percentile(window, 99))
        throughput = len(window) / max(1, self.now - self._window_start_ns)
        return PerfResult(
            name=self.name,
            metric="latency_ns",
            value=mean_latency,
            details=(
                ("requests", len(window)),
                ("p99_ns", p99),
                ("throughput_per_sec", throughput * 1e9),
            ),
        )


__all__ = ["IoWorkload"]
