"""Canonical memory profiles for the paper's CPU-burn sub-types.

The classification (§3.2) is purely about working-set size versus cache
level capacity:

* **LLCF** — WSS fits in the LLC (the paper's calibration uses half the
  LLC): hot when resident, so context switches are expensive;
* **LLCO** — WSS overflows the LLC: misses at a floor rate regardless
  of quantum, and constantly evicts neighbours ("trashing");
* **LoLCF** — WSS fits the private L2: near-zero LLC traffic.

LLC reference rate and base CPI defaults are chosen so the relative
speeds (warm LLCF ~3.5x faster than cold) match typical memory-bound
versus cache-resident behaviour on the paper's hardware class.
"""

from __future__ import annotations

from repro.hardware.cache import MemoryProfile
from repro.hardware.specs import MachineSpec

#: LLC references per instruction for memory-intensive code (post-L2
#: filter); typical for pointer-chasing working sets.
MEMORY_REF_RATE = 0.02

#: LLC references per instruction for L2-resident code: almost nothing
#: escapes the private caches.
LOLC_REF_RATE = 0.0005


def llcf_profile(
    spec: MachineSpec,
    llc_fraction: float = 0.5,
    ref_rate: float = MEMORY_REF_RATE,
) -> MemoryProfile:
    """WSS = ``llc_fraction`` of the LLC (paper's calibration: half)."""
    if not 0 < llc_fraction <= 1.0:
        raise ValueError("llc_fraction must be in (0, 1]")
    return MemoryProfile(
        wss_bytes=int(spec.llc.capacity_bytes * llc_fraction),
        llc_ref_rate=ref_rate,
        base_cpi_ns=spec.cycle_ns,
    )


def llco_profile(
    spec: MachineSpec,
    llc_multiple: float = 16.0,
    ref_rate: float = MEMORY_REF_RATE,
) -> MemoryProfile:
    """WSS = ``llc_multiple`` x LLC: a trashing working set."""
    if llc_multiple <= 1.0:
        raise ValueError("an LLCO working set must overflow the LLC")
    return MemoryProfile(
        wss_bytes=int(spec.llc.capacity_bytes * llc_multiple),
        llc_ref_rate=ref_rate,
        base_cpi_ns=spec.cycle_ns,
    )


def lolcf_profile(
    spec: MachineSpec,
    l2_fraction: float = 0.9,
    ref_rate: float = LOLC_REF_RATE,
) -> MemoryProfile:
    """WSS = 90 % of L2 (the paper's LoLCF calibration point)."""
    if not 0 < l2_fraction <= 1.0:
        raise ValueError("l2_fraction must be in (0, 1]")
    return MemoryProfile(
        wss_bytes=int(spec.l2.capacity_bytes * l2_fraction),
        llc_ref_rate=ref_rate,
        base_cpi_ns=spec.cycle_ns,
    )


__all__ = [
    "MEMORY_REF_RATE",
    "LOLC_REF_RATE",
    "llcf_profile",
    "llco_profile",
    "lolcf_profile",
]
