"""Synthetic workloads reproducing the paper's application types.

Five vCPU types (§3.2 of the paper) with the mechanisms that make each
quantum-sensitive or quantum-agnostic:

* ``IOInt`` — latency-critical event handling
  (:class:`~repro.workloads.io_workload.IoWorkload`), in *exclusive*
  (pure IO, BOOST-friendly) and *heterogeneous* (request + CGI compute,
  BOOST-defeating) flavours;
* ``ConSpin`` — multi-threaded spin-lock synchronisation
  (:class:`~repro.workloads.spin.SpinWorkload`);
* ``LLCF`` / ``LLCO`` / ``LoLCF`` — CPU burn with working sets that fit
  the LLC, overflow it, or fit the private caches
  (:class:`~repro.workloads.cpu.CpuBurnWorkload` with profiles from
  :mod:`repro.workloads.profiles`).

:mod:`repro.workloads.suites` names concrete SPEC CPU2006 / PARSEC /
SPECweb2009 / SPECmail2009 analogues with per-program parameters that
land each program in the class the paper's Table 3 reports.
"""

from repro.workloads.base import PerfResult, Workload
from repro.workloads.blocking import BlockingSyncWorkload
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.phased import BehaviourPhase, PhasedWorkload
from repro.workloads.profiles import (
    llcf_profile,
    llco_profile,
    lolcf_profile,
)
from repro.workloads.spin import SpinWorkload
from repro.workloads.suites import APP_CATALOG, make_app

__all__ = [
    "Workload",
    "PerfResult",
    "CpuBurnWorkload",
    "IoWorkload",
    "SpinWorkload",
    "BlockingSyncWorkload",
    "PhasedWorkload",
    "BehaviourPhase",
    "llcf_profile",
    "llco_profile",
    "lolcf_profile",
    "APP_CATALOG",
    "make_app",
]
