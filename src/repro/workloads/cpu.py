"""CPU-burn workloads (the Drepper linked-list micro-benchmark analogue).

One thread per requested vCPU spins through compute bursts under a
:class:`~repro.hardware.cache.MemoryProfile`.  The performance metric is
wall-clock nanoseconds per retired instruction over the measurement
window — the inverse throughput, lower is better, equivalent to the
execution time of a fixed instruction budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.guest.phases import Compute, Phase
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.workloads.base import PerfResult, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM

#: Default burst size: ~1-3 ms of CPU, so phase-completion events stay
#: comfortably coarser than the scheduler's event granularity.
DEFAULT_BURST_INSTRUCTIONS = 5_000_000.0


class CpuBurnWorkload(Workload):
    """An endless compute loop with a fixed memory profile."""

    def __init__(
        self,
        name: str,
        profile: MemoryProfile,
        vcpus: int = 1,
        burst_instructions: float = DEFAULT_BURST_INSTRUCTIONS,
    ):
        super().__init__(name)
        if vcpus <= 0:
            raise ValueError("need at least one vCPU")
        if burst_instructions <= 0:
            raise ValueError("burst must be positive")
        self.profile = profile
        self.vcpus_wanted = vcpus
        self.burst_instructions = burst_instructions
        self.threads: list[GuestThread] = []
        self._window_start_ns: Optional[int] = None
        self._window_start_instructions = 0.0

    def _install(self, machine: "Machine", vm: "VM") -> None:
        if len(vm.vcpus) < self.vcpus_wanted:
            raise ValueError(
                f"{self.name} wants {self.vcpus_wanted} vCPUs, "
                f"VM {vm.name} has {len(vm.vcpus)}"
            )
        assert vm.guest is not None
        for i in range(self.vcpus_wanted):
            thread = GuestThread(
                f"{self.name}.t{i}", self._body, profile=self.profile
            )
            vm.guest.add_thread(thread, vm.vcpus[i])
            self.threads.append(thread)

    def _body(self, thread: GuestThread) -> Iterator[Phase]:
        while True:
            yield Compute(self.burst_instructions)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _total_instructions(self) -> float:
        return sum(t.instructions_retired for t in self.threads)

    def begin_measurement(self) -> None:
        self._window_start_ns = self.now
        self._window_start_instructions = self._total_instructions()

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(f"{self.name}: begin_measurement was never called")
        window = self.now - self._window_start_ns
        retired = self._total_instructions() - self._window_start_instructions
        if retired <= 0:
            raise RuntimeError(f"{self.name}: no instructions retired in window")
        return PerfResult(
            name=self.name,
            metric="ns_per_instr",
            value=window / retired,
            details=(("instructions", retired), ("window_ns", window)),
        )


__all__ = ["CpuBurnWorkload", "DEFAULT_BURST_INSTRUCTIONS"]
