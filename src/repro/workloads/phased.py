"""Phase-shifting workloads: vCPUs whose type changes over time.

§3.3: "The hypothesis of a fixed type for a VM vCPU during its overall
lifetime is not realistic."  A :class:`PhasedWorkload` cycles through
behaviour phases — each a (kind, duration) pair — on one vCPU, so vTRS
must re-type it and AQL_Sched must re-cluster it online.

Supported phase kinds: ``"llcf"``, ``"llco"``, ``"lolcf"`` (compute
with the canonical profile), ``"io"`` (closed-loop request handling)
and ``"spin"`` (dense lock activity against a private lock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.guest.phases import Acquire, Compute, Phase, Release, WaitEvent
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.sim.units import MS
from repro.workloads.base import PerfResult, Workload
from repro.workloads.profiles import llcf_profile, llco_profile, lolcf_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.event_channel import EventPort
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM

PHASE_KINDS = ("llcf", "llco", "lolcf", "io", "spin")


@dataclass(frozen=True)
class BehaviourPhase:
    """One stretch of behaviour: what to do and for roughly how long."""

    kind: str
    duration_ns: int

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"unknown phase kind {self.kind!r}; choose from {PHASE_KINDS}"
            )
        if self.duration_ns <= 0:
            raise ValueError("phase duration must be positive")


class PhasedWorkload(Workload):
    """A single-vCPU workload cycling through behaviour phases.

    Durations are approximate: each phase issues work in small chunks
    and checks the virtual clock between chunks, so a phase ends within
    one chunk of its nominal duration regardless of CPU share.
    """

    def __init__(
        self,
        name: str,
        phases: list[BehaviourPhase],
        think_ns: int = 5 * MS,
        vcpu_index: int = 0,
    ):
        super().__init__(name)
        if not phases:
            raise ValueError("need at least one phase")
        self.phases = list(phases)
        self.think_ns = think_ns
        self.vcpu_index = vcpu_index
        self.port: Optional["EventPort"] = None
        self.thread: Optional[GuestThread] = None
        self.cycles_completed = 0
        self._lock = SpinLock(f"{name}.lock")
        self._profiles: dict[str, MemoryProfile] = {}
        self._window_start_ns: Optional[int] = None
        self._window_start_cycles = 0

    def _install(self, machine: "Machine", vm: "VM") -> None:
        assert vm.guest is not None
        spec = machine.spec
        self._profiles = {
            "llcf": llcf_profile(spec),
            "llco": llco_profile(spec),
            "lolcf": lolcf_profile(spec),
        }
        vcpu = vm.vcpus[self.vcpu_index]
        self.port = machine.new_port(vcpu, f"{self.name}.port")
        self.thread = GuestThread(f"{self.name}.t", self._body)
        vm.guest.add_thread(self.thread, vcpu)
        machine.sim.after(1, self._send_request, f"{self.name}.kick")

    def _send_request(self) -> None:
        assert self.port is not None and self.machine is not None
        self.port.post(self.machine.sim.now)

    def _reply_later(self) -> None:
        assert self.machine is not None
        self.machine.sim.after(
            self.think_ns, self._send_request, f"{self.name}.think"
        )

    def _body(self, thread: GuestThread) -> Iterator[Phase]:
        assert self.machine is not None
        sim = self.machine.sim
        while True:
            for phase in self.phases:
                deadline = sim.now + phase.duration_ns
                if phase.kind in self._profiles:
                    profile = self._profiles[phase.kind]
                    while sim.now < deadline:
                        yield Compute(3_000_000, profile=profile)
                elif phase.kind == "io":
                    assert self.port is not None
                    while sim.now < deadline:
                        wait = WaitEvent(self.port)
                        yield wait
                        yield Compute(100_000)
                        self._reply_later()
                elif phase.kind == "spin":
                    while sim.now < deadline:
                        yield Compute(150_000)
                        yield Acquire(self._lock)
                        yield Compute(500)
                        yield Release(self._lock)
            self.cycles_completed += 1

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        self._window_start_ns = self.now
        self._window_start_cycles = self.cycles_completed

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(f"{self.name}: begin_measurement was never called")
        window = self.now - self._window_start_ns
        cycles = self.cycles_completed - self._window_start_cycles
        if cycles <= 0:
            raise RuntimeError(f"{self.name}: no full cycles in window")
        return PerfResult(
            name=self.name,
            metric="ns_per_cycle",
            value=window / cycles,
            details=(("cycles", cycles),),
        )


__all__ = ["BehaviourPhase", "PhasedWorkload", "PHASE_KINDS"]
