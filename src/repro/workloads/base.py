"""Workload base class and the performance-result record.

A workload installs guest threads (and IO sources) into a VM, then
exposes a *measurement window* protocol: the experiment runner calls
:meth:`Workload.begin_measurement` after warm-up and
:meth:`Workload.result` at the end; the workload reports one scalar
performance value over the window.

All reported values are **lower-is-better** (latency, time-per-job,
time-per-instruction), matching the paper's figures where "the smaller
the bar the better the performance".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM


@dataclass(frozen=True)
class PerfResult:
    """One workload's performance over a measurement window."""

    name: str
    metric: str  # e.g. "latency_ns", "ns_per_instr", "ns_per_job"
    value: float  # lower is better
    details: tuple = ()

    def normalized_to(self, baseline: "PerfResult") -> float:
        """value / baseline — < 1 means better than the baseline run."""
        if baseline.value <= 0:
            raise ValueError(f"baseline {baseline.name} has no signal")
        return self.value / baseline.value


class Workload(abc.ABC):
    """Something that runs inside a VM and can be measured."""

    def __init__(self, name: str):
        self.name = name
        self.machine: Optional["Machine"] = None
        self.vm: Optional["VM"] = None
        self._measuring = False

    def install(self, machine: "Machine", vm: "VM") -> "Workload":
        """Create this workload's threads/sources inside ``vm``."""
        if self.machine is not None:
            raise RuntimeError(f"{self.name} is already installed")
        self.machine = machine
        self.vm = vm
        self._install(machine, vm)
        return self

    @abc.abstractmethod
    def _install(self, machine: "Machine", vm: "VM") -> None:
        """Subclass hook: build threads, ports, sources."""

    @abc.abstractmethod
    def begin_measurement(self) -> None:
        """Snapshot counters; the window starts now."""

    @abc.abstractmethod
    def result(self) -> PerfResult:
        """Performance over the window (lower is better)."""

    @property
    def now(self) -> int:
        assert self.machine is not None
        return self.machine.sim.now

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


__all__ = ["Workload", "PerfResult"]
