"""Blocking-synchronisation workload: the semaphore counterpart of
:class:`~repro.workloads.spin.SpinWorkload`.

Same loop structure (private work, then a short critical section), but
the critical section is guarded by a blocking semaphore, so a
contended waiter releases its vCPU instead of spinning.  Under
consolidation this sidesteps lock-holder preemption entirely — the
cost moves to wake-up latency, where Credit's BOOST usually saves the
day.  The paper's §3.2 makes exactly this distinction; the
sync-primitive ablation quantifies it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.guest.phases import Compute, Phase, SemAcquire, SemRelease, Sleep
from repro.guest.semaphore import Semaphore
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.workloads.base import PerfResult, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM


class BlockingSyncWorkload(Workload):
    """Semaphore-synchronised parallel workers."""

    def __init__(
        self,
        name: str,
        threads: int = 4,
        work_instructions: float = 500_000.0,
        cs_instructions: float = 30_000.0,
        sleep_ns: int = 100_000,
        profile: Optional[MemoryProfile] = None,
    ):
        super().__init__(name)
        if threads <= 0:
            raise ValueError("need at least one worker")
        if work_instructions <= 0 or cs_instructions <= 0:
            raise ValueError("work and critical-section sizes must be positive")
        if sleep_ns < 0:
            raise ValueError("sleep time cannot be negative")
        self.threads_wanted = threads
        self.work_instructions = work_instructions
        self.cs_instructions = cs_instructions
        self.sleep_ns = sleep_ns
        self.profile = profile or MemoryProfile(
            wss_bytes=512 * 1024, llc_ref_rate=0.002, base_cpi_ns=0.3
        )
        self.semaphore = Semaphore(f"{name}.sem", initial=1)
        self.workers: list[GuestThread] = []
        self.jobs_completed = 0
        self._window_start_jobs = 0
        self._window_start_ns: Optional[int] = None
        self._rng = None

    def _install(self, machine: "Machine", vm: "VM") -> None:
        if len(vm.vcpus) < self.threads_wanted:
            raise ValueError(
                f"{self.name} wants {self.threads_wanted} vCPUs, "
                f"VM {vm.name} has {len(vm.vcpus)}"
            )
        assert vm.guest is not None
        self._rng = machine.rng.stream(f"blocking/{self.name}")
        for i in range(self.threads_wanted):
            worker = GuestThread(
                f"{self.name}.w{i}", self._body, profile=self.profile
            )
            vm.guest.add_thread(worker, vm.vcpus[i])
            self.workers.append(worker)

    def _body(self, thread: GuestThread) -> Iterator[Phase]:
        assert self._rng is not None
        while True:
            work = self.work_instructions * float(self._rng.uniform(0.5, 1.5))
            yield Compute(work)
            yield SemAcquire(self.semaphore)
            yield Compute(self.cs_instructions)
            yield SemRelease(self.semaphore)
            self.jobs_completed += 1
            if self.sleep_ns > 0:
                yield Sleep(int(self._rng.exponential(self.sleep_ns)) + 1)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        self._window_start_jobs = self.jobs_completed
        self._window_start_ns = self.now

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(f"{self.name}: begin_measurement was never called")
        window = self.now - self._window_start_ns
        jobs = self.jobs_completed - self._window_start_jobs
        if jobs <= 0:
            raise RuntimeError(f"{self.name}: no jobs completed in window")
        return PerfResult(
            name=self.name,
            metric="ns_per_job",
            value=window / jobs,
            details=(
                ("jobs", jobs),
                ("mean_sem_duration_ns", self.semaphore.stats.mean_duration_ns),
                ("acquisitions", self.semaphore.stats.acquisitions),
            ),
        )


__all__ = ["BlockingSyncWorkload"]
