"""Concurrent spin-synchronised workloads (the kernbench/PARSEC analogue).

``threads`` workers — one per vCPU of the VM — execute rounds: a
private compute chunk (jittered so loops do not phase-lock with the
scheduler's rotation), a short spin-lock critical section updating
shared state, then a **spin barrier** where everyone waits for the
slowest sibling.

The barrier is what couples the workers the way real ConSpin programs
are coupled: every round samples the scheduling-delay tail of the
slowest vCPU, which is on the order of ``(k - 1) * quantum`` when a
sibling is descheduled — and the arrived threads burn their own quanta
spinning meanwhile.  This is the paper's lock-holder-preemption story
at workload scale, and it is why this class prefers short quanta
(Fig. 2c).

Metric: nanoseconds per completed barrier round, lower is better.  The
shared lock's :class:`~repro.guest.spinlock.LockStats` provides the
mean lock duration plotted in Fig. 2 (rightmost inset).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.guest.barrier import SpinBarrier
from repro.guest.phases import Acquire, BarrierWait, Compute, Phase, Release, Sleep
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.workloads.base import PerfResult, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM


class SpinWorkload(Workload):
    """Barrier-coupled, spin-lock-synchronised parallel workers."""

    def __init__(
        self,
        name: str,
        threads: int = 4,
        work_instructions: float = 20_000_000.0,
        cs_instructions: float = 30_000.0,
        sleep_ns: int = 100_000,
        profile: Optional[MemoryProfile] = None,
        use_barrier: bool = True,
        lock_handoff: str = "hybrid",
        kernel_lock_every: float = 150_000.0,
        kernel_cs_instructions: float = 500.0,
    ):
        super().__init__(name)
        if threads <= 0:
            raise ValueError("need at least one worker")
        if work_instructions <= 0 or cs_instructions <= 0:
            raise ValueError("work and critical-section sizes must be positive")
        if sleep_ns < 0:
            raise ValueError("sleep time cannot be negative")
        self.threads_wanted = threads
        self.work_instructions = work_instructions
        self.cs_instructions = cs_instructions
        #: mean of the short blocking pause after each round (page
        #: faults / IO in real programs); 0 disables.
        self.sleep_ns = sleep_ns
        # parallel programs touch real data: a modest working set with
        # some LLC traffic, so the CPU-burn cursors split instead of
        # reading as pure LoLCF
        self.profile = profile or MemoryProfile(
            wss_bytes=512 * 1024, llc_ref_rate=0.002, base_cpi_ns=0.3
        )
        #: with the barrier disabled the workload degenerates to a
        #: dense-locking loop — the configuration used to measure lock
        #: duration versus quantum (Fig. 2's rightmost inset).
        self.use_barrier = use_barrier
        #: real ConSpin programs take kernel spin locks constantly
        #: (syscalls, page faults); the work chunk is interleaved with a
        #: tiny lock-protected section every this many instructions so
        #: the ConSpin monitoring signal is present in every active
        #: period.  0 disables.
        self.kernel_lock_every = kernel_lock_every
        self.kernel_cs_instructions = kernel_cs_instructions
        self.lock = SpinLock(f"{name}.lock", handoff=lock_handoff)
        self.barrier = SpinBarrier(f"{name}.barrier", threads)
        self.workers: list[GuestThread] = []
        self._window_start_rounds = 0
        self._window_start_ns: Optional[int] = None
        self._loop_rounds = 0
        self._rng = None

    @property
    def rounds_completed(self) -> int:
        if self.use_barrier:
            return self.barrier.rounds_completed
        return self._loop_rounds // self.threads_wanted

    def _install(self, machine: "Machine", vm: "VM") -> None:
        if len(vm.vcpus) < self.threads_wanted:
            raise ValueError(
                f"{self.name} wants {self.threads_wanted} vCPUs, "
                f"VM {vm.name} has {len(vm.vcpus)}"
            )
        assert vm.guest is not None
        self._rng = machine.rng.stream(f"spin/{self.name}")
        for i in range(self.threads_wanted):
            worker = GuestThread(
                f"{self.name}.w{i}", self._body, profile=self.profile
            )
            vm.guest.add_thread(worker, vm.vcpus[i])
            self.workers.append(worker)

    def _body(self, thread: GuestThread) -> Iterator[Phase]:
        assert self._rng is not None
        while True:
            work = self.work_instructions * float(self._rng.uniform(0.5, 1.5))
            if self.kernel_lock_every > 0:
                remaining = work
                while remaining > 0:
                    chunk = min(remaining, self.kernel_lock_every)
                    yield Compute(chunk)
                    remaining -= chunk
                    yield Acquire(self.lock)
                    yield Compute(self.kernel_cs_instructions)
                    yield Release(self.lock)
            else:
                yield Compute(work)
            yield Acquire(self.lock)
            yield Compute(self.cs_instructions)
            yield Release(self.lock)
            self._loop_rounds += 1
            if self.use_barrier:
                yield BarrierWait(self.barrier)
            if self.sleep_ns > 0:
                yield Sleep(int(self._rng.exponential(self.sleep_ns)) + 1)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        self._window_start_rounds = self.rounds_completed
        self._window_start_ns = self.now

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(f"{self.name}: begin_measurement was never called")
        window = self.now - self._window_start_ns
        rounds = self.rounds_completed - self._window_start_rounds
        if rounds <= 0:
            raise RuntimeError(f"{self.name}: no rounds completed in window")
        return PerfResult(
            name=self.name,
            metric="ns_per_round",
            value=window / rounds,
            details=(
                ("rounds", rounds),
                ("mean_lock_duration_ns", self.lock.stats.mean_duration_ns),
                ("acquisitions", self.lock.stats.acquisitions),
                ("spin_ns", sum(w.spin_ns for w in self.workers)),
            ),
        )


__all__ = ["SpinWorkload"]
