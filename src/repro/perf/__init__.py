"""Profiling helpers for finding simulator hot spots.

The experiments CLI exposes this as ``--profile`` (see ``python -m
repro.experiments --help``); library users wrap any code region::

    from repro.perf import capture

    with capture() as prof:
        machine.run(500 * MS)
    print(prof.report(limit=20))

The capture is plain :mod:`cProfile`/:mod:`pstats` from the standard
library — no third-party dependency — so it works in every environment
the simulator does.
"""

from repro.perf.profiler import ProfileCapture, capture

__all__ = ["ProfileCapture", "capture"]
