"""cProfile/pstats capture with one-call reporting.

Kept deliberately small: a context manager that records a profile and a
:class:`ProfileCapture` that can render a cumulative-time table, dump
the binary profile for ``snakeviz``/``pstats`` post-processing, or
dispatch on a destination string (the CLI contract of ``--profile``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator


class ProfileCapture:
    """A finished (or in-flight) cProfile recording."""

    def __init__(self) -> None:
        self._profile = cProfile.Profile()

    # -- recording -----------------------------------------------------
    def start(self) -> None:
        self._profile.enable()

    def stop(self) -> None:
        self._profile.disable()

    # -- reporting -----------------------------------------------------
    def stats(self, sort: str = "cumulative") -> pstats.Stats:
        return pstats.Stats(self._profile).sort_stats(sort)

    def report(self, sort: str = "cumulative", limit: int = 30) -> str:
        """A pstats table as text, ``limit`` rows, sorted by ``sort``."""
        buffer = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()

    def dump(self, path: str) -> None:
        """Binary profile for ``python -m pstats`` / snakeviz."""
        self._profile.dump_stats(path)

    def write(self, dest: str, sort: str = "cumulative", limit: int = 30) -> None:
        """Write the capture to ``dest`` per the CLI contract.

        ``"-"`` prints the text table to stderr (stdout is reserved for
        experiment output, which must stay byte-identical with and
        without profiling); a path ending in ``.prof`` gets the binary
        dump; any other path gets the text table.
        """
        if dest == "-":
            sys.stderr.write(self.report(sort=sort, limit=limit))
        elif dest.endswith(".prof"):
            self.dump(dest)
        else:
            with open(dest, "w", encoding="utf-8") as handle:
                handle.write(self.report(sort=sort, limit=limit))


@contextmanager
def capture() -> Iterator[ProfileCapture]:
    """Profile the ``with`` body; the capture is readable after exit."""
    cap = ProfileCapture()
    cap.start()
    try:
        yield cap
    finally:
        cap.stop()


__all__ = ["ProfileCapture", "capture"]
