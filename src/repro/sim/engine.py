"""The discrete-event simulation core.

A :class:`Simulator` owns a virtual clock (integer nanoseconds) and a
priority queue of :class:`Event` objects.  Components schedule callbacks
with :meth:`Simulator.at` / :meth:`Simulator.after`; the main loop pops
events in ``(time, sequence)`` order, so two events scheduled for the
same instant fire in scheduling order — this tie-break rule is what makes
whole-system runs deterministic.

Events are cancellable: cancelling marks the event dead and the loop
skips it (lazy deletion, the standard heapq idiom), which is how the
scheduler retracts a pending quantum-expiry when a vCPU blocks early.

Two interchangeable kernels implement the queue (select with the
``kernel=`` constructor argument or the ``REPRO_SIM_KERNEL`` environment
variable; see DESIGN.md §9):

``"heap"``
    A single binary heap of ``(time, seq, event)`` tuples.  Tuple
    entries keep every comparison at C level — the previous kernel
    heapified :class:`Event` objects and paid a Python ``__lt__`` call
    per comparison.

``"wheel"`` (the default)
    The same tuple heap plus a timer-wheel fast lane for the near
    future.  The dominant event classes — periodic scheduler ticks,
    quantum expiries, and 30 ms monitoring samples — land on a small
    set of fixed cadences well inside the wheel horizon, so they are
    appended to a calendar slot in O(1) and only migrate to the heap
    when the clock reaches their slot; events cancelled before their
    slot is flushed never touch the heap at all.  Aperiodic or
    far-future events fall back to the heap.  Ordering is unchanged:
    a slot is flushed into the heap *before* the loop pops any event
    at or beyond the slot's lower edge, so the heap remains the single
    totally-ordered pop source and the ``(time, seq)`` fire order is
    bit-for-bit identical to the heap kernel (the differential suite
    in ``tests/test_engine_equivalence.py`` locks this down).
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry import Telemetry

#: Width of one timer-wheel slot.  1 ms divides every periodic cadence
#: the hypervisor uses (1–30 ms quanta, 10 ms ticks, 30 ms accounting
#: and vTRS sampling) and keeps sub-ms completion events one slot away.
_WHEEL_SLOT_NS = 1_000_000

#: Number of wheel slots; horizon = slots * slot width = 64 ms, which
#: covers every periodic cadence from `now`.
_WHEEL_SLOTS = 64

_KERNELS = ("heap", "wheel")


class SimulationError(RuntimeError):
    """Raised when the engine detects an impossible state.

    Examples: scheduling an event in the past, or running the clock
    backwards.  These always indicate a bug in a component, never a
    legitimate runtime condition, so they are not meant to be caught.
    """


class Event:
    """A scheduled callback.  Create via ``Simulator.at``/``after`` only.

    The public surface is :meth:`cancel` and the read-only attributes
    ``time``, ``label`` and ``cancelled``.
    """

    __slots__ = ("time", "seq", "fn", "label", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None], label: str) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Queue entries are (time, seq, event) tuples whose unique seq
        # means this is never reached by the kernel; kept so external
        # code can still sort Event objects.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event {self.label!r} @{self.time}{state}>"


class Simulator:
    """Deterministic event loop over an integer-nanosecond virtual clock."""

    __slots__ = (
        "kernel",
        "now",
        "telemetry",
        "_heap",
        "_seq",
        "_events_fired",
        "_running",
        "_use_wheel",
        "_slot_ns",
        "_wheel",
        "_horizon_ns",
        "_wheel_count",
        "_flushed_until",
    )

    def __init__(self, kernel: Optional[str] = None) -> None:
        if kernel is None:
            # Kernel selection flips between two result-equivalent event
            # queues (pinned by tests/test_engine_equivalence.py); the
            # env knob changes performance, never simulated behaviour.
            kernel = os.environ.get("REPRO_SIM_KERNEL", "wheel")  # simlint: disable=SIM008
        if kernel not in _KERNELS:
            raise ValueError(
                f"unknown simulator kernel {kernel!r} (expected one of {_KERNELS})"
            )
        self.kernel = kernel
        self.now: int = 0
        #: optional observability sink; spans are emitted only around
        #: whole run_until calls (never inside the pop loop), so a
        #: disabled — or absent — Telemetry costs one None check per run
        self.telemetry: Optional["Telemetry"] = None
        #: (time, seq, Event) tuples — C-level comparisons, no __lt__
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False
        # -- timer wheel (unused but allocated under kernel="heap") ----
        self._use_wheel = kernel == "wheel"
        self._slot_ns = _WHEEL_SLOT_NS
        self._wheel: list[list[tuple[int, int, Event]]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        self._horizon_ns = _WHEEL_SLOTS * _WHEEL_SLOT_NS
        #: entries currently parked in wheel slots (cancelled included)
        self._wheel_count = 0
        #: lower edge of the first unflushed slot; every pending event
        #: with ``time < _flushed_until`` is guaranteed heap-resident,
        #: and the wheel only holds times in
        #: [_flushed_until, _flushed_until + _horizon_ns)
        self._flushed_until = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``.

        ``time`` must be integral: the clock is integer nanoseconds, and
        silently truncating a float would let two components desync on
        sub-nanosecond drift.  Integral floats (``5.0``) are accepted.
        """
        itime = int(time)
        if itime != time:
            raise SimulationError(
                f"non-integral time {time!r} for {label!r} "
                "(the clock is integer nanoseconds)"
            )
        if itime < self.now:
            raise SimulationError(
                f"cannot schedule {label!r} at {itime} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(itime, seq, fn, label)
        if self._use_wheel and 0 <= itime - self._flushed_until < self._horizon_ns:
            self._wheel[(itime // self._slot_ns) % _WHEEL_SLOTS].append(
                (itime, seq, event)
            )
            self._wheel_count += 1
        else:
            heappush(self._heap, (itime, seq, event))
        return event

    def after(self, delay: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` to run ``delay`` nanoseconds from now.

        Like :meth:`at`, rejects non-integral delays instead of
        truncating them.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label!r}")
        idelay = int(delay)
        if idelay != delay:
            raise SimulationError(
                f"non-integral delay {delay!r} for {label!r} "
                "(the clock is integer nanoseconds)"
            )
        return self.at(self.now + idelay, fn, label)

    # ------------------------------------------------------------------
    # the timer wheel
    # ------------------------------------------------------------------
    def _flush_to(self, limit: int) -> None:
        """Make every wheel event with ``time <= limit`` heap-resident.

        Advances ``_flushed_until`` one slot at a time; entries whose
        event was cancelled while parked are dropped without ever
        touching the heap.
        """
        slot_ns = self._slot_ns
        fu = self._flushed_until
        count = self._wheel_count
        if count:
            heap = self._heap
            wheel = self._wheel
            while fu <= limit:
                slot = wheel[(fu // slot_ns) % _WHEEL_SLOTS]
                if slot:
                    count -= len(slot)
                    for entry in slot:
                        if not entry[2].cancelled:
                            heappush(heap, entry)
                    slot.clear()
                    if not count:
                        fu += slot_ns
                        break
                fu += slot_ns
            self._wheel_count = count
        if not count and fu <= limit:
            # nothing left to move: jump the frontier past `limit`
            fu = (limit // slot_ns + 1) * slot_ns
        self._flushed_until = fu

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Fire events in order until the clock reaches ``end_time``.

        The clock is left exactly at ``end_time`` even if the queue runs
        dry earlier, so periodic components can be resumed by a later
        ``run_until`` call.
        """
        if end_time < self.now:
            raise SimulationError(f"run_until({end_time}) is in the past")
        if self._running:
            raise SimulationError("re-entrant run_until")
        self._running = True
        # telemetry spans bracket whole run_until calls, outside the pop
        # loop — the loop itself stays untouched by observability
        telemetry = self.telemetry
        span = None
        if telemetry is not None and telemetry.enabled:
            span = telemetry.tracer.begin(
                self.now, "run_until", track="engine", category="engine",
                end_time=end_time,
            )
        # hot loop: heap ops and the fired counter live in locals; the
        # counter is synced back in the finally block so events_fired is
        # exact on every exit path (including a raising callback)
        start_fired = self._events_fired
        fired = start_fired
        heap = self._heap
        pop = heappop
        try:
            if not self._use_wheel:
                while heap and heap[0][0] <= end_time:
                    time, _, event = pop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    fired += 1
                    event.fn()
            else:
                while True:
                    # fire heap events below both the horizon already
                    # flushed out of the wheel and the end time
                    flushed_until = self._flushed_until
                    while heap:
                        time = heap[0][0]
                        if time > end_time or time >= flushed_until:
                            break
                        _, _, event = pop(heap)
                        if event.cancelled:
                            continue
                        self.now = time
                        fired += 1
                        event.fn()
                        flushed_until = self._flushed_until
                    # advance the wheel frontier to the next needed time
                    if flushed_until > end_time:
                        break
                    head = heap[0][0] if heap else None
                    if self._wheel_count == 0 and (
                        head is None or head > end_time
                    ):
                        break
                    limit = end_time if head is None else min(end_time, head)
                    self._flush_to(limit)
            self.now = end_time
        finally:
            self._events_fired = fired
            self._running = False
            if span is not None and telemetry is not None:
                telemetry.tracer.end(
                    self.now, span, events_fired=fired - start_fired
                )
                telemetry.registry.gauge("engine_events_fired").set(
                    float(fired)
                )

    def step(self) -> Optional[Event]:
        """Fire the single next pending event; return it (None if empty).

        Test helper — production code uses :meth:`run_until`.  Like
        :meth:`run_until` it refuses to re-enter a running loop: a
        callback stepping the engine would corrupt the clock invariant.
        """
        if self._running:
            raise SimulationError("re-entrant step")
        self._running = True
        try:
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    return None
                if self._use_wheel and self._flushed_until <= nxt:
                    self._flush_to(nxt)
                while self._heap:
                    time, _, event = heappop(self._heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    self._events_fired += 1
                    event.fn()
                    return event
                # every heap entry was cancelled: re-examine the wheel
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        live = sum(1 for _, _, e in self._heap if not e.cancelled)
        if self._wheel_count:
            live += sum(
                1 for slot in self._wheel for _, _, e in slot if not e.cancelled
            )
        return live

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        best: Optional[int] = heap[0][0] if heap else None
        if self._wheel_count:
            # slots are examined in time order, so the first slot with a
            # live entry holds the wheel's minimum
            slot_ns = self._slot_ns
            base = self._flushed_until
            wheel = self._wheel
            for _ in range(_WHEEL_SLOTS):
                if best is not None and base > best:
                    break
                slot = wheel[(base // slot_ns) % _WHEEL_SLOTS]
                slot_best: Optional[int] = None
                for time, _, event in slot:
                    if not event.cancelled and (
                        slot_best is None or time < slot_best
                    ):
                        slot_best = time
                if slot_best is not None:
                    if best is None or slot_best < best:
                        best = slot_best
                    break
                base += slot_ns
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending} kernel={self.kernel}>"


def noop() -> None:
    """A callback that does nothing (useful as a pure wake-up marker)."""


__all__ = ["Event", "Simulator", "SimulationError", "noop"]
