"""The discrete-event simulation core.

A :class:`Simulator` owns a virtual clock (integer nanoseconds) and a
priority queue of :class:`Event` objects.  Components schedule callbacks
with :meth:`Simulator.at` / :meth:`Simulator.after`; the main loop pops
events in ``(time, sequence)`` order, so two events scheduled for the
same instant fire in scheduling order — this tie-break rule is what makes
whole-system runs deterministic.

Events are cancellable: cancelling marks the event dead and the loop
skips it (lazy deletion, the standard heapq idiom), which is how the
scheduler retracts a pending quantum-expiry when a vCPU blocks early.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine detects an impossible state.

    Examples: scheduling an event in the past, or running the clock
    backwards.  These always indicate a bug in a component, never a
    legitimate runtime condition, so they are not meant to be caught.
    """


class Event:
    """A scheduled callback.  Create via ``Simulator.at``/``after`` only.

    The public surface is :meth:`cancel` and the read-only attributes
    ``time``, ``label`` and ``cancelled``.
    """

    __slots__ = ("time", "seq", "fn", "label", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None], label: str):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event {self.label!r} @{self.time}{state}>"


class Simulator:
    """Deterministic event loop over an integer-nanosecond virtual clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label!r} at {time} < now {self.now}"
            )
        event = Event(int(time), self._seq, fn, label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label!r}")
        return self.at(self.now + int(delay), fn, label)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Fire events in order until the clock reaches ``end_time``.

        The clock is left exactly at ``end_time`` even if the queue runs
        dry earlier, so periodic components can be resumed by a later
        ``run_until`` call.
        """
        if end_time < self.now:
            raise SimulationError(f"run_until({end_time}) is in the past")
        if self._running:
            raise SimulationError("re-entrant run_until")
        self._running = True
        try:
            while self._queue and self._queue[0].time <= end_time:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self.now = event.time
                self._events_fired += 1
                event.fn()
            self.now = end_time
        finally:
            self._running = False

    def step(self) -> Optional[Event]:
        """Fire the single next pending event; return it (None if empty).

        Test helper — production code uses :meth:`run_until`.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_fired += 1
            event.fn()
            return event
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"


def noop() -> None:
    """A callback that does nothing (useful as a pure wake-up marker)."""


__all__ = ["Event", "Simulator", "SimulationError", "noop"]
