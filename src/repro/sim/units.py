"""Time-unit constants for the simulator's integer-nanosecond clock.

All simulator timestamps and durations are plain Python integers counted
in nanoseconds.  Using integers keeps event ordering exact and the
simulation bit-for-bit reproducible across platforms; these constants
exist so call sites can say ``30 * MS`` instead of ``30_000_000``.
"""

#: One nanosecond — the base unit of the virtual clock.
NS = 1

#: One microsecond in nanoseconds.
US = 1_000

#: One millisecond in nanoseconds.
MS = 1_000_000

#: One second in nanoseconds.
SEC = 1_000_000_000


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond timestamp as a human-readable string.

    Picks the largest unit that keeps the value >= 1, e.g. ``fmt_time(30 *
    MS)`` returns ``"30.000ms"``.  Used by traces and error messages only;
    never parse the output.
    """
    if t_ns >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if t_ns >= MS:
        return f"{t_ns / MS:.3f}ms"
    if t_ns >= US:
        return f"{t_ns / US:.3f}us"
    return f"{t_ns}ns"
