"""Deterministic random-stream management.

Every stochastic component (each IO arrival process, each workload's
burst-length draw, ...) gets its *own* ``numpy`` generator derived from
the experiment seed and a stable string name.  This way adding a new
component never perturbs the streams of existing ones, and two runs with
the same seed are identical regardless of event interleaving.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngFactory:
    """Derives independent, reproducible random generators by name."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator unique to ``(seed, name)``.

        The name is hashed so that arbitrarily-structured component names
        ("vm3/vcpu1/io") map to well-distributed child seeds.
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(child_seed)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, for components that own sub-components."""
        digest = hashlib.sha256(f"{self.seed}:{name}:factory".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))


__all__ = ["RngFactory"]
