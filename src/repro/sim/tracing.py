"""Lightweight structured trace recorder.

Components emit ``(time, kind, payload)`` tuples; experiments and tests
filter them afterwards.  Tracing is off by default (a disabled recorder
drops records at near-zero cost) because full schedules of multi-second
runs would dominate memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, when, and free-form details."""

    time: int
    kind: str
    payload: dict

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceRecord({self.time}, {self.kind!r}, {self.payload!r})"


class TraceRecorder:
    """Append-only trace sink with kind-based filtering."""

    def __init__(self, enabled: bool = False, kinds: Optional[set[str]] = None) -> None:
        self.enabled = enabled
        self.kinds = kinds  # None means record every kind
        self._records: list[TraceRecord] = []

    def emit(self, time: int, kind: str, **payload: Any) -> None:
        """Record an event if tracing is on and the kind is selected."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self._records.append(TraceRecord(time, kind, payload))

    def records(self, kind: Optional[str] = None) -> list[TraceRecord]:
        """All records, optionally filtered to one kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()


__all__ = ["TraceRecord", "TraceRecorder"]
