"""Discrete-event simulation substrate.

This package provides the generic machinery every other subsystem is
built on: a deterministic event queue driven by an integer-nanosecond
virtual clock (:mod:`repro.sim.engine`), time-unit constants
(:mod:`repro.sim.units`), seeded random-stream management
(:mod:`repro.sim.rng`) and a lightweight trace recorder
(:mod:`repro.sim.tracing`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngFactory
from repro.sim.tracing import TraceRecorder
from repro.sim.units import MS, NS, SEC, US, fmt_time

__all__ = [
    "Event",
    "Simulator",
    "RngFactory",
    "TraceRecorder",
    "NS",
    "US",
    "MS",
    "SEC",
    "fmt_time",
]
