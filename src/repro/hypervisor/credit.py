"""The Credit scheduler (Xen's default), §2.1 of the paper.

Faithfully modelled mechanisms:

* per-VM **weights** and optional **caps**; credits are distributed every
  accounting period (30 ms) in proportion to weight and clipped so a
  blocked vCPU cannot hoard an unbounded balance;
* **UNDER/OVER** states: positive balance runs before exhausted ones;
  within a priority class vCPUs round-robin;
* **BOOST**: a vCPU that blocked voluntarily (did not exhaust its
  previous quantum) and still has credit is boosted to the head of the
  queue when an event wakes it, preempting a non-BOOST vCPU — and,
  exactly as the paper stresses, a vCPU that *did* consume its full
  quantum gets no boost, which is why heterogeneous IO workloads suffer
  under long quanta;
* per-pCPU run queues with intra-pool work stealing (a pool never idles
  a pCPU while a sibling queue holds a runnable vCPU).

One deliberate deviation: Xen samples credit burn at 10 ms ticks
(charging whole ticks to whoever holds the pCPU at the tick), which is
a known unfairness orthogonal to this paper.  We burn credits exactly,
proportionally to integrated run time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.hypervisor.vm import Priority, VCpu, VCpuState
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine, PCpuContext


@dataclass(frozen=True, slots=True)
class CreditParams:
    """Tunables of the Credit scheduler."""

    tick_ns: int = 10 * MS
    accounting_ns: int = 30 * MS
    credits_per_tick: float = 100.0
    credit_clip: float = 300.0
    boost_enabled: bool = True

    @property
    def burn_rate_per_ns(self) -> float:
        return self.credits_per_tick / self.tick_ns


class RunQueue:
    """Priority run queue: BOOST, then UNDER, then OVER; FIFO within.

    The three class queues live in a fixed tuple ordered by priority so
    the per-dispatch scans (``pop_best``/``best_priority``/``__len__``)
    are plain tuple walks — iterating the ``Priority`` enum on every
    call showed up in the small-quantum profile.
    """

    __slots__ = ("_queues", "_ordered")

    def __init__(self) -> None:
        self._queues: dict[Priority, deque[VCpu]] = {
            priority: deque() for priority in Priority
        }
        self._ordered: tuple[tuple[Priority, deque[VCpu]], ...] = tuple(
            (priority, self._queues[priority]) for priority in Priority
        )

    def push(self, vcpu: VCpu, front: bool = False) -> None:
        queue = self._queues[vcpu.priority]
        if front:
            queue.appendleft(vcpu)
        else:
            queue.append(vcpu)

    def pop_best(self) -> Optional[VCpu]:
        for _, queue in self._ordered:
            if queue:
                return queue.popleft()
        return None

    def remove(self, vcpu: VCpu) -> bool:
        for _, queue in self._ordered:
            try:
                queue.remove(vcpu)
                return True
            except ValueError:
                continue
        return False

    def best_priority(self) -> Optional[Priority]:
        for priority, queue in self._ordered:
            if queue:
                return priority
        return None

    def drain(self) -> list[VCpu]:
        """Remove and return every queued vCPU."""
        drained: list[VCpu] = []
        for _, queue in self._ordered:
            drained.extend(queue)
            queue.clear()
        return drained

    def refresh_priorities(self, classify) -> None:
        """Re-bucket queued vCPUs after an accounting pass.

        ``classify(vcpu)`` returns the new priority.  Stale BOOSTs are
        demoted too — as in Xen, boost is a transient that does not
        survive an accounting period spent sitting in the run queue.
        """
        entries = self.drain()
        for vcpu in entries:
            vcpu.priority = classify(vcpu)
        for vcpu in entries:
            self.push(vcpu)

    def __len__(self) -> int:
        queues = self._ordered
        return len(queues[0][1]) + len(queues[1][1]) + len(queues[2][1])

    def __iter__(self) -> Iterator[VCpu]:
        for _, queue in self._ordered:
            yield from queue


class CreditScheduler:
    """Scheduling *policy*; mechanism (dispatch/integration) lives in Machine."""

    __slots__ = ("machine", "params")

    def __init__(self, machine: "Machine", params: CreditParams) -> None:
        self.machine = machine
        self.params = params

    # ------------------------------------------------------------------
    # priority helpers
    # ------------------------------------------------------------------
    def priority_for(self, vcpu: VCpu) -> Priority:
        return Priority.UNDER if vcpu.credit > 0 else Priority.OVER

    def boost_eligible(self, vcpu: VCpu) -> bool:
        return (
            self.params.boost_enabled
            and vcpu.dispatch_count > 0  # first-ever wake is not an IO wake
            and not vcpu.exhausted_last_quantum
            and vcpu.credit > 0
        )

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def select_pcpu(self, vcpu: VCpu) -> "PCpuContext":
        """Choose the pool pCPU to queue ``vcpu`` on.

        Idle first, then shortest queue; cache affinity (last pCPU)
        breaks ties.
        """
        pool = vcpu.pool
        if pool is None or not pool.pcpus:
            raise RuntimeError(f"{vcpu!r} has no schedulable pool")
        # single pass, no per-call list or closure; `<` keeps the first
        # minimum exactly like min() did
        contexts = self.machine.contexts
        last = vcpu.last_pcpu
        best: Optional["PCpuContext"] = None
        best_key: Optional[tuple] = None
        for pcpu in pool.pcpus:
            ctx = contexts[pcpu]
            key = (
                0 if ctx.current is None else 1,
                len(ctx.runq),
                0 if pcpu is last else 1,
                pcpu.cpu_id,
            )
            if best_key is None or key < best_key:
                best = ctx
                best_key = key
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # run-queue events
    # ------------------------------------------------------------------
    def enqueue(self, vcpu: VCpu, front: bool = False) -> "PCpuContext":
        ctx = self.select_pcpu(vcpu)
        vcpu.state = VCpuState.RUNNABLE
        ctx.runq.push(vcpu, front=front)
        return ctx

    def pick_next(self, ctx: "PCpuContext") -> Optional[VCpu]:
        """Best local vCPU, with Xen's load-balance rule.

        When the local choice would be nothing or an OVER vCPU, try to
        steal an UNDER/BOOST vCPU from a pool sibling first (csched's
        balancing); an empty local queue falls back to stealing
        anything runnable so the pool stays work-conserving.
        """
        local = ctx.runq.pop_best()
        if local is not None and local.priority < Priority.OVER:
            return local
        # one pass over the pool siblings finds both the best UNDER/BOOST
        # donor and the longest busy queue; strict `>` keeps the first
        # maximum in pool order, exactly like the max() calls it replaces
        contexts = self.machine.contexts
        own = ctx.pcpu
        donor: Optional["PCpuContext"] = None
        donor_len = -1
        busy: Optional["PCpuContext"] = None
        busy_len = -1
        for pcpu in ctx.pool.pcpus:
            if pcpu is own:
                continue
            peer = contexts[pcpu]
            queued = len(peer.runq)
            if not queued:
                continue
            if queued > busy_len:
                busy = peer
                busy_len = queued
            best = peer.runq.best_priority()
            if best is not None and best < Priority.OVER and queued > donor_len:
                donor = peer
                donor_len = queued
        if donor is not None:
            stolen = donor.runq.pop_best()
            assert stolen is not None
            stolen.steals += 1
            if local is not None:
                ctx.runq.push(local, front=True)
            return stolen
        if local is not None:
            return local
        if busy is None:
            return None
        stolen = busy.runq.pop_best()
        if stolen is not None:
            stolen.steals += 1
        return stolen

    # ------------------------------------------------------------------
    # periodic accounting
    # ------------------------------------------------------------------
    def burn(self, vcpu: VCpu, run_ns: float) -> None:
        """Charge exact credit burn for integrated run time."""
        vcpu.credit -= run_ns * self.params.burn_rate_per_ns

    def on_tick(self, ctx: "PCpuContext") -> None:
        """Per-pCPU 10 ms tick: BOOST expires after its first tick."""
        current = ctx.current
        if current is not None and current.priority == Priority.BOOST:
            current.priority = self.priority_for(current)

    def on_accounting(self, vcpus: Iterable[VCpu]) -> None:
        """30 ms credit redistribution + cap enforcement.

        A VM whose vCPUs consumed more CPU than its cap allows this
        period is *throttled* (its vCPUs are parked) for the next
        period — Xen's cap semantics at accounting granularity.
        """
        del vcpus  # credits are pool-scoped; kept for interface clarity
        telemetry = self.machine.telemetry
        if telemetry.enabled:
            telemetry.registry.counter("accounting_passes").inc()
        clip = self.params.credit_clip
        per_pcpu = (
            self.params.credits_per_tick
            * self.params.accounting_ns
            / self.params.tick_ns
        )
        for vm in self.machine.vms:
            if vm.cap is None:
                continue
            consumed = sum(v.run_since_acct for v in vm.vcpus)
            allowed = vm.cap / 100.0 * self.params.accounting_ns
            throttle = consumed > allowed
            for vcpu in vm.vcpus:
                vcpu.throttled = throttle
            if throttle and telemetry.enabled:
                telemetry.registry.counter(
                    "cap_throttles", vm=vm.name
                ).inc()
        for vcpu in self.machine.all_vcpus:
            vcpu.run_since_acct = 0.0
        for pool in self.machine.pools:
            members = sorted(pool.vcpus, key=lambda v: v.vcpu_id)
            if not members or not pool.pcpus:
                continue
            total_credits = per_pcpu * len(pool.pcpus)
            total_weight = sum(v.vm.weight / len(v.vm.vcpus) for v in members)
            if total_weight <= 0:
                continue
            for vcpu in members:
                weight = vcpu.vm.weight / len(vcpu.vm.vcpus)
                earned = total_credits * weight / total_weight
                if vcpu.vm.cap is not None:
                    cap_credits = (
                        vcpu.vm.cap / 100.0 * per_pcpu / len(vcpu.vm.vcpus)
                    )
                    earned = min(earned, cap_credits)
                vcpu.credit = max(-clip, min(clip, vcpu.credit + earned))
        for ctx in self.machine.contexts.values():
            ctx.runq.refresh_priorities(self.priority_for)


__all__ = ["CreditParams", "CreditScheduler", "RunQueue"]
