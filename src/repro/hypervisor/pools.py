"""CPU pools: disjoint pCPU sets, each with its own quantum length.

AQL_Sched's clustering output is a pool layout: every pCPU belongs to
exactly one pool, every vCPU is assigned to a pool, and each pool's
scheduler runs with the cluster's quantum length.  Following the
paper's implementation trick (§4.3) the scheduler state is shared, so
moving a vCPU between pools costs nothing beyond re-queueing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.topology import PCpu
    from repro.hypervisor.vm import VCpu


class CpuPool:
    """A set of pCPUs scheduled with one quantum length."""

    def __init__(self, pool_id: int, name: str, quantum_ns: int = 30 * MS) -> None:
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.pool_id = pool_id
        self.name = name
        self.quantum_ns = quantum_ns
        self.pcpus: list["PCpu"] = []
        self.vcpus: set["VCpu"] = set()

    def add_pcpu(self, pcpu: "PCpu") -> None:
        if pcpu not in self.pcpus:
            self.pcpus.append(pcpu)

    def remove_pcpu(self, pcpu: "PCpu") -> None:
        self.pcpus.remove(pcpu)

    def add_vcpu(self, vcpu: "VCpu") -> None:
        self.vcpus.add(vcpu)
        vcpu.pool = self

    def remove_vcpu(self, vcpu: "VCpu") -> None:
        self.vcpus.discard(vcpu)
        if vcpu.pool is self:
            vcpu.pool = None

    def release_pcpus(self) -> list["PCpu"]:
        """Give up every pCPU (pool collapse); returns them in order."""
        released = list(self.pcpus)
        self.pcpus.clear()
        return released

    def release_vcpus(self) -> list["VCpu"]:
        """Detach every vCPU (e.g. the pool lost its last pCPU)."""
        released = sorted(self.vcpus, key=lambda v: v.vcpu_id)
        for vcpu in released:
            self.remove_vcpu(vcpu)
        return released

    @property
    def load(self) -> float:
        """vCPUs per pCPU — the fairness ratio the clustering preserves."""
        if not self.pcpus:
            return float("inf") if self.vcpus else 0.0
        return len(self.vcpus) / len(self.pcpus)

    def describe(self) -> tuple[str, int, int, int]:
        """``(name, quantum_ns, #pcpus, #vcpus)`` — the ledger row shape."""
        return (self.name, self.quantum_ns, len(self.pcpus), len(self.vcpus))

    def __contains__(self, item: object) -> bool:
        return item in self.vcpus or item in self.pcpus

    def __repr__(self) -> str:
        return (
            f"<CpuPool {self.name} q={self.quantum_ns // MS}ms "
            f"pcpus={len(self.pcpus)} vcpus={len(self.vcpus)}>"
        )


class PoolPlan:
    """A desired pool layout, produced by clustering and applied atomically.

    ``entries`` maps a pool label to (pcpu list, quantum, vcpu list).
    :meth:`validate` enforces the structural invariants before the
    machine applies anything.
    """

    def __init__(self) -> None:
        self.entries: list[tuple[str, list["PCpu"], int, list["VCpu"]]] = []
        #: (vcpu_id, reason) for every vCPU the clustering placed in a
        #: default-quantum pool instead of its type's calibrated one —
        #: carried alongside the entries so the decision audit can
        #: record *why* a placement deviated
        self.spills: list[tuple[int, str]] = []

    def add(
        self,
        name: str,
        pcpus: Iterable["PCpu"],
        quantum_ns: int,
        vcpus: Iterable["VCpu"],
    ) -> None:
        self.entries.append((name, list(pcpus), int(quantum_ns), list(vcpus)))

    def validate(self, all_pcpus: Iterable["PCpu"], all_vcpus: Iterable["VCpu"]) -> None:
        """Check: pCPUs partitioned, every vCPU placed exactly once."""
        seen_pcpus: set = set()
        seen_vcpus: set = set()
        for name, pcpus, quantum_ns, vcpus in self.entries:
            if quantum_ns <= 0:
                raise ValueError(f"pool {name!r}: non-positive quantum")
            if not pcpus and vcpus:
                raise ValueError(f"pool {name!r}: vCPUs but no pCPUs")
            for pcpu in pcpus:
                if pcpu in seen_pcpus:
                    raise ValueError(f"pCPU {pcpu!r} in two pools")
                seen_pcpus.add(pcpu)
            for vcpu in vcpus:
                if vcpu in seen_vcpus:
                    raise ValueError(f"vCPU {vcpu!r} in two pools")
                seen_vcpus.add(vcpu)
        missing = [v for v in all_vcpus if v not in seen_vcpus]
        if missing:
            raise ValueError(f"plan leaves vCPUs unplaced: {missing}")
        all_pcpu_set = set(all_pcpus)
        extra_pcpus = [p for p in seen_pcpus if p not in all_pcpu_set]
        if extra_pcpus:
            raise ValueError(f"plan references foreign pCPUs: {extra_pcpus}")
        uncovered = [p for p in all_pcpu_set if p not in seen_pcpus]
        if uncovered:
            raise ValueError(f"plan leaves pCPUs unassigned: {uncovered}")

    def describe(
        self,
    ) -> tuple[tuple[str, int, tuple[int, ...], tuple[int, ...]], ...]:
        """Plain-data view: ``(name, quantum, pcpu ids, vcpu ids)`` rows."""
        return tuple(
            (
                name,
                quantum_ns,
                tuple(p.cpu_id for p in pcpus),
                tuple(sorted(v.vcpu_id for v in vcpus)),
            )
            for name, pcpus, quantum_ns, vcpus in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{name}(q={q // MS}ms,{len(ps)}p,{len(vs)}v)"
            for name, ps, q, vs in self.entries
        )
        return f"<PoolPlan {parts}>"


__all__ = ["CpuPool", "PoolPlan"]
