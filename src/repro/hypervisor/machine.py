"""The virtualized machine: dispatch, phase interpretation, integration.

:class:`Machine` owns the simulator, the hardware topology, the CPU
pools, the Credit scheduler and every VM.  It is the *mechanism* layer:
it dispatches the vCPU the scheduler picked, interprets the guest
thread's current phase (compute / spin / IO wait / sleep), and — at
every segment boundary (preemption, tick, phase completion, block) —
integrates the elapsed CPU time through the socket's LLC model,
crediting instructions to the thread and counter increments to the
vCPU's PMU.

The flow mirrors Xen: ``wake -> enqueue (maybe BOOST-preempt) ->
dispatch with the pool's quantum -> run segments bounded by 10 ms ticks
-> quantum expiry or voluntary block -> reschedule``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.guest.os import GuestOS
from repro.guest.phases import (
    Acquire,
    BarrierWait,
    Compute,
    Exit,
    Release,
    SemAcquire,
    SemRelease,
    Sleep,
    WaitEvent,
)
from repro.guest.thread import GuestThread, ThreadState
from repro.hardware.cache import (
    estimate_duration_ns,
    integrate_duration,
)
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hardware.topology import PCpu, Topology
from repro.hypervisor.credit import CreditParams, CreditScheduler, RunQueue
from repro.hypervisor.event_channel import EventPort
from repro.hypervisor.pools import CpuPool, PoolPlan
from repro.hypervisor.vm import VM, Priority, VCpu, VCpuState
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.sim.tracing import TraceRecorder
from repro.sim.units import MS
from repro.telemetry import PoolChange, Telemetry

#: A compute phase with fewer remaining instructions than this is done.
_PHASE_DONE_TOLERANCE = 0.5
#: Never schedule a completion event closer than this (avoids event storms
#: when an estimate rounds to ~zero).
_MIN_COMPLETION_DELAY_NS = 200


class PCpuContext:
    """Scheduling state the hypervisor keeps per physical core."""

    __slots__ = (
        "pcpu", "pool", "current", "runq", "tick_event", "tick_fn", "offline",
        "slice_span",
    )

    def __init__(self, pcpu: PCpu, pool: CpuPool) -> None:
        self.pcpu = pcpu
        self.pool = pool
        self.current: Optional[VCpu] = None
        self.runq = RunQueue()
        #: the pending 10 ms tick, cancelled while the pCPU is offline
        self.tick_event = None
        #: the tick callback, built once — re-arming a tick every 10 ms
        #: must not allocate a fresh closure each time
        self.tick_fn = None
        self.offline = False
        #: the open telemetry quantum-slice span, when telemetry is on
        self.slice_span = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cur = self.current.name if self.current else "idle"
        return f"<ctx {self.pcpu!r} {cur} q={len(self.runq)}>"


class Machine:
    """A virtualized multi-core machine under the Credit scheduler."""

    def __init__(
        self,
        spec: Optional[MachineSpec] = None,
        *,
        seed: int = 0,
        default_quantum_ns: int = 30 * MS,
        boost_enabled: bool = True,
        tick_ns: int = 10 * MS,
        accounting_ns: int = 30 * MS,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        cache_substeps: int = 8,
    ):
        self.spec = spec or i7_3770()
        self.sim = Simulator()
        self.topology = Topology(self.spec)
        self.rng = RngFactory(seed)
        # note: `trace or default` would drop an *empty* recorder
        # (TraceRecorder defines __len__), so compare with None
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        # same None-comparison discipline; the disabled default keeps
        # every emit site down to one attribute check
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(enabled=False)
        )
        self.sim.telemetry = self.telemetry
        self.params = CreditParams(
            tick_ns=tick_ns,
            accounting_ns=accounting_ns,
            boost_enabled=boost_enabled,
        )
        self.cache_substeps = cache_substeps
        self._llc_hit_ns = self.spec.llc.hit_ns
        self._llc_miss_ns = self.spec.llc.miss_ns

        self.pools: list[CpuPool] = []
        self._next_pool_id = 0
        self.default_pool = self.create_pool(
            "pool0", self.topology.pcpus, default_quantum_ns
        )
        self.contexts: dict[PCpu, PCpuContext] = {
            pcpu: PCpuContext(pcpu, self.default_pool)
            for pcpu in self.topology.pcpus
        }
        self.scheduler = CreditScheduler(self, self.params)

        self.vms: list[VM] = []
        #: VMs removed by :meth:`shutdown_vm`; kept so post-mortem
        #: accounting (instruction totals, invariant checks) still sees
        #: their threads and counters
        self.retired_vms: list[VM] = []
        self._next_vcpu_id = 0
        self._next_vm_id = 0
        self._started = False
        #: runnable vCPUs parked by cap throttling, re-queued at the
        #: next accounting once their VM is under its cap again
        self._parked: list[VCpu] = []
        #: pCPUs removed by fault injection (:meth:`offline_pcpu`)
        self.offline_pcpus: set[PCpu] = set()
        #: the most recently installed PoolPlan (None until the first
        #: apply_pool_plan) — invariant checks compare live pool quanta
        #: against it
        self.last_plan: Optional[PoolPlan] = None
        #: machine-wide count of vCPU pool moves (plan migrations plus
        #: fault-driven re-absorptions) — the adaptation-metrics layer
        #: reads deltas of this around churn events
        self.migrations_total = 0

    # ==================================================================
    # construction API
    # ==================================================================
    def create_pool(
        self, name: str, pcpus: Iterable[PCpu], quantum_ns: int
    ) -> CpuPool:
        """Create a pool, taking ownership of ``pcpus`` from their old pools."""
        pool = CpuPool(self._next_pool_id, name, quantum_ns)
        self._next_pool_id += 1
        contexts = getattr(self, "contexts", None)
        for pcpu in pcpus:
            for other in self.pools:
                if pcpu in other.pcpus:
                    other.remove_pcpu(pcpu)
            pool.add_pcpu(pcpu)
            if contexts is not None and pcpu in contexts:
                contexts[pcpu].pool = pool
        self.pools.append(pool)
        return pool

    def new_vm(
        self,
        name: str,
        vcpus: int = 1,
        weight: int = 256,
        cap: Optional[int] = None,
        pool: Optional[CpuPool] = None,
    ) -> VM:
        """Create a VM, attach a guest OS, place its vCPUs in ``pool``."""
        vm = VM(
            self._next_vm_id,
            name,
            vcpus,
            weight=weight,
            cap=cap,
            first_vcpu_id=self._next_vcpu_id,
        )
        self._next_vm_id += 1
        self._next_vcpu_id += vcpus
        vm.guest = GuestOS(vm)
        target = pool or self.default_pool
        for vcpu in vm.vcpus:
            target.add_vcpu(vcpu)
        self.vms.append(vm)
        return vm

    def new_port(self, vcpu: VCpu, name: str) -> EventPort:
        port = EventPort(name, vcpu, self.wake_vcpu, self.guest_interrupt)
        vcpu.vm.ports.append(port)
        return port

    @property
    def all_vcpus(self) -> list[VCpu]:
        return [vcpu for vm in self.vms for vcpu in vm.vcpus]

    @property
    def online_pcpus(self) -> list[PCpu]:
        return [p for p in self.topology.pcpus if p not in self.offline_pcpus]

    # ==================================================================
    # running
    # ==================================================================
    def start(self) -> None:
        """Arm ticks/accounting and wake every vCPU with runnable work."""
        if self._started:
            return
        self._started = True
        for pcpu in self.topology.pcpus:
            ctx = self.contexts[pcpu]
            if not ctx.offline:
                self._schedule_tick(ctx)
        self._schedule_accounting()
        for vcpu in self.all_vcpus:
            guest = vcpu.vm.guest
            if guest is not None and guest.has_runnable(vcpu):
                self.wake_vcpu(vcpu)

    def boot_vm(self, vm: VM) -> None:
        """Hot-add: wake a freshly-installed VM on a running machine.

        ``new_vm`` + workload install only create blocked vCPUs; before
        :meth:`start` that is fine (start wakes everything), but a VM
        booted mid-run needs this explicit nudge.
        """
        if not self._started:
            return
        for vcpu in vm.vcpus:
            guest = vcpu.vm.guest
            if guest is not None and guest.has_runnable(vcpu):
                self.wake_vcpu(vcpu)

    def run(self, duration_ns: int) -> None:
        """Advance virtual time by ``duration_ns``."""
        if not self._started:
            self.start()
        self.sim.run_until(self.sim.now + int(duration_ns))

    def sync(self) -> None:
        """Integrate every running vCPU up to 'now'.

        Monitors call this before reading counters so that deltas cover
        exactly one period.
        """
        for ctx in self.contexts.values():
            if ctx.current is not None:
                self._integrate(ctx.current)

    def every(
        self, period_ns: int, fn: Callable[[], None], label: str = "periodic"
    ) -> None:
        """Invoke ``fn`` every ``period_ns`` of virtual time, forever."""

        def fire() -> None:
            fn()
            self.sim.after(period_ns, fire, label)

        self.sim.after(period_ns, fire, label)

    # ==================================================================
    # scheduler entry points
    # ==================================================================
    def wake_vcpu(self, vcpu: VCpu) -> None:
        """An event made ``vcpu`` runnable (IO arrival, sleep expiry)."""
        if vcpu.state != VCpuState.BLOCKED:
            return
        guest = vcpu.vm.guest
        if guest is None or not guest.has_runnable(vcpu):
            return
        if vcpu.throttled:
            vcpu.state = VCpuState.RUNNABLE
            self._parked.append(vcpu)
            return
        if self.scheduler.boost_eligible(vcpu):
            vcpu.priority = Priority.BOOST
        else:
            vcpu.priority = self.scheduler.priority_for(vcpu)
        ctx = self.scheduler.enqueue(vcpu, front=vcpu.priority == Priority.BOOST)
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "wake", vcpu=vcpu.name, boost=vcpu.priority == Priority.BOOST)
        if self.telemetry.enabled:
            self.telemetry.registry.counter("wakes", vcpu=vcpu.name).inc()
            if vcpu.priority == Priority.BOOST:
                self.telemetry.registry.counter("boost_wakes").inc()
        self._kick(ctx)

    def _kick(self, ctx: PCpuContext) -> None:
        """Dispatch if idle; preempt if a strictly better vCPU is queued."""
        if ctx.current is None:
            self._reschedule(ctx)
            return
        best = ctx.runq.best_priority()
        if best is not None and best < ctx.current.priority:
            self._reschedule(ctx, requeue_front=True)

    # ==================================================================
    # dispatch / deschedule
    # ==================================================================
    def _close_slice(self, ctx: PCpuContext, reason: str) -> None:
        """End the open quantum-slice span of ``ctx`` (telemetry on)."""
        span = ctx.slice_span
        if span is None:
            return
        ctx.slice_span = None
        self.telemetry.tracer.end(self.sim.now, span, reason=reason)
        self.telemetry.registry.histogram("slice_ns").observe(
            float(span.duration_ns)
        )

    def _reschedule(self, ctx: PCpuContext, requeue_front: bool = False) -> None:
        current = ctx.current
        if current is not None:
            self._integrate(current)
            self._cancel_events(current)
            current.state = VCpuState.RUNNABLE
            current.pcpu = None
            current.segment_kind = None
            ctx.current = None
            current.priority = self.scheduler.priority_for(current)
            if self.trace.enabled:
                self.trace.emit(self.sim.now, "desched", vcpu=current.name)
            if self.telemetry.enabled:
                self._close_slice(
                    ctx,
                    "preempt" if current.exhausted_last_quantum else "resched",
                )
            if current.throttled:
                self._parked.append(current)
            else:
                ctx.runq.push(current, front=requeue_front)
        nxt = self.scheduler.pick_next(ctx)
        if nxt is not None:
            self._dispatch(ctx, nxt)

    def _dispatch(self, ctx: PCpuContext, vcpu: VCpu) -> None:
        vcpu.state = VCpuState.RUNNING
        vcpu.pcpu = ctx.pcpu
        vcpu.last_pcpu = ctx.pcpu
        vcpu.dispatch_count += 1
        vcpu.exhausted_last_quantum = False
        ctx.current = vcpu
        quantum = vcpu.quantum_override or ctx.pool.quantum_ns
        vcpu.quantum_event = self.sim.after(
            quantum, lambda: self._on_quantum_expire(ctx, vcpu), "quantum"
        )
        vcpu.segment_start = self.sim.now
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now, "dispatch", vcpu=vcpu.name, pcpu=ctx.pcpu.cpu_id, quantum=quantum
            )
        if self.telemetry.enabled:
            self.telemetry.registry.counter("dispatches", vcpu=vcpu.name).inc()
            ctx.slice_span = self.telemetry.tracer.begin(
                self.sim.now,
                vcpu.name,
                track=f"pcpu{ctx.pcpu.cpu_id}",
                category="quantum_slice",
                quantum_ns=quantum,
                pool=ctx.pool.name,
            )
        self._start_segment(vcpu)

    def _on_quantum_expire(self, ctx: PCpuContext, vcpu: VCpu) -> None:
        if ctx.current is not vcpu:  # stale event
            return
        vcpu.exhausted_last_quantum = True
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "preempt", vcpu=vcpu.name)
        if self.telemetry.enabled:
            self.telemetry.registry.counter("preempts", vcpu=vcpu.name).inc()
        self._reschedule(ctx)

    def _deschedule_current(self, ctx: PCpuContext) -> Optional[VCpu]:
        """Strip the running vCPU off ``ctx`` with exact integration.

        The vCPU is left RUNNABLE but *not* re-queued — callers
        (shutdown, fault injection, plan application) decide where it
        goes next.  Returns it, or None if the pCPU was idle.
        """
        current = ctx.current
        if current is None:
            return None
        self._integrate(current)
        self._cancel_events(current)
        current.state = VCpuState.RUNNABLE
        current.priority = self.scheduler.priority_for(current)
        current.pcpu = None
        current.segment_kind = None
        ctx.current = None
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "desched", vcpu=current.name)
        if self.telemetry.enabled:
            self._close_slice(ctx, "desched")
        return current

    def _block_vcpu(self, vcpu: VCpu) -> None:
        """No runnable guest thread: give up the pCPU."""
        assert vcpu.pcpu is not None
        ctx = self.contexts[vcpu.pcpu]
        self._integrate(vcpu)
        self._cancel_events(vcpu)
        vcpu.state = VCpuState.BLOCKED
        vcpu.exhausted_last_quantum = False  # voluntary yield: BOOST-eligible
        vcpu.pcpu = None
        vcpu.segment_kind = None
        vcpu.current_thread = None
        ctx.current = None
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "block", vcpu=vcpu.name)
        if self.telemetry.enabled:
            self.telemetry.registry.counter("blocks", vcpu=vcpu.name).inc()
            self._close_slice(ctx, "block")
        self._reschedule(ctx)

    def _cancel_events(self, vcpu: VCpu) -> None:
        if vcpu.quantum_event is not None:
            vcpu.quantum_event.cancel()
            vcpu.quantum_event = None
        if vcpu.completion_event is not None:
            vcpu.completion_event.cancel()
            vcpu.completion_event = None

    # ==================================================================
    # phase interpretation
    # ==================================================================
    def _start_segment(self, vcpu: VCpu) -> None:
        """Interpret guest phases until one occupies the CPU (or blocks).

        Zero-duration phases (lock ops, event consumption, sleeps,
        exits) resolve inline; the loop ends when a compute or spin
        phase begins, or the vCPU blocks for lack of runnable threads.
        """
        assert vcpu.pcpu is not None
        guest = vcpu.vm.guest
        assert guest is not None
        now = self.sim.now
        vcpu.segment_start = now
        vcpu.segment_kind = None
        while True:
            if vcpu.state != VCpuState.RUNNING or vcpu.pcpu is None:
                return  # a phase handler's side effect descheduled us
            thread = guest.maybe_rotate(vcpu)
            if thread is None:
                self._block_vcpu(vcpu)
                return
            vcpu.current_thread = thread
            phase = thread.current_phase()

            if isinstance(phase, Compute):
                self._enter_compute(vcpu, thread, phase)
                return

            if isinstance(phase, Acquire):
                if phase.requested_at is None:
                    phase.requested_at = now
                if phase.lock.try_acquire(thread, now):
                    vcpu.vm.spin_notifications += 1.0
                    thread.advance_phase()
                    continue
                self._enter_spin(vcpu, thread)
                return

            if isinstance(phase, Release):
                beneficiary = phase.lock.release(thread, now)
                thread.advance_phase()
                if beneficiary is not None:
                    self._poke_spinner(beneficiary)
                continue

            if isinstance(phase, SemAcquire):
                if phase.granted:
                    # a releaser handed us the unit while we slept
                    phase.semaphore.grant_to(thread, now)
                    phase.granted = False
                    thread.advance_phase()
                    continue
                if phase.semaphore.try_acquire(thread, now):
                    thread.advance_phase()
                    continue
                guest.thread_blocked(thread)
                continue  # blocked: try another thread on this vCPU

            if isinstance(phase, SemRelease):
                waiter = phase.semaphore.release(thread, now)
                thread.advance_phase()
                if waiter is not None:
                    waiter_phase = waiter.phase
                    assert isinstance(waiter_phase, SemAcquire)
                    waiter_phase.granted = True
                    # defer the wake-up one event-loop turn: waking
                    # synchronously could BOOST-preempt *this* vCPU
                    # while its segment is still being set up
                    self.sim.after(
                        0,
                        lambda w=waiter: self._thread_timer_wake(w),
                        "sem-wake",
                    )
                continue

            if isinstance(phase, BarrierWait):
                barrier = phase.barrier
                if phase.generation is None:
                    released = barrier.arrive(thread)
                    if released is not None:
                        # this arrival completed the round
                        thread.advance_phase()
                        for waiter in released:
                            self._poke_spinner(waiter)
                        continue
                    phase.generation = barrier.generation
                    self._enter_spin(vcpu, thread)
                    return
                if barrier.generation != phase.generation:
                    # released while this vCPU was off-CPU or spinning
                    thread.advance_phase()
                    continue
                self._enter_spin(vcpu, thread)  # still waiting
                return

            if isinstance(phase, WaitEvent):
                ok, payload = phase.port.try_consume()
                if ok:
                    phase.payload = payload
                    thread.advance_phase()
                    continue
                if (
                    phase.port.waiter is not None
                    and phase.port.waiter is not thread
                ):
                    raise RuntimeError(
                        f"{phase.port.name}: one waiter per port "
                        f"({phase.port.waiter!r} already waiting; use one "
                        f"port per server thread)"
                    )
                phase.port.waiter = thread
                guest.thread_blocked(thread)
                continue  # try another thread on this vCPU

            if isinstance(phase, Sleep):
                if phase.expired:
                    thread.advance_phase()
                    continue
                if not phase.started:
                    phase.started = True
                    guest.thread_blocked(thread)
                    self.sim.after(
                        phase.duration_ns,
                        lambda t=thread, p=phase: self._sleep_expired(t, p),
                        "sleep",
                    )
                else:  # spurious visit while still sleeping
                    guest.thread_blocked(thread)
                continue

            if isinstance(phase, Exit):
                thread.finished_at = now
                guest.thread_exited(thread)
                continue

            raise TypeError(f"unknown phase {phase!r}")

    def _enter_compute(self, vcpu: VCpu, thread: GuestThread, phase: Compute) -> None:
        if thread.started_at is None:
            thread.started_at = self.sim.now
        thread.state = ThreadState.RUNNING
        vcpu.segment_kind = "compute"
        vcpu.segment_start = self.sim.now
        self._handle_thread_migration(thread, vcpu)
        self._arm_completion(vcpu, thread, phase)

    def _enter_spin(self, vcpu: VCpu, thread: GuestThread) -> None:
        if thread.started_at is None:
            thread.started_at = self.sim.now
        thread.state = ThreadState.SPINNING
        vcpu.segment_kind = "spin"
        vcpu.segment_start = self.sim.now
        # No completion event: the spin ends when the holder releases
        # (poke) or when this vCPU is preempted.

    def _arm_completion(self, vcpu: VCpu, thread: GuestThread, phase: Compute) -> None:
        assert vcpu.pcpu is not None
        cache = vcpu.pcpu.socket.llc
        estimate = estimate_duration_ns(
            cache,
            thread,
            thread.effective_profile(),
            phase.remaining,
            self._llc_hit_ns,
            self._llc_miss_ns,
        )
        delay = max(int(estimate), _MIN_COMPLETION_DELAY_NS)
        if vcpu.completion_event is not None:
            vcpu.completion_event.cancel()
        vcpu.completion_event = self.sim.after(
            delay, lambda: self._on_phase_complete(vcpu, thread, phase), "compute-done"
        )

    def _on_phase_complete(self, vcpu: VCpu, thread: GuestThread, phase: Compute) -> None:
        if vcpu.current_thread is not thread or thread.phase is not phase:
            return  # stale event
        if vcpu.state != VCpuState.RUNNING:
            return
        self._integrate(vcpu)
        vcpu.completion_event = None
        if phase.remaining <= _PHASE_DONE_TOLERANCE:
            phase.remaining = 0.0
            thread.advance_phase()
            self._start_segment(vcpu)
        else:
            # the cache was colder than estimated: keep going
            self._arm_completion(vcpu, thread, phase)

    def _handle_thread_migration(self, thread: GuestThread, vcpu: VCpu) -> None:
        """Evict the stale LLC footprint when a thread changes socket."""
        assert vcpu.pcpu is not None
        socket = vcpu.pcpu.socket
        if thread.last_socket is not None and thread.last_socket is not socket:
            thread.last_socket.llc.evict_actor(thread)
        thread.last_socket = socket

    # ==================================================================
    # spin-lock wiring
    # ==================================================================
    def _poke_spinner(self, thread: GuestThread) -> None:
        """A lock was granted to ``thread``; stop its spin if it is on-CPU.

        If its vCPU is descheduled the grant sits until that vCPU runs —
        the lock-waiter-preemption stall the paper measures.
        """
        vcpu = thread.vcpu
        if vcpu is None:
            return
        if (
            thread.state == ThreadState.SPINNING
            and vcpu.state == VCpuState.RUNNING
            and vcpu.current_thread is thread
        ):
            self._integrate(vcpu)
            self._start_segment(vcpu)

    def guest_interrupt(self, vcpu: VCpu, thread: GuestThread) -> None:
        """An event arrived for ``thread`` while its vCPU is not blocked.

        The guest OS switches to the handler thread: immediately if the
        vCPU holds a pCPU (integrate, switch, restart the segment), or
        by re-ordering the guest run queue so the handler runs first at
        the next dispatch.
        """
        guest = vcpu.vm.guest
        assert guest is not None
        if vcpu.state == VCpuState.RUNNING:
            if vcpu.current_thread is thread:
                return
            self._integrate(vcpu)
            if guest.preempt_to(vcpu, thread):
                if vcpu.completion_event is not None:
                    vcpu.completion_event.cancel()
                    vcpu.completion_event = None
                self._start_segment(vcpu)
        else:
            guest.preempt_to(vcpu, thread)

    def _sleep_expired(self, thread: GuestThread, phase: Sleep) -> None:
        phase.expired = True
        self._thread_timer_wake(thread)

    def _thread_timer_wake(self, thread: GuestThread) -> None:
        vcpu = thread.vcpu
        if vcpu is None or thread.done or not vcpu.vm.alive:
            return  # sleep/sem timers routinely outlive a shut-down VM
        guest = vcpu.vm.guest
        assert guest is not None
        if guest.thread_ready(thread):
            if vcpu.state == VCpuState.BLOCKED:
                self.wake_vcpu(vcpu)

    # ==================================================================
    # integration
    # ==================================================================
    def _integrate(self, vcpu: VCpu) -> None:
        """Account the elapsed run segment of a RUNNING vCPU."""
        now = self.sim.now
        elapsed = now - vcpu.segment_start
        if elapsed <= 0 or vcpu.segment_kind is None:
            vcpu.segment_start = now
            return
        thread = vcpu.current_thread
        assert thread is not None and vcpu.pcpu is not None
        guest = vcpu.vm.guest
        assert guest is not None

        if vcpu.segment_kind == "compute":
            cache = vcpu.pcpu.socket.llc
            profile = thread.effective_profile()
            segment = integrate_duration(
                cache,
                thread,
                profile,
                float(elapsed),
                self._llc_hit_ns,
                self._llc_miss_ns,
                substeps=self.cache_substeps,
            )
            vcpu.pmu.add_segment(segment)
            thread.instructions_retired += segment.instructions
            phase = thread.phase
            if isinstance(phase, Compute):
                phase.remaining = max(0.0, phase.remaining - segment.instructions)
        elif vcpu.segment_kind == "spin":
            # spin time is evidence for the PLE detector, not the PMU: a
            # PAUSE loop retires (essentially) no workload instructions
            # and produces no LLC traffic
            vcpu.ple.note_spin(float(elapsed))
            thread.spin_ns += elapsed
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"bad segment kind {vcpu.segment_kind!r}")

        thread.run_ns += elapsed
        guest.note_run(vcpu, elapsed)
        vcpu.charge_run(elapsed)
        self.scheduler.burn(vcpu, float(elapsed))
        vcpu.segment_start = now

    # ==================================================================
    # periodic machinery
    # ==================================================================
    def _schedule_tick(self, ctx: PCpuContext) -> None:
        fn = ctx.tick_fn
        if fn is None:
            fn = ctx.tick_fn = lambda: self._on_tick(ctx)
        ctx.tick_event = self.sim.after(self.params.tick_ns, fn, "tick")

    def _on_tick(self, ctx: PCpuContext) -> None:
        if ctx.offline:  # raced with offline_pcpu; do not re-arm
            return
        current = ctx.current
        if current is not None:
            self._integrate(current)
            self.scheduler.on_tick(ctx)
            if ctx.current is current:  # might have changed (defensive)
                best = ctx.runq.best_priority()
                if best is not None and best < current.priority:
                    self._reschedule(ctx)
                else:
                    self._tick_refresh(ctx, current)
        self._schedule_tick(ctx)

    def _tick_refresh(self, ctx: PCpuContext, vcpu: VCpu) -> None:
        """At a tick boundary: rotate guest threads, refresh estimates."""
        guest = vcpu.vm.guest
        assert guest is not None
        thread = vcpu.current_thread
        if thread is not None and thread.state == ThreadState.SPINNING:
            return  # do not disturb a spinner
        rotated = guest.maybe_rotate(vcpu)
        if rotated is not thread:
            if vcpu.completion_event is not None:
                vcpu.completion_event.cancel()
                vcpu.completion_event = None
            self._start_segment(vcpu)
            return
        phase = thread.phase if thread is not None else None
        if isinstance(phase, Compute) and thread is not None:
            self._arm_completion(vcpu, thread, phase)

    def _schedule_accounting(self) -> None:
        self.sim.after(self.params.accounting_ns, self._on_accounting, "accounting")

    def _on_accounting(self) -> None:
        self.sync()
        self.scheduler.on_accounting(self.all_vcpus)
        # park freshly-throttled vCPUs: running ones are descheduled,
        # queued ones pulled out of their run queues
        for ctx in self.contexts.values():
            if ctx.current is not None and ctx.current.throttled:
                self._reschedule(ctx)
        for vcpu in self.all_vcpus:
            if (
                vcpu.throttled
                and vcpu.state == VCpuState.RUNNABLE
                and vcpu not in self._parked
            ):
                for ctx in self.contexts.values():
                    if ctx.runq.remove(vcpu):
                        break
                self._parked.append(vcpu)
        # un-park vCPUs whose VM is back under its cap
        still_parked: list[VCpu] = []
        for vcpu in self._parked:
            if vcpu.throttled:
                still_parked.append(vcpu)
                continue
            ctx = self.scheduler.enqueue(vcpu)
            self._kick(ctx)
        self._parked = still_parked
        for ctx in self.contexts.values():
            if ctx.current is not None:
                best = ctx.runq.best_priority()
                if best is not None and best < ctx.current.priority:
                    self._reschedule(ctx)
            elif len(ctx.runq):
                self._reschedule(ctx)
        if self.telemetry.enabled:
            self._sample_telemetry()
        self._schedule_accounting()

    def _sample_telemetry(self) -> None:
        """Refresh gauges and push one ring-buffer sample (per accounting)."""
        registry = self.telemetry.registry
        for pool in self.pools:
            if pool.pcpus:
                registry.gauge("pool_load", pool=pool.name).set(pool.load)
            registry.gauge("pool_vcpus", pool=pool.name).set(
                float(len(pool.vcpus))
            )
            registry.gauge("pool_quantum_ns", pool=pool.name).set(
                float(pool.quantum_ns)
            )
        registry.gauge("vms_alive").set(float(len(self.vms)))
        registry.gauge("migrations_total").set(float(self.migrations_total))
        registry.gauge("parked_vcpus").set(float(len(self._parked)))
        registry.sample(self.sim.now)

    # ==================================================================
    # lifecycle: VM teardown and pCPU fault injection
    # ==================================================================
    def shutdown_vm(self, vm: VM) -> None:
        """Tear a VM down cleanly while the machine keeps running.

        Every port is closed (pending events dropped), every vCPU is
        pulled out of whatever scheduler structure holds it (a pCPU,
        a run queue, the cap-parking list), its pool membership is
        dissolved, and a pool left without vCPUs collapses back into
        the default pool.  Stale timers aimed at the VM's threads are
        neutralised by the ``vm.alive`` guard, not by hunting events.
        """
        if vm not in self.vms:
            raise ValueError(f"{vm!r} is not a live VM of this machine")
        for port in vm.ports:
            port.close()
        for vcpu in vm.vcpus:
            if vcpu.state == VCpuState.RUNNING:
                assert vcpu.pcpu is not None
                ctx = self.contexts[vcpu.pcpu]
                self._deschedule_current(ctx)
                self._reschedule(ctx)  # backfill the freed pCPU
            if vcpu.state == VCpuState.RUNNABLE:
                if vcpu in self._parked:
                    self._parked.remove(vcpu)
                else:
                    for ctx in self.contexts.values():
                        if ctx.runq.remove(vcpu):
                            break
            self._cancel_events(vcpu)
            vcpu.state = VCpuState.BLOCKED
            vcpu.current_thread = None
            vcpu.segment_kind = None
            pool = vcpu.pool
            if pool is not None:
                pool.remove_vcpu(vcpu)
                self._maybe_collapse_pool(pool)
        vm.alive = False
        self.vms.remove(vm)
        self.retired_vms.append(vm)
        self.trace.emit(self.sim.now, "vm-shutdown", vm=vm.name)
        if self.telemetry.enabled:
            self.telemetry.tracer.instant(
                self.sim.now, "vm-shutdown", track="machine", vm=vm.name
            )
            self.telemetry.registry.counter("vm_shutdowns").inc()

    def _record_pool_change(self, kind: str, detail: str) -> None:
        """Append the current pool layout to the telemetry ledger."""
        self.telemetry.audit.record_pool_change(
            PoolChange(
                time_ns=self.sim.now,
                kind=kind,
                detail=detail,
                migrations_total=self.migrations_total,
                pools=tuple(p.describe() for p in self.pools),
            )
        )

    def _maybe_collapse_pool(self, pool: CpuPool) -> None:
        """An emptied non-default pool returns its pCPUs to the default."""
        if pool is self.default_pool or pool.vcpus or pool not in self.pools:
            return
        for pcpu in pool.release_pcpus():
            self.default_pool.add_pcpu(pcpu)
            self.contexts[pcpu].pool = self.default_pool
        self.pools.remove(pool)
        if self.telemetry.enabled:
            self._record_pool_change(
                "collapse", f"{pool.name} emptied into {self.default_pool.name}"
            )

    def offline_pcpu(self, pcpu: PCpu) -> None:
        """Fault injection: a pCPU disappears mid-run.

        Whoever runs or queues there is displaced and re-queued on the
        pool's surviving pCPUs; if the pool just lost its last pCPU its
        vCPUs are re-absorbed by the least-loaded pool that still owns
        cores.  The pCPU's tick is cancelled so it costs nothing while
        dark.
        """
        if pcpu in self.offline_pcpus:
            raise ValueError(f"{pcpu!r} is already offline")
        if len(self.online_pcpus) <= 1:
            raise ValueError("cannot offline the last online pCPU")
        ctx = self.contexts[pcpu]
        pool = ctx.pool
        displaced: list[VCpu] = []
        current = self._deschedule_current(ctx)
        if current is not None:
            displaced.append(current)
        displaced.extend(ctx.runq.drain())
        if pcpu in pool.pcpus:
            pool.remove_pcpu(pcpu)
        self.offline_pcpus.add(pcpu)
        ctx.offline = True
        if ctx.tick_event is not None:
            ctx.tick_event.cancel()
            ctx.tick_event = None
        if not pool.pcpus and pool.vcpus:
            # the pool lost its last core: its vCPUs must live elsewhere
            refuge = self._absorbing_pool()
            for vcpu in pool.release_vcpus():
                refuge.add_vcpu(vcpu)
                vcpu.migrations += 1
                self.migrations_total += 1
            if pool in self.pools and pool is not self.default_pool:
                self.pools.remove(pool)
            if self.telemetry.enabled:
                self._record_pool_change(
                    "absorb", f"{pool.name} orphans absorbed by {refuge.name}"
                )
        for vcpu in displaced:
            if vcpu.throttled:
                if vcpu not in self._parked:
                    self._parked.append(vcpu)
                continue
            target = self.scheduler.enqueue(vcpu)
            self._kick(target)
        self.trace.emit(self.sim.now, "pcpu-offline", pcpu=pcpu.cpu_id)
        if self.telemetry.enabled:
            self.telemetry.registry.counter("pcpu_offlines").inc()
            self._record_pool_change(
                "offline", f"pcpu{pcpu.cpu_id} left {pool.name}"
            )

    def _absorbing_pool(self) -> CpuPool:
        """Where orphaned vCPUs go: the least-loaded pool with cores."""
        candidates = [p for p in self.pools if p.pcpus]
        if not candidates:
            raise RuntimeError("no pool with an online pCPU left")
        return min(candidates, key=lambda p: (p.load, p.pool_id))

    def online_pcpu(
        self, pcpu: PCpu, pool: Optional[CpuPool] = None
    ) -> None:
        """Bring a failed pCPU back, attaching it to ``pool``.

        Without an explicit pool the core joins the most loaded pool
        that has vCPUs to relieve (AQL's next decision re-places it
        anyway); its tick restarts and it immediately steals work.
        """
        if pcpu not in self.offline_pcpus:
            raise ValueError(f"{pcpu!r} is not offline")
        self.offline_pcpus.discard(pcpu)
        ctx = self.contexts[pcpu]
        ctx.offline = False
        target = pool
        if target is None:
            loaded = [p for p in self.pools if p.vcpus and p.pcpus]
            if loaded:
                target = max(
                    loaded, key=lambda p: (p.load, -p.pool_id)
                )
            else:
                target = self.default_pool
        target.add_pcpu(pcpu)
        ctx.pool = target
        if self._started:
            self._schedule_tick(ctx)
            self._reschedule(ctx)  # work-steal from pool siblings now
        self.trace.emit(self.sim.now, "pcpu-online", pcpu=pcpu.cpu_id)
        if self.telemetry.enabled:
            self.telemetry.registry.counter("pcpu_onlines").inc()
            self._record_pool_change(
                "online", f"pcpu{pcpu.cpu_id} joined {target.name}"
            )

    # ==================================================================
    # pool reconfiguration (what AQL drives)
    # ==================================================================
    def apply_pool_plan(self, plan: PoolPlan) -> None:
        """Atomically install a new pool layout.

        Every running vCPU is descheduled (with exact integration), all
        queues drained, pools rebuilt, and every runnable vCPU re-queued
        in its new pool.  Blocked vCPUs simply change pool membership.
        Offline pCPUs are outside the plan's world: it must cover
        exactly the online ones.
        """
        plan.validate(self.online_pcpus, self.all_vcpus)
        self.sync()

        old_pool_pcpus = {
            vcpu: tuple(vcpu.pool.pcpus) if vcpu.pool else ()
            for vcpu in self.all_vcpus
        }

        runnable: list[VCpu] = []
        for ctx in self.contexts.values():
            current = self._deschedule_current(ctx)
            if current is not None:
                runnable.append(current)
            runnable.extend(ctx.runq.drain())

        self.pools = []
        for name, pcpus, quantum_ns, vcpus in plan.entries:
            pool = self.create_pool(name, pcpus, quantum_ns)
            for pcpu in pcpus:
                self.contexts[pcpu].pool = pool
            for vcpu in vcpus:
                pool.add_vcpu(vcpu)
                if tuple(pool.pcpus) != old_pool_pcpus[vcpu]:
                    vcpu.migrations += 1
                    self.migrations_total += 1
        if self.pools:
            self.default_pool = self.pools[0]
        self.last_plan = plan

        for vcpu in runnable:
            if vcpu.throttled:
                if vcpu not in self._parked:
                    self._parked.append(vcpu)
                continue
            self.scheduler.enqueue(vcpu)
        for ctx in self.contexts.values():
            if ctx.current is None and len(ctx.runq):
                self._reschedule(ctx)
        self.trace.emit(self.sim.now, "pool-plan", pools=len(plan))
        if self.telemetry.enabled:
            self.telemetry.registry.counter("pool_plans_applied").inc()
            self.telemetry.tracer.instant(
                self.sim.now, "pool-plan", track="machine", pools=len(plan)
            )
            self._record_pool_change(
                "plan",
                ", ".join(
                    f"{name}(q={q // MS}ms,{len(ps)}p,{len(vs)}v)"
                    for name, ps, q, vs in plan.entries
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Machine {self.spec.name} t={self.sim.now} vms={len(self.vms)} "
            f"pools={len(self.pools)}>"
        )


__all__ = ["Machine", "PCpuContext"]
