"""Hypervisor model: VMs, vCPUs, CPU pools, the Credit scheduler.

This package reproduces the Xen mechanisms the paper builds on:

* :mod:`repro.hypervisor.vm` — VM and vCPU objects with credits,
  priorities and per-vCPU monitoring counters;
* :mod:`repro.hypervisor.event_channel` — the split-driver IO path:
  requests become events that can only be consumed once the target vCPU
  holds a pCPU;
* :mod:`repro.hypervisor.pools` — CPU pools, each with its own quantum
  length (the knob AQL_Sched turns);
* :mod:`repro.hypervisor.credit` — the Credit scheduler: weights, caps,
  10 ms accounting ticks, UNDER/OVER states, BOOST on IO wake-up,
  round-robin run queues, intra-pool work stealing;
* :mod:`repro.hypervisor.machine` — the execution engine that dispatches
  vCPUs, interprets guest phases and integrates CPU/cache segments;
* :mod:`repro.hypervisor.hostspec` — the frozen machine-construction
  recipe (topology + scheduler params) every subsystem builds from.
"""

from repro.hypervisor.event_channel import EventPort
from repro.hypervisor.hostspec import HostSpec
from repro.hypervisor.machine import Machine
from repro.hypervisor.pools import CpuPool
from repro.hypervisor.vm import VM, Priority, VCpu, VCpuState

__all__ = [
    "HostSpec",
    "Machine",
    "VM",
    "VCpu",
    "VCpuState",
    "Priority",
    "CpuPool",
    "EventPort",
]
