"""Event channels: the split-driver IO path.

In Xen, device IO reaches a guest as an event-channel notification; the
guest handles it only when one of its vCPUs next holds a pCPU.  The
paper's IOInt monitor counts these notifications per vCPU — that is
``IOInt_level``.

An :class:`EventPort` binds to one vCPU.  Posting an event:

1. increments the vCPU's IO-event counter (the monitoring signal),
2. queues the payload,
3. unblocks the guest thread waiting on the port, if any, and asks the
   machine to wake the vCPU (which is where Credit's BOOST may kick in).

Latency is measured by the workload layer from post time to the moment
the handler thread finishes processing — exactly the gap the quantum
length stretches.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.thread import GuestThread
    from repro.hypervisor.vm import VCpu


class EventPort:
    """One event-channel port bound to a vCPU."""

    def __init__(
        self,
        name: str,
        vcpu: "VCpu",
        wake_fn: Callable[["VCpu"], None],
        interrupt_fn: Optional[Callable[["VCpu", "GuestThread"], None]] = None,
    ):
        self.name = name
        self.vcpu = vcpu
        self._wake_fn = wake_fn
        self._interrupt_fn = interrupt_fn
        self.pending: deque = deque()
        #: the guest thread currently blocked in WaitEvent on this port
        self.waiter: Optional["GuestThread"] = None
        self.posted = 0
        self.consumed = 0
        #: set by :meth:`close` (VM shutdown); a closed port drops
        #: every subsequent post instead of touching the dead vCPU
        self.closed = False
        #: posts *refused* because the port was already closed — these
        #: never entered ``pending`` and do not count as ``posted``
        self.dropped = 0
        #: accepted events later removed from ``pending`` without being
        #: consumed (close-time drain, phase-change drain).  Together
        #: the counters satisfy the conservation law the fuzzer's
        #: ``no_lost_io`` invariant checks on every run:
        #: ``posted == consumed + backlog + discarded``.
        self.discarded = 0

    def post(self, payload: object = None) -> None:
        """Deliver an event notification to the bound vCPU.

        If the handler thread was blocked it becomes ready; a blocked
        vCPU is woken through the hypervisor (BOOST path), while a vCPU
        that is running another thread takes a *guest interrupt*: the
        guest OS switches to the handler immediately, like a real
        kernel's IRQ path.  Posts to a closed port (the bound VM was
        shut down) are counted and dropped — in-flight IO completions
        routinely outlive the VM they were destined for.
        """
        if self.closed:
            self.dropped += 1
            return
        self.pending.append(payload)
        self.posted += 1
        self.vcpu.io_events += 1.0
        waiter = self.waiter
        if waiter is not None:
            guest = self.vcpu.vm.guest
            assert guest is not None
            if guest.thread_ready(waiter):
                self.waiter = None
                self._wake_fn(self.vcpu)
                if self._interrupt_fn is not None:
                    self._interrupt_fn(self.vcpu, waiter)

    def try_consume(self) -> tuple[bool, object]:
        """Pop one pending event; (False, None) when the queue is empty."""
        if not self.pending:
            return False, None
        self.consumed += 1
        return True, self.pending.popleft()

    def discard_pending(self) -> int:
        """Drop every queued-but-undelivered event, keeping the books.

        The one sanctioned way to clear ``pending`` (a phase change
        abandoning requests from a dead IO phase, a close-time drain):
        clearing the deque directly would leak events out of the
        ``posted == consumed + backlog + discarded`` conservation law.
        Returns how many events were discarded.
        """
        count = len(self.pending)
        self.discarded += count
        self.pending.clear()
        return count

    def close(self) -> None:
        """Tear the port down: drain pending events, detach the waiter.

        Pending (undelivered) events count as discarded — they were
        accepted but will never reach a handler.  Idempotent.
        """
        if self.closed:
            return
        self.closed = True
        self.discard_pending()
        self.waiter = None

    @property
    def backlog(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventPort {self.name} backlog={self.backlog}>"


__all__ = ["EventPort"]
