"""The frozen machine-construction recipe shared across subsystems.

Before this module existed every caller that needed a machine of a
given shape rebuilt it from ad-hoc kwargs — ``replace(i7_3770(),
cores_per_socket=N)`` here, a bare ``Machine(spec, seed=...)`` there —
and the scheduler parameters (tick, accounting, default quantum) were
re-defaulted at each site.  :class:`HostSpec` pins **topology + params**
as one frozen, hashable, JSON-round-trippable value:

* the fuzzer (:mod:`repro.fuzz.runner`) builds its machine from the
  scenario's ``host_spec``;
* the churn and colocation experiment families build theirs from
  :meth:`HostSpec.build`;
* the fleet simulator (:mod:`repro.fleet`) keys its host catalog on
  ``HostSpec`` values, so hundreds of simulated hosts share a handful
  of frozen shapes.

Being a frozen dataclass of primitives, a ``HostSpec`` participates in
:func:`repro.exec.hashing.canonical` cache keys: two sweep cells built
from different host shapes can never collide in the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.hardware.specs import MachineSpec, i7_3770, xeon_e5_4603
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.sim.tracing import TraceRecorder
    from repro.telemetry import Telemetry

#: the base parts a HostSpec can be derived from (Table 2 testbeds)
MODELS: dict[str, Callable[[], MachineSpec]] = {
    "i7_3770": i7_3770,
    "xeon_e5_4603": xeon_e5_4603,
}


@dataclass(frozen=True)
class HostSpec:
    """One host shape: base part, core count, scheduler parameters."""

    #: key into :data:`MODELS` (cache geometry + frequency come from it)
    model: str = "i7_3770"
    #: total usable cores (spread evenly over ``sockets``)
    pcpus: int = 4
    sockets: int = 1
    default_quantum_ns: int = 30 * MS
    tick_ns: int = 10 * MS
    accounting_ns: int = 30 * MS
    boost_enabled: bool = True
    cache_substeps: int = 8

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise ValueError(
                f"unknown host model {self.model!r}; choose from "
                f"{sorted(MODELS)}"
            )
        if self.sockets <= 0:
            raise ValueError("need at least one socket")
        if self.pcpus <= 0 or self.pcpus % self.sockets:
            raise ValueError(
                f"pcpus ({self.pcpus}) must be a positive multiple of "
                f"sockets ({self.sockets})"
            )
        if self.default_quantum_ns <= 0:
            raise ValueError("default quantum must be positive")
        if self.tick_ns <= 0 or self.accounting_ns <= 0:
            raise ValueError("tick and accounting periods must be positive")

    def machine_spec(self) -> MachineSpec:
        """The hardware topology this host presents."""
        base = MODELS[self.model]()
        from dataclasses import replace

        return replace(
            base,
            sockets=self.sockets,
            cores_per_socket=self.pcpus // self.sockets,
        )

    def build(
        self,
        seed: int = 0,
        telemetry: Optional["Telemetry"] = None,
        trace: Optional["TraceRecorder"] = None,
    ) -> "Machine":
        """Instantiate a machine of this shape."""
        from repro.hypervisor.machine import Machine

        return Machine(
            self.machine_spec(),
            seed=seed,
            default_quantum_ns=self.default_quantum_ns,
            tick_ns=self.tick_ns,
            accounting_ns=self.accounting_ns,
            boost_enabled=self.boost_enabled,
            telemetry=telemetry,
            trace=trace,
            cache_substeps=self.cache_substeps,
        )

    # ------------------------------------------------------------------
    # serialisation (the fleet host catalog and fuzz cases persist these)
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        return {
            "model": self.model,
            "pcpus": self.pcpus,
            "sockets": self.sockets,
            "default_quantum_ns": self.default_quantum_ns,
            "tick_ns": self.tick_ns,
            "accounting_ns": self.accounting_ns,
            "boost_enabled": self.boost_enabled,
            "cache_substeps": self.cache_substeps,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "HostSpec":
        return cls(
            model=str(data.get("model", "i7_3770")),
            pcpus=int(data["pcpus"]),  # type: ignore[arg-type]
            sockets=int(data.get("sockets", 1)),  # type: ignore[arg-type]
            default_quantum_ns=int(
                data.get("default_quantum_ns", 30 * MS)  # type: ignore[arg-type]
            ),
            tick_ns=int(data.get("tick_ns", 10 * MS)),  # type: ignore[arg-type]
            accounting_ns=int(
                data.get("accounting_ns", 30 * MS)  # type: ignore[arg-type]
            ),
            boost_enabled=bool(data.get("boost_enabled", True)),
            cache_substeps=int(
                data.get("cache_substeps", 8)  # type: ignore[arg-type]
            ),
        )


__all__ = ["MODELS", "HostSpec"]
