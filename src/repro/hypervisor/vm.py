"""Virtual machines and virtual CPUs.

A :class:`VCpu` carries everything the schedulers and monitors need:
Credit-scheduler state (credit balance, priority, pool membership),
execution-engine state (current segment), and the per-vCPU monitoring
counters vTRS reads (PMU, PLE, IO-event count).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.hardware.pmu import PmuCounters
from repro.hardware.ple import PleDetector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.os import GuestOS
    from repro.guest.thread import GuestThread
    from repro.hardware.topology import PCpu
    from repro.hypervisor.event_channel import EventPort
    from repro.hypervisor.pools import CpuPool
    from repro.sim.engine import Event


class VCpuState(enum.Enum):
    RUNNING = "running"  # holds a pCPU
    RUNNABLE = "runnable"  # queued on a run queue
    BLOCKED = "blocked"  # no runnable guest thread


class Priority(enum.IntEnum):
    """Credit-scheduler priorities; lower value = served first."""

    BOOST = 0
    UNDER = 1
    OVER = 2


class VCpu:
    """One virtual CPU."""

    def __init__(self, vcpu_id: int, vm: "VM", index: int) -> None:
        self.vcpu_id = vcpu_id  # globally unique
        self.vm = vm
        self.index = index  # position within the VM

        # -- scheduler state ------------------------------------------
        self.state = VCpuState.BLOCKED
        self.priority = Priority.UNDER
        # fresh vCPUs start with a small positive balance (Xen boots
        # VMs in UNDER), so BOOST works before the first accounting
        self.credit = 100.0
        self.pool: Optional["CpuPool"] = None
        self.pcpu: Optional["PCpu"] = None
        self.last_pcpu: Optional["PCpu"] = None
        #: set when the vCPU's last descheduling was a forced quantum
        #: expiry; such vCPUs are not BOOST-eligible on their next wake
        #: (the rule the paper blames for BOOST failing on heterogeneous
        #: workloads).
        self.exhausted_last_quantum = False
        #: per-vCPU quantum override (used by the vSlicer baseline);
        #: None means "use the pool's quantum".
        self.quantum_override: Optional[int] = None
        #: parked because the VM exceeded its cap this accounting
        #: period; cleared (and re-queued) at the next accounting.
        self.throttled = False

        # -- execution-engine state ------------------------------------
        self.segment_start: int = 0
        self.segment_kind: Optional[str] = None  # 'compute' | 'spin'
        self.current_thread: Optional["GuestThread"] = None
        self.completion_event: Optional["Event"] = None
        self.quantum_event: Optional["Event"] = None

        # -- monitoring counters (what vTRS reads) ---------------------
        self.pmu = PmuCounters()
        self.ple = PleDetector()
        self.io_events = 0.0

        # -- accounting -------------------------------------------------
        self.run_ns_total = 0.0
        self.run_since_tick = 0.0
        self.run_since_acct = 0.0  # for cap enforcement
        self.dispatch_count = 0
        #: pool-to-pool moves caused by re-clustering (plan changes)
        self.migrations = 0
        #: intra-pool work-stealing moves between sibling pCPUs
        self.steals = 0

    @property
    def name(self) -> str:
        return f"{self.vm.name}/v{self.index}"

    def charge_run(self, elapsed_ns: float) -> None:
        self.run_ns_total += elapsed_ns
        self.run_since_tick += elapsed_ns
        self.run_since_acct += elapsed_ns

    def __repr__(self) -> str:
        return f"<vCPU {self.name} {self.state.value} {self.priority.name}>"


class VM:
    """A virtual machine: vCPUs plus the guest OS running in them."""

    def __init__(
        self,
        vm_id: int,
        name: str,
        num_vcpus: int,
        weight: int = 256,
        cap: Optional[int] = None,
        first_vcpu_id: int = 0,
    ):
        if num_vcpus <= 0:
            raise ValueError("a VM needs at least one vCPU")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when set")
        self.vm_id = vm_id
        self.name = name
        self.weight = weight
        self.cap = cap  # percent of one pCPU (Credit semantics); None = uncapped
        self.vcpus = [
            VCpu(first_vcpu_id + i, self, i) for i in range(num_vcpus)
        ]
        self.guest: Optional["GuestOS"] = None  # attached by Machine.new_vm
        #: per-VM spin-lock notification count (paravirtual fallback);
        #: PLE counts live on each vCPU.
        self.spin_notifications = 0.0
        #: False once Machine.shutdown_vm ran: stale timer wakes and
        #: event posts aimed at this VM must be dropped, not delivered.
        self.alive = True
        #: every event-channel port bound to this VM's vCPUs, so
        #: shutdown can close them all (registered by Machine.new_port).
        self.ports: list["EventPort"] = []

    def __repr__(self) -> str:
        return f"<VM {self.name} x{len(self.vcpus)}>"


__all__ = ["VM", "VCpu", "VCpuState", "Priority"]
