"""Live run status: a thread-safe fold of the engine event stream.

:class:`RunStatus` is the single source of truth behind three surfaces:

* ``GET /status`` on the ops HTTP server;
* ``<run-dir>/status.json``, rewritten atomically on every checkpoint
  by :class:`StatusWriter` so a detached run stays inspectable with
  nothing but ``cat``;
* the ``status`` block inside flight-recorder dump metadata.

It observes every event **at the source** — the engine calls
:meth:`observe` inside ``_event()`` before sinks run — so /status is
live even for callers that drive ``Engine.stream()`` directly and
never install a sink.  The fold is observability-only: the engine
never reads it back, so a wrong count here could mislabel a dashboard
but cannot change a fold byte (pinned by
``tests/test_ops_plane.py::test_serve_preserves_fold_bytes``).

Wall-clock note: ``started_unix``/``updated_unix`` stamp when the host
observed events — operational provenance, never a simulation input —
and each read carries a simlint waiver naming its pinning test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.exec.events import (
    CellFinished,
    CellScheduled,
    CheckpointWritten,
    Event,
    Finished,
    Interrupted,
    PhaseStarted,
)
from repro.exec.progress import EtaTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.engine import Engine

#: bumped when the /status document shape changes incompatibly
STATUS_SCHEMA = 1


def _new_stage() -> dict[str, int]:
    return {"cells": 0, "done": 0, "ran": 0, "hit": 0, "resumed": 0}


class RunStatus:
    """Fold engine events into a JSON-ready run summary."""

    def __init__(self, engine: Optional["Engine"] = None) -> None:
        self.engine = engine
        self._lock = threading.Lock()
        self.phase = ""
        self.stage = ""
        self._stages: dict[str, dict[str, int]] = {}
        self.planned = 0
        self.done = 0
        self.ran = 0
        self.hit = 0
        self.resumed = 0
        self.scheduled = 0
        self.ran_done = 0
        self.checkpointed = 0
        self.sweeps_finished = 0
        self.interrupted: Optional[str] = None
        self.eta = EtaTracker()
        self.started_unix: Optional[float] = None
        self.updated_unix: Optional[float] = None

    # ------------------------------------------------------------------
    def observe(self, event: Event) -> None:
        # Status timestamps are host-side provenance for dashboards and
        # status.json; no engine result reads them (pinned by
        # tests/test_ops_plane.py::test_serve_preserves_fold_bytes).
        now = time.time()  # simlint: disable=SIM001,SIM008
        with self._lock:
            if self.started_unix is None:
                self.started_unix = now
            self.updated_unix = now
            if isinstance(event, PhaseStarted):
                self.phase = event.phase
                self.stage = event.stage
                if event.phase == "plan":
                    stage = self._stages.setdefault(
                        event.stage, _new_stage()
                    )
                    stage["cells"] += event.cells
                    self.planned += event.cells
                    self.interrupted = None
            elif isinstance(event, CellScheduled):
                self.scheduled += 1
            elif isinstance(event, CellFinished):
                stage = self._stages.setdefault(event.stage, _new_stage())
                stage["done"] += 1
                self.done += 1
                if event.outcome in stage:
                    stage[event.outcome] += 1
                if event.outcome == "ran":
                    self.ran += 1
                    self.ran_done += 1
                elif event.outcome == "hit":
                    self.hit += 1
                elif event.outcome == "resumed":
                    self.resumed += 1
                self.eta.note(event.outcome, event.seconds)
            elif isinstance(event, CheckpointWritten):
                self.checkpointed = event.completed
            elif isinstance(event, Interrupted):
                self.interrupted = event.reason
            elif isinstance(event, Finished):
                self.sweeps_finished += 1

    # ------------------------------------------------------------------
    def document(self) -> dict[str, Any]:
        """The /status JSON object (also status.json's content)."""
        with self._lock:
            engine = self.engine
            hint = engine.cells_hint if engine is not None else None
            expected = max(self.planned, hint or 0)
            remaining = max(0, expected - self.done)
            eta = self.eta.estimate(remaining)
            # fold lag measures journal backlog; without a run
            # directory nothing journals and the lag is vacuously zero
            journalling = engine is not None and engine.run_dir is not None
            fold_lag = (
                max(0, self.done - self.checkpointed) if journalling else 0
            )
            elapsed: Optional[float] = None
            if self.started_unix is not None and (
                self.updated_unix is not None
            ):
                elapsed = max(0.0, self.updated_unix - self.started_unix)
            doc: dict[str, Any] = {
                "schema": STATUS_SCHEMA,
                "phase": self.phase,
                "stage": self.stage,
                "stages": {
                    name: dict(tallies)
                    for name, tallies in sorted(self._stages.items())
                },
                "cells": {
                    "planned": self.planned,
                    "expected": expected,
                    "done": self.done,
                    "ran": self.ran,
                    "hit": self.hit,
                    "resumed": self.resumed,
                    "scheduled": self.scheduled,
                    "checkpointed": self.checkpointed,
                    "queue_depth": max(0, self.scheduled - self.ran_done),
                    "fold_lag": fold_lag,
                },
                "eta_seconds": eta,
                "elapsed_seconds": elapsed,
                "interrupted": self.interrupted,
                "sweeps_finished": self.sweeps_finished,
                "updated_unix": self.updated_unix,
            }
            if engine is not None:
                run_dir = engine.run_dir
                doc["run"] = {
                    "jobs": engine.jobs,
                    "run_id": run_dir.run_id if run_dir else None,
                    "run_root": (
                        str(engine.run_root) if engine.run_root else None
                    ),
                    "plan": engine.plan_fingerprint,
                    "resumed_at_open": engine.resumed_at_open,
                }
                doc["workers"] = engine.worker_health.snapshot()
            return doc


class StatusWriter:
    """Sink: rewrite ``status.json`` atomically at run milestones.

    Writes on every ``CheckpointWritten`` (the durable progress beat)
    plus phase boundaries and terminal events — not on every cell, so
    cache-hit storms don't turn into fsync storms.  The write is
    tmp-then-:func:`os.replace`, so a reader never observes a torn
    document and a SIGKILL mid-write strands at most one
    ``status.json.tmp`` (removed on the next attach).
    """

    #: event kinds that trigger a rewrite
    TRIGGERS = (PhaseStarted, CheckpointWritten, Interrupted, Finished)

    def __init__(
        self, path: Union[str, Path], status: RunStatus
    ) -> None:
        self.path = Path(path)
        self.status = status
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        # a previous crash may have stranded the temp file
        try:
            self._tmp.unlink()
        except OSError:
            pass

    def __call__(self, event: Event) -> None:
        if not isinstance(event, self.TRIGGERS):
            return
        self.write()

    def write(self) -> None:
        doc = self.status.document()
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        self._tmp.write_text(text, encoding="utf-8")
        os.replace(self._tmp, self.path)

    def close(self) -> None:
        # final rewrite so status.json reflects the terminal state even
        # when the last event was not a trigger
        try:
            self.write()
        except OSError:  # pragma: no cover - run dir vanished
            pass


def read_status(path: Union[str, Path]) -> Optional[dict[str, Any]]:
    """Parse a ``status.json`` if present and well-formed."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


__all__ = [
    "STATUS_SCHEMA",
    "RunStatus",
    "StatusWriter",
    "read_status",
]
