"""Entry point: ``python -m repro.ops attach RUN_DIR``."""

import sys

from repro.ops.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
