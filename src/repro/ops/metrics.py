"""Engine metrics fold: the /metrics endpoint's data source.

:class:`EngineMetricsSink` folds the typed event stream into a private
:class:`~repro.telemetry.registry.TelemetryRegistry` and renders it
through the existing Prometheus exposition
(:func:`repro.telemetry.exposition.prometheus_text`), so the ops plane
reuses the registry/exposition machinery instead of growing a second
metrics path.  Simulation telemetry (virtual-clock registries inside
cells) stays separate: these are *engine* metrics — cells planned,
outcomes, queue depth, worker liveness — about the host-side run.

Every instrument carries ``# HELP`` text (satellite 2's exposition
extension); metric names come out as ``repro_engine_*`` after the
exposition prefix.  The fold is an ordinary event sink behind the
:class:`~repro.ops.stream.FanOutSink`: it observes, it never steers
(pinned by ``tests/test_ops_plane.py::test_serve_preserves_fold_bytes``).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.exec.events import (
    CellFinished,
    CellScheduled,
    CheckpointWritten,
    Event,
    Finished,
    Interrupted,
    PHASE_ORDER,
    PhaseStarted,
)
from repro.exec.queue import WorkerHealth
from repro.telemetry.exposition import prometheus_text
from repro.telemetry.registry import TelemetryRegistry

#: phase name -> ordinal for the engine_phase gauge (0=plan … 3=fold)
PHASE_INDEX = {phase: index for index, phase in enumerate(PHASE_ORDER)}

#: wall-seconds bucket bounds for per-cell durations (engine cells run
#: milliseconds to minutes — unlike the ns-scale simulation defaults)
CELL_SECONDS_BUCKETS = (0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class EngineMetricsSink:
    """Fold engine events into Prometheus-exposable instruments."""

    def __init__(
        self,
        registry: Optional[TelemetryRegistry] = None,
        health: Optional[WorkerHealth] = None,
    ) -> None:
        self.registry = registry if registry is not None else (
            TelemetryRegistry()
        )
        self.health = health
        self._lock = threading.Lock()
        self._scheduled = 0
        self._ran_done = 0

    # ------------------------------------------------------------------
    def __call__(self, event: Event) -> None:
        with self._lock:
            registry = self.registry
            registry.counter(
                "engine_events",
                help="Engine events observed, by kind.",
                kind=event.kind,
            ).inc()
            if isinstance(event, PhaseStarted):
                registry.gauge(
                    "engine_phase",
                    help="Current engine phase (0=plan 1=probe "
                         "2=execute 3=fold).",
                ).set(float(PHASE_INDEX.get(event.phase, -1)))
                if event.phase == "plan":
                    registry.gauge(
                        "engine_cells_planned",
                        help="Cells planned across all sweeps so far.",
                    ).add(float(event.cells))
            elif isinstance(event, CellScheduled):
                self._scheduled += 1
                registry.gauge(
                    "engine_queue_depth",
                    help="Cells handed to the work queue but not yet "
                         "finished.",
                ).set(float(self._scheduled - self._ran_done))
            elif isinstance(event, CellFinished):
                registry.counter(
                    "engine_cells",
                    help="Cells finished, by outcome "
                         "(ran/hit/resumed).",
                    outcome=event.outcome,
                ).inc()
                if event.stage:
                    registry.counter(
                        "engine_stage_cells",
                        help="Cells finished per stage, by outcome.",
                        stage=event.stage,
                        outcome=event.outcome,
                    ).inc()
                registry.gauge(
                    "engine_cells_done",
                    help="Cells finished across all sweeps so far.",
                ).add(1.0)
                if event.outcome != "ran":
                    registry.gauge(
                        "engine_cells_cached",
                        help="Cells satisfied without executing "
                             "(cache hits + resumed replays).",
                    ).add(1.0)
                else:
                    self._ran_done += 1
                    registry.gauge(
                        "engine_queue_depth",
                        help="Cells handed to the work queue but not "
                             "yet finished.",
                    ).set(float(max(0, self._scheduled - self._ran_done)))
                    registry.histogram(
                        "engine_cell_seconds",
                        bounds=CELL_SECONDS_BUCKETS,
                        help="Wall-clock seconds per executed cell.",
                    ).observe(event.seconds)
                    registry.counter(
                        "engine_cell_utime_seconds",
                        help="Cumulative user-mode CPU seconds across "
                             "executed cells.",
                    ).inc(event.utime_s)
                    registry.counter(
                        "engine_cell_stime_seconds",
                        help="Cumulative kernel-mode CPU seconds "
                             "across executed cells.",
                    ).inc(event.stime_s)
                    rss = registry.gauge(
                        "engine_cell_max_rss_kb",
                        help="Largest peak RSS reported by any "
                             "executed cell (KiB).",
                    )
                    if event.max_rss_kb > rss.value:
                        rss.set(event.max_rss_kb)
            elif isinstance(event, CheckpointWritten):
                registry.gauge(
                    "engine_checkpointed",
                    help="Cells durably journalled to the run "
                         "directory.",
                ).set(float(event.completed))
                fold_lag = registry.gauge(
                    "engine_fold_lag",
                    help="Finished cells not yet journalled.",
                )
                done = registry.gauge("engine_cells_done").value
                fold_lag.set(float(max(0.0, done - event.completed)))
            elif isinstance(event, Interrupted):
                registry.counter(
                    "engine_interrupts",
                    help="Sweeps stopped early, by reason.",
                    reason=event.reason,
                ).inc()
            elif isinstance(event, Finished):
                registry.counter(
                    "engine_sweeps",
                    help="Sweeps folded to completion.",
                ).inc()

    # ------------------------------------------------------------------
    def refresh_worker_gauges(self) -> None:
        """Scrape-time refresh of the worker-liveness gauges."""
        if self.health is None:
            return
        snapshot = self.health.snapshot()
        # The scrape stamp feeds only the last-beat-age gauge — an ops
        # reading about the host, never an input to any engine result
        # (pinned by tests/test_ops_plane.py::
        # test_serve_preserves_fold_bytes).
        now = time.time()  # simlint: disable=SIM001,SIM008
        with self._lock:
            registry = self.registry
            registry.gauge(
                "engine_workers_live",
                help="Pool workers currently believed alive.",
            ).set(float(snapshot["live"]))
            registry.gauge(
                "engine_workers_dead",
                help="Pool workers that exited abnormally.",
            ).set(float(snapshot["dead"]))
            newest: Optional[float] = None
            for entry in snapshot["workers"].values():
                beat = entry.get("last_beat_unix")
                if beat is not None and (newest is None or beat > newest):
                    newest = beat
            registry.gauge(
                "engine_worker_last_beat_age_seconds",
                help="Seconds since the most recent worker heartbeat "
                     "(-1 before the first beat).",
            ).set(max(0.0, now - newest) if newest is not None else -1.0)

    def render(self) -> str:
        """The Prometheus exposition text for a /metrics scrape."""
        self.refresh_worker_gauges()
        with self._lock:
            return prometheus_text(self.registry)


__all__ = [
    "CELL_SECONDS_BUCKETS",
    "EngineMetricsSink",
    "PHASE_INDEX",
]
