"""The flight recorder: last-N events, dumped when a run dies.

A crashed or interrupted sweep's most valuable evidence is the last
few hundred events before it stopped — exactly what scrolled off the
terminal.  :class:`FlightRecorder` is an event sink keeping a bounded
in-memory :class:`~repro.ops.stream.EventRing`; on trouble it writes
the ring to ``<run-dir>/flightrec-<stamp>-<n>.jsonl`` (one event JSON
per line, same shape as ``events.jsonl``) plus a ``.meta.json``
sidecar carrying the dump reason, the /status document and a metrics
snapshot at dump time.

Dump triggers:

* an ``Interrupted`` event in the stream (Ctrl-C, worker crash) —
  automatic, from inside the sink;
* ``SIGTERM`` — dump, then re-deliver to the previous handler so the
  process still dies;
* ``SIGUSR1`` — dump and keep running (an operator's "what is it
  doing right now?" poke);
* an unhandled exception, via the CLI wrappers calling :meth:`dump`.

Dumps validate with ``python -m repro.exec.events --ring``: the ring
may have evicted a sweep's head, which ring mode waives for the first
segment only (``tests/test_exec_crash_resume.py`` asserts a SIGKILLed
parent's surviving dump passes).

Wall-clock note: dump filenames and the ``dumped_unix`` stamp are
host-side provenance about when the artifact was written; each read
carries a simlint waiver naming its pinning test.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.exec.events import Event, Interrupted
from repro.ops.stream import DEFAULT_RING_CAPACITY, EventRing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ops.status import RunStatus
    from repro.telemetry.registry import TelemetryRegistry

#: bumped when the .meta.json sidecar shape changes incompatibly
FLIGHTREC_SCHEMA = 1


class FlightRecorder:
    """Bounded event ring + dump-on-trouble, as one engine sink."""

    def __init__(
        self,
        dir_provider: Callable[[], Path],
        capacity: int = DEFAULT_RING_CAPACITY,
        status: Optional["RunStatus"] = None,
        registry: Optional["TelemetryRegistry"] = None,
    ) -> None:
        #: where dumps land, resolved *at dump time* — the run
        #: directory usually attaches after the recorder is installed
        self.dir_provider = dir_provider
        self.ring = EventRing(capacity)
        self.status = status
        self.registry = registry
        self.dumps: list[Path] = []
        self._lock = threading.Lock()
        self._dump_seq = 0
        self._prev_sigterm: Any = None

    # ------------------------------------------------------------------
    def __call__(self, event: Event) -> None:
        self.ring.push(event.to_json())
        if isinstance(event, Interrupted):
            self.dump(f"interrupted:{event.reason}")

    # ------------------------------------------------------------------
    def dump(self, reason: str) -> Optional[Path]:
        """Write the ring (and metadata) to the run directory.

        Returns the dump path, or ``None`` when the ring is empty or
        the target directory cannot be written (a recorder must never
        turn a dying run's exit path into a new crash).
        """
        with self._lock:
            events = self.ring.snapshot()
            if not events:
                return None
            try:
                directory = self.dir_provider()
            # a dump path provider failing while the process is already
            # dying must not mask the original failure; no simulation
            # invariant can be in flight in this frame
            except Exception:  # simlint: disable=SIM006
                return None  # pragma: no cover - provider misbehaved
            # The filename stamp records when the host dumped —
            # operational provenance, never an engine input (pinned by
            # tests/test_ops_plane.py::test_serve_preserves_fold_bytes).
            stamp = int(time.time() * 1000)  # simlint: disable=SIM001,SIM008
            name = f"flightrec-{stamp}-{self._dump_seq:02d}"
            self._dump_seq += 1
            path = Path(directory) / f"{name}.jsonl"
            meta: dict[str, Any] = {
                "schema": FLIGHTREC_SCHEMA,
                "reason": reason,
                "events": len(events),
                "ring_dropped": self.ring.dropped,
                "dumped_unix": stamp / 1000.0,
            }
            if self.status is not None:
                meta["status"] = self.status.document()
            if self.registry is not None:
                meta["metrics"] = self.registry.summary()
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(path, "w", encoding="utf-8") as handle:
                    for doc in events:
                        handle.write(
                            json.dumps(doc, separators=(", ", ": "))
                        )
                        handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                meta_path = path.with_suffix(".meta.json")
                meta_path.write_text(
                    json.dumps(meta, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
            except OSError:  # pragma: no cover - disk gone mid-dump
                return None
            self.dumps.append(path)
            return path

    # ------------------------------------------------------------------
    def install_signals(self) -> bool:
        """Dump on SIGTERM (then die) and SIGUSR1 (then continue).

        Returns ``False`` when handlers cannot be installed (not the
        main thread) — the recorder still dumps on ``Interrupted``
        events and explicit :meth:`dump` calls.
        """

        def on_sigterm(signum: int, frame: Any) -> None:
            self.dump("sigterm")
            # restore whoever was handling SIGTERM and re-deliver, so
            # the process still terminates with default semantics
            previous = self._prev_sigterm
            signal.signal(
                signal.SIGTERM,
                previous if callable(previous) or previous in (
                    signal.SIG_DFL, signal.SIG_IGN
                ) else signal.SIG_DFL,
            )
            # re-delivering to our own pid is signal plumbing on the
            # exit path, not an engine input (pinned by
            # tests/test_exec_crash_resume.py's byte-identity suite)
            os.kill(os.getpid(), signal.SIGTERM)  # simlint: disable=SIM008

        def on_sigusr1(signum: int, frame: Any) -> None:
            self.dump("sigusr1")

        try:
            self._prev_sigterm = signal.signal(signal.SIGTERM, on_sigterm)
            signal.signal(signal.SIGUSR1, on_sigusr1)
        except ValueError:  # pragma: no cover - non-main thread
            return False
        return True


__all__ = [
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
]
