"""``repro.ops`` — the read-only observation plane over the engine.

Everything a running (or dead) sweep exposes to an operator lives
here, strictly *above* :mod:`repro.exec` in the layering — the engine
lazy-imports only :mod:`repro.ops.status`, and nothing in this package
steers execution:

* :mod:`repro.ops.server` — the opt-in stdlib HTTP plane
  (``/metrics``, ``/status``, ``/events``) attached with
  ``--serve [host:]port`` or ``REPRO_SERVE``;
* :mod:`repro.ops.stream` — the fan-out sink, bounded event ring and
  drop-on-full subscriptions behind ``/events``;
* :mod:`repro.ops.status` — the live status fold, ``/status`` and
  ``<run-dir>/status.json``;
* :mod:`repro.ops.metrics` — engine metrics folded into the existing
  telemetry registry and Prometheus exposition;
* :mod:`repro.ops.flightrec` — the last-N-events flight recorder
  dumped on interrupts, SIGTERM/SIGUSR1 and unhandled exceptions;
* :mod:`repro.ops.profiles` — per-cell resource profiles and the
  slowest-cells tables;
* :mod:`repro.ops.cli` — ``python -m repro.ops attach RUN_DIR``.

The whole plane is an observer: with or without ``--serve``, a sweep
folds to byte-identical results
(``tests/test_ops_plane.py::test_serve_preserves_fold_bytes``).
"""

from repro.ops.flightrec import FLIGHTREC_SCHEMA, FlightRecorder
from repro.ops.metrics import EngineMetricsSink
from repro.ops.profiles import read_journal, render_slowest, slowest_cells
from repro.ops.server import (
    DEFAULT_HOST,
    ENV_SERVE,
    OpsPlane,
    OpsServer,
    attach_ops,
    parse_serve_spec,
    resolve_serve_spec,
)
from repro.ops.status import (
    STATUS_SCHEMA,
    RunStatus,
    StatusWriter,
    read_status,
)
from repro.ops.stream import EventRing, FanOutSink, Subscription

__all__ = [
    "DEFAULT_HOST",
    "ENV_SERVE",
    "EngineMetricsSink",
    "EventRing",
    "FLIGHTREC_SCHEMA",
    "FanOutSink",
    "FlightRecorder",
    "OpsPlane",
    "OpsServer",
    "RunStatus",
    "STATUS_SCHEMA",
    "StatusWriter",
    "Subscription",
    "attach_ops",
    "parse_serve_spec",
    "read_journal",
    "read_status",
    "render_slowest",
    "resolve_serve_spec",
    "slowest_cells",
]
