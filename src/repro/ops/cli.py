"""``python -m repro.ops attach RUN_DIR`` — inspect a run from disk.

The offline counterpart of the live HTTP endpoints: given a run
directory (or a run root holding exactly one run), print its manifest,
the last written ``status.json``, journal progress, the slowest-cells
table, event-log validity and any flight-recorder dumps.  Everything
read here is an artifact another component already wrote — this tool
never mutates a run directory.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.exec.events import read_event_log, validate_events
from repro.ops.profiles import read_journal, render_slowest
from repro.ops.status import read_status


def resolve_run_dir(path: Path) -> Optional[Path]:
    """``path`` itself, or its single run child, if it holds a run."""
    if (path / "manifest.json").exists():
        return path
    if path.is_dir():
        children = sorted(
            child
            for child in path.iterdir()
            if (child / "manifest.json").exists()
        )
        if len(children) == 1:
            return children[0]
    return None


def _describe(run_dir: Path, top: int) -> list[str]:
    lines: list[str] = []
    manifest = json.loads(
        (run_dir / "manifest.json").read_text(encoding="utf-8")
    )
    lines.append(f"run {manifest.get('run_id')} at {run_dir}")
    lines.append(
        f"  salt {manifest.get('salt')}  plan {manifest.get('plan')}"
    )

    status = read_status(run_dir / "status.json")
    if status is not None:
        cells = status.get("cells", {})
        lines.append(
            "  status: phase={phase} done={done}/{expected} "
            "ran={ran} hit={hit} resumed={resumed} "
            "checkpointed={checkpointed}".format(
                phase=status.get("phase") or "?",
                done=cells.get("done", 0),
                expected=cells.get("expected", 0),
                ran=cells.get("ran", 0),
                hit=cells.get("hit", 0),
                resumed=cells.get("resumed", 0),
                checkpointed=cells.get("checkpointed", 0),
            )
        )
        if status.get("interrupted"):
            lines.append(f"  interrupted: {status['interrupted']}")
    else:
        lines.append("  status: no status.json")

    journal = read_journal(run_dir / "journal.jsonl")
    lines.append(f"  journal: {len(journal)} cell(s) checkpointed")
    if journal:
        lines.append("")
        lines.append(render_slowest(journal, k=top))
        lines.append("")

    events_path = run_dir / "events.jsonl"
    if events_path.exists():
        records = read_event_log(events_path)
        problems = validate_events(records, partial=True)
        verdict = "valid" if not problems else (
            f"INVALID ({len(problems)} problem(s))"
        )
        lines.append(f"  events: {len(records)} record(s), {verdict}")
        for problem in problems[:5]:
            lines.append(f"    {problem}")
    else:
        lines.append("  events: no events.jsonl")

    dumps = sorted(run_dir.glob("flightrec-*.jsonl"))
    if dumps:
        lines.append(f"  flight recorder: {len(dumps)} dump(s)")
        for dump in dumps:
            meta_path = dump.with_suffix(".meta.json")
            reason = "?"
            if meta_path.exists():
                try:
                    meta = json.loads(
                        meta_path.read_text(encoding="utf-8")
                    )
                    reason = str(meta.get("reason", "?"))
                except json.JSONDecodeError:
                    reason = "unreadable meta"
            records = read_event_log(dump)
            problems = validate_events(records, partial=True, ring=True)
            verdict = "valid" if not problems else "INVALID"
            lines.append(
                f"    {dump.name}: {len(records)} event(s), "
                f"reason={reason}, {verdict}"
            )
    else:
        lines.append("  flight recorder: no dumps")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ops",
        description="offline inspection of engine run directories",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    attach = sub.add_parser(
        "attach", help="summarise a run directory from its artifacts"
    )
    attach.add_argument("run_dir", type=Path)
    attach.add_argument(
        "--top", type=int, default=10,
        help="rows in the slowest-cells table (default 10)",
    )
    args = parser.parse_args(argv)

    run_dir = resolve_run_dir(args.run_dir)
    if run_dir is None:
        print(
            f"error: {args.run_dir} is not a run directory (no "
            "manifest.json, and not a root with exactly one run)"
        )
        return 2
    for line in _describe(run_dir, top=args.top):
        print(line)
    return 0


__all__ = ["main", "resolve_run_dir"]
