"""Per-cell resource profiles: the slowest-cells tables.

The checkpoint journal (and the ``CellFinished`` stream) now carries a
resource profile per executed cell — wall seconds, user/system CPU
seconds, peak RSS.  This module turns a journal into the "where did
the time go" table experiment reports print and ``python -m repro.ops
attach`` shows for any run directory.

Pure data massaging: everything here reads records something else
already wrote; no clocks, no environment.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence, Union


def read_journal(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Cell records from a ``journal.jsonl`` (empty if absent)."""
    from repro.exec.checkpoint import CheckpointJournal

    return [
        record
        for record in CheckpointJournal(path).load()
        if record.get("kind") == "cell"
    ]


def slowest_cells(
    records: Sequence[Mapping[str, Any]], k: int = 10
) -> list[dict[str, Any]]:
    """The top-``k`` cell records by wall seconds (stable tie order)."""
    cells = [
        dict(record)
        for record in records
        if record.get("kind", "cell") == "cell"
    ]
    cells.sort(
        key=lambda r: (-float(r.get("seconds", 0.0)), str(r.get("label")))
    )
    return cells[:k]


def render_slowest(
    records: Sequence[Mapping[str, Any]],
    k: int = 10,
    title: str = "slowest cells",
) -> str:
    """A fixed-width table of the top-``k`` slowest cells."""
    top = slowest_cells(records, k=k)
    if not top:
        return f"{title}: no executed cells recorded"
    lines = [
        f"{title} (top {len(top)} of {len(records)}):",
        f"  {'seconds':>9}  {'utime':>8}  {'stime':>8}  "
        f"{'rss_kb':>9}  {'stage':<10}  label",
    ]
    for record in top:
        stage = str(record.get("stage", "")) or "-"
        lines.append(
            f"  {float(record.get('seconds', 0.0)):>9.3f}"
            f"  {float(record.get('utime_s', 0.0)):>8.3f}"
            f"  {float(record.get('stime_s', 0.0)):>8.3f}"
            f"  {float(record.get('max_rss_kb', 0.0)):>9.0f}"
            f"  {stage:<10}"
            f"  {record.get('label', '?')}"
        )
    return "\n".join(lines)


__all__ = [
    "read_journal",
    "render_slowest",
    "slowest_cells",
]
