"""The in-process HTTP ops plane: /metrics, /status, /events.

Opt-in, stdlib-only observation of a running
:class:`~repro.exec.engine.Engine`.  ``--serve [host:]port`` (or
``REPRO_SERVE``) starts a :class:`ThreadingHTTPServer` on a daemon
thread next to the run:

* ``GET /metrics`` — Prometheus text 0.0.4 from the
  :class:`~repro.ops.metrics.EngineMetricsSink` fold;
* ``GET /status`` — the :class:`~repro.ops.status.RunStatus` JSON
  document (same content as ``<run-dir>/status.json``);
* ``GET /events`` — a live chunked JSONL tail: ring replay first,
  then events as they happen (``?replay=N`` bounds the replay,
  ``?limit=N`` closes the stream after N lines);
* ``GET /healthz`` and ``GET /`` — liveness and a plain-text index.

Read-only by construction: handlers serve snapshots of folds the
:class:`OpsPlane` already maintains; nothing routes back into the
engine, and a slow or dead client costs the engine nothing (the
subscription drops, the handler thread dies).  The serial ≡ parallel ≡
cached fold equivalence holds verbatim with the server on — pinned by
``tests/test_ops_plane.py::test_serve_preserves_fold_bytes``.

Wall-clock/env note: the ``REPRO_SERVE`` read and the server's socket
machinery are host-side plumbing; the single environment read carries
a simlint waiver naming that pinning test.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.ops.flightrec import FlightRecorder
from repro.ops.metrics import EngineMetricsSink
from repro.ops.stream import EventRing, FanOutSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.engine import Engine

ENV_SERVE = "REPRO_SERVE"

#: host used when ``--serve PORT`` omits one — never a public bind by
#: accident
DEFAULT_HOST = "127.0.0.1"


def parse_serve_spec(spec: str) -> tuple[str, int]:
    """``"[host:]port"`` → ``(host, port)``; port 0 asks the OS."""
    text = spec.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = DEFAULT_HOST, text
    if not host:
        host = DEFAULT_HOST
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"serve spec must be [host:]port, got {spec!r}"
        ) from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"serve port out of range: {port}")
    return host, port


def resolve_serve_spec(
    spec: Optional[str] = None,
) -> Optional[tuple[str, int]]:
    """Explicit ``--serve`` argument > ``REPRO_SERVE`` > no server."""
    if spec is not None:
        return parse_serve_spec(spec)
    # Whether an observation endpoint exists is operational plumbing;
    # it cannot change a result byte (pinned by
    # tests/test_ops_plane.py::test_serve_preserves_fold_bytes).
    env = os.environ.get(ENV_SERVE, "").strip()  # simlint: disable=SIM008
    return parse_serve_spec(env) if env else None


class OpsHTTPServer(ThreadingHTTPServer):
    """Threading server with a back-pointer to its ops plane."""

    daemon_threads = True
    allow_reuse_address = True

    plane: "OpsPlane"


class _OpsHandler(BaseHTTPRequestHandler):
    """Request routing for the ops endpoints (GET-only)."""

    server: OpsHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter — the run owns stderr."""

    def _send_text(
        self, body: str, content_type: str, code: int = 200
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send_text(
                    self.server.plane.metrics.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/status":
                doc = self.server.plane.status.document()
                self._send_text(
                    json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    "application/json",
                )
            elif route == "/events":
                self._stream_events(parse_qs(parsed.query))
            elif route == "/healthz":
                self._send_text("ok\n", "text/plain; charset=utf-8")
            elif route == "/":
                self._send_text(
                    "repro ops plane\n"
                    "  /metrics  Prometheus exposition\n"
                    "  /status   run summary (JSON)\n"
                    "  /events   live JSONL tail "
                    "(?replay=N&limit=N)\n"
                    "  /healthz  liveness\n",
                    "text/plain; charset=utf-8",
                )
            else:
                self._send_text(
                    "not found\n", "text/plain; charset=utf-8", code=404
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    # ------------------------------------------------------------------
    def _stream_events(self, query: dict[str, list[str]]) -> None:
        """Chunked JSONL: ring replay, then live events until limit."""

        def int_param(name: str, default: Optional[int]) -> Optional[int]:
            values = query.get(name)
            if not values:
                return default
            try:
                return max(0, int(values[0]))
            except ValueError:
                return default

        limit = int_param("limit", None)
        replay = int_param("replay", None)
        plane = self.server.plane
        # Subscribe *before* snapshotting the ring: an event arriving in
        # between lands in both, and the seq guard below deduplicates —
        # the opposite order would silently lose it instead.
        subscription = plane.fanout.subscribe()
        try:
            self.send_response(200)
            self.send_header(
                "Content-Type", "application/jsonl; charset=utf-8"
            )
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            sent = 0
            last_seq = -1
            backlog = plane.ring.snapshot()
            if replay is not None:
                backlog = backlog[len(backlog) - min(replay, len(backlog)):]
            for doc in backlog:
                if limit is not None and sent >= limit:
                    break
                self._write_chunk(doc)
                sent += 1
                seq = doc.get("seq")
                if isinstance(seq, int):
                    last_seq = max(last_seq, seq)
            while limit is None or sent < limit:
                if plane.closing.is_set() or subscription.closed:
                    break
                doc = subscription.get(timeout=0.5)
                if doc is None:
                    continue
                seq = doc.get("seq")
                # engine seq resets to 0 on a new lifetime; only skip
                # genuine replay duplicates from the subscribe window
                if isinstance(seq, int) and 0 < seq <= last_seq:
                    continue
                self._write_chunk(doc)
                sent += 1
                if isinstance(seq, int):
                    last_seq = seq
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # slow/vanished reader: drop it, never block the run
        finally:
            plane.fanout.unsubscribe(subscription)

    def _write_chunk(self, doc: dict[str, Any]) -> None:
        line = (
            json.dumps(doc, separators=(", ", ": ")) + "\n"
        ).encode("utf-8")
        self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
        self.wfile.write(line)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class OpsServer:
    """The HTTP listener on a daemon thread; ``port=0`` picks a port."""

    def __init__(self, plane: "OpsPlane", host: str, port: int) -> None:
        self.plane = plane
        self._server = OpsHTTPServer((host, port), _OpsHandler)
        self._server.plane = plane
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-ops-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


class OpsPlane:
    """Everything observing one engine: folds, ring, recorder, server.

    Construction wires one :class:`~repro.ops.stream.FanOutSink` into
    the engine; the HTTP server is optional (:meth:`serve`).  A plane
    without a server still earns its keep: the flight recorder and
    status.json work headless.
    """

    def __init__(
        self,
        engine: "Engine",
        ring_capacity: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.status = engine.status
        self.metrics = EngineMetricsSink(health=engine.worker_health)
        kwargs = {} if ring_capacity is None else {
            "capacity": ring_capacity
        }
        self.ring = EventRing(**kwargs)
        self.recorder = FlightRecorder(
            dir_provider=self._dump_dir,
            status=self.status,
            registry=self.metrics.registry,
        )
        self.fanout = FanOutSink(
            wrapped=[self.metrics, self.recorder], ring=self.ring
        )
        engine.add_sink(self.fanout)
        self.server: Optional[OpsServer] = None
        self.closing = threading.Event()

    def _dump_dir(self) -> Path:
        run_dir = self.engine.run_dir
        return run_dir.path if run_dir is not None else Path(".")

    # ------------------------------------------------------------------
    def serve(self, spec: tuple[str, int]) -> OpsServer:
        host, port = spec
        self.server = OpsServer(self, host, port)
        return self.server

    def close(self) -> None:
        self.closing.set()
        if self.server is not None:
            self.server.close()
            self.server = None
        self.fanout.close()


def attach_ops(
    engine: "Engine",
    spec: Optional[tuple[str, int]] = None,
    signals: bool = True,
) -> OpsPlane:
    """Wire the full ops plane onto an engine; serve when asked.

    ``signals=True`` (CLI entry points) installs the flight recorder's
    SIGTERM/SIGUSR1 dump handlers; library/test callers pass ``False``
    to leave process signal state alone.
    """
    plane = OpsPlane(engine)
    if signals:
        plane.recorder.install_signals()
    if spec is not None:
        plane.serve(spec)
    return plane


__all__ = [
    "DEFAULT_HOST",
    "ENV_SERVE",
    "OpsHTTPServer",
    "OpsPlane",
    "OpsServer",
    "attach_ops",
    "parse_serve_spec",
    "resolve_serve_spec",
]
