"""Event fan-out: a ring buffer plus bounded live subscriptions.

The ops plane observes a running :class:`~repro.exec.engine.Engine`
through one extra sink — :class:`FanOutSink` — which does three things
per event, all O(1):

* forward to the sinks it wraps (metrics fold, flight recorder);
* push the event's JSON form into an :class:`EventRing` (the bounded
  memory of "what just happened" that ``/events`` replays and the
  flight recorder dumps);
* offer the JSON form to every live :class:`Subscription` (an
  ``/events`` streaming client).

Back-pressure contract (DESIGN.md §16): a subscription is a *bounded*
``queue.Queue``; when a slow reader falls behind, :meth:`Subscription.
offer` drops the event and counts it rather than blocking the engine.
The engine's hot path never waits on a network peer — observation can
lose events, execution cannot lose time.

Nothing here reads a clock or the environment; timing enters only via
the event payloads the engine already produced, so the ops plane stays
out of the determinism argument entirely (pinned by
``tests/test_ops_plane.py::test_serve_preserves_fold_bytes``).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import Any, Optional, Sequence

from repro.exec.events import Event, EventSink

#: events the ring remembers — enough to reconstruct the last few
#: sweeps of a typical run while bounding a week-long fleet campaign
#: to a few hundred KB of memory
DEFAULT_RING_CAPACITY = 512

#: per-subscriber queue depth before events are dropped, not queued
DEFAULT_SUBSCRIBER_DEPTH = 256


class EventRing:
    """A bounded, thread-safe ring of event JSON objects."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.pushed = 0

    def push(self, doc: dict[str, Any]) -> None:
        with self._lock:
            self._items.append(doc)
            self.pushed += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._items)

    @property
    def dropped(self) -> int:
        """Events evicted off the head since the ring was created."""
        with self._lock:
            return max(0, self.pushed - len(self._items))

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class Subscription:
    """One live ``/events`` reader: a bounded queue, drop-on-full."""

    def __init__(self, depth: int = DEFAULT_SUBSCRIBER_DEPTH) -> None:
        self._queue: queue.Queue[Optional[dict[str, Any]]] = queue.Queue(
            maxsize=depth
        )
        self.dropped = 0
        self.closed = False

    def offer(self, doc: dict[str, Any]) -> None:
        """Enqueue without blocking; a full queue drops the event."""
        if self.closed:
            return
        try:
            self._queue.put_nowait(doc)
        except queue.Full:
            self.dropped += 1

    def get(self, timeout: float = 0.5) -> Optional[dict[str, Any]]:
        """Next event, or ``None`` after ``timeout`` (or on close)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self.closed = True
        try:
            # wake any blocked reader with the close sentinel
            self._queue.put_nowait(None)
        except queue.Full:
            pass


class FanOutSink:
    """One engine sink feeding wrapped sinks, the ring and subscribers.

    Serialisation (``event.to_json()``) happens once per event; the
    wrapped sinks still receive the typed event, so existing sinks
    (metrics fold, flight recorder) plug in unchanged.
    """

    def __init__(
        self,
        wrapped: Sequence[EventSink] = (),
        ring: Optional[EventRing] = None,
    ) -> None:
        self.wrapped = list(wrapped)
        self.ring = ring
        self._lock = threading.Lock()
        self._subscribers: list[Subscription] = []

    def __call__(self, event: Event) -> None:
        for sink in self.wrapped:
            sink(event)
        doc = event.to_json()
        if self.ring is not None:
            self.ring.push(doc)
        with self._lock:
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            subscription.offer(doc)

    # ------------------------------------------------------------------
    def subscribe(
        self, depth: int = DEFAULT_SUBSCRIBER_DEPTH
    ) -> Subscription:
        subscription = Subscription(depth=depth)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.close()
        with self._lock:
            if subscription in self._subscribers:
                self._subscribers.remove(subscription)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def close(self) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for subscription in subscribers:
            subscription.close()
        for sink in self.wrapped:
            closer = getattr(sink, "close", None)
            if callable(closer):
                closer()


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_SUBSCRIBER_DEPTH",
    "EventRing",
    "FanOutSink",
    "Subscription",
]
