"""Decision-space coverage: which scheduler behaviours has a corpus hit?

Branch coverage over *scheduler decisions* rather than code lines: the
telemetry audit trail already records every vTRS verdict, every
Algorithm 1/2 clustering run with its spills, and every pool-ledger
mutation, so coverage is derived from the audit of each run — no
instrumentation hooks in the scheduler itself.

Keys are namespaced strings counted per run:

* ``event:<kind>`` — churn events actually applied;
* ``mode:<m>`` — workload modes that existed during the run;
* ``policy:<name>`` — the policy driven;
* ``transition:<old>-><new>`` — vTRS type flips (``∅`` = first verdict);
* ``alg1:*`` / ``alg2:*`` — Algorithm 1/2 decision branches
  (cold-start skip, trashing census, plan stability, cluster counts,
  spills, per-cluster quanta);
* ``ledger:<kind>`` — pool-change ledger entries.

The generator steers toward unvisited behaviour by weighting choices
with :meth:`CoverageMap.weight` (1 / (1 + hits)); the CI gate asserts
a floor on distinct ``alg`` branches so a corpus that stops exercising
the clustering fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fuzz.runner import FuzzOutcome

#: vTRS type names that feed Algorithm 1's trashing list
_TRASHING_TYPES = {"LLCO", "IOINT", "CONSPIN"}


class CoverageMap:
    """Counted set of visited decision-space keys."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.runs = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def hit(self, key: str, count: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + count

    def observe_outcome(self, outcome: "FuzzOutcome") -> None:
        """Fold one run's decision surface into the map."""
        self.runs += 1
        self.hit(f"policy:{outcome.scenario.policy}")
        for _, mode in outcome.scenario.base:
            self.hit(f"mode:{mode}")
        for applied in outcome.engine.applied:
            self.hit(f"event:{applied.event.kind}")
            mode = getattr(applied.event, "mode", None)
            if mode is not None:
                self.hit(f"mode:{mode}")
        audit = outcome.telemetry.audit
        for flip in audit.flips:
            old = flip.old_type if flip.old_type is not None else "∅"
            self.hit(f"transition:{old}->{flip.new_type}")
        for decision in audit.decisions:
            if decision.skipped:
                self.hit("alg1:cold_start_skip")
                continue
            types = {name for _, name in decision.input_types}
            if types & _TRASHING_TYPES:
                self.hit("alg1:trashing_present")
            else:
                self.hit("alg1:no_trashing")
            self.hit(
                "alg1:plan_changed" if decision.changed
                else "alg1:plan_stable"
            )
            self.hit(
                "alg2:multi_cluster" if len(decision.pools) > 1
                else "alg2:single_cluster"
            )
            self.hit("alg2:spill" if decision.spills else "alg2:no_spill")
            for _, quantum_ns, _, _ in decision.pools:
                self.hit(f"alg2:quantum:{quantum_ns // 1_000_000}ms")
        for change in audit.ledger:
            self.hit(f"ledger:{change.kind}")

    # ------------------------------------------------------------------
    # steering and gating
    # ------------------------------------------------------------------
    def weight(self, key: str) -> float:
        """Generation weight: unvisited keys are most attractive."""
        return 1.0 / (1.0 + self.counts.get(key, 0))

    def novelty(self, keys: Iterable[str]) -> int:
        """How many of ``keys`` this map has never seen."""
        return sum(1 for key in keys if key not in self.counts)

    def distinct(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self.counts if k.startswith(prefix))

    def merge(self, other: "CoverageMap") -> None:
        self.runs += other.runs
        for key, count in other.counts.items():
            self.hit(key, count)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, object]:
        """The JSON coverage-report schema (DESIGN.md §12)."""
        groups: dict[str, dict[str, int]] = {}
        for key, count in sorted(self.counts.items()):
            group, _, rest = key.partition(":")
            groups.setdefault(group, {})[rest] = count
        return {
            "runs": self.runs,
            "distinct_keys": len(self.counts),
            "distinct_alg_branches": len(
                self.distinct("alg1:") + self.distinct("alg2:")
            ),
            "groups": groups,
        }

    def render(self) -> str:
        report = self.report()
        lines = [
            f"coverage over {report['runs']} runs: "
            f"{report['distinct_keys']} distinct keys, "
            f"{report['distinct_alg_branches']} Algorithm 1/2 branches",
        ]
        groups = report["groups"]
        assert isinstance(groups, dict)
        for group in sorted(groups):
            lines.append(f"  {group}:")
            for rest, count in sorted(groups[group].items()):
                lines.append(f"    {rest:<40} {count}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {"runs": self.runs, "counts": dict(sorted(self.counts.items()))}

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "CoverageMap":
        cov = cls()
        cov.runs = int(data.get("runs", 0))  # type: ignore[arg-type]
        counts = data.get("counts", {})
        assert isinstance(counts, dict)
        cov.counts = {str(k): int(v) for k, v in counts.items()}
        return cov

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n"
        )
        return target

    def __len__(self) -> int:
        return len(self.counts)


def outcome_keys(outcome: "FuzzOutcome") -> list[str]:
    """The keys one outcome would contribute (novelty ranking)."""
    probe = CoverageMap()
    probe.observe_outcome(outcome)
    return sorted(probe.counts)


__all__ = ["CoverageMap", "outcome_keys"]
