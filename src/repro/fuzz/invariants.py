"""The global-invariant library the fuzzer checks after every run.

Six invariants, each a pure function from a :class:`FuzzOutcome` to a
list of :class:`Violation` records:

* ``work_conservation`` — no idle pCPU with local backlog, total CPU
  time within wall-clock capacity, every established workload made
  forward progress;
* ``credit_fairness`` — every credit balance (including the periodic
  probe's per-period floor) stays inside the provable Credit band;
* ``no_lost_io`` — every event port satisfies the conservation law
  ``posted == consumed + backlog + discarded``;
* ``vtrs_rederivation`` — every recorded type flip re-derives from its
  own cursor-window snapshot, and per-vCPU flip chains are coherent;
* ``span_nesting`` — the telemetry span forest is well-formed: nothing
  left open, children contained by their parents;
* ``monotone_time`` — virtual time never runs backwards through the
  applied-event log or the audit trail.

**Checks must not mutate the outcome.**  :func:`check_invariants`
enforces that mechanically: it fingerprints the machine/telemetry
state before and after the checks and raises if anything moved.  That
is why no check calls ``machine.sync()`` (integration mutates credit
and run-time books — the runner syncs before handing the outcome
over), and why none touches ``registry.counter(...)`` or
``StatsCollector`` (the registry creates instruments on miss, and
``StatsCollector.collect`` syncs the machine): accessors with
side effects are not invariant material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.core.types import TYPE_PRECEDENCE, VCpuType
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fuzz.runner import FuzzOutcome
    from repro.hypervisor.vm import VM
    from repro.telemetry import TypeFlip

#: a workload only owes forward progress once it has been alive and
#: measured for at least this long (boots near the horizon owe nothing)
PROGRESS_GRACE_NS = 250 * MS

#: numeric slack on credit-band comparisons (integration rounding)
CREDIT_SLACK = 1.0


@dataclass(frozen=True)
class Violation:
    """One invariant breach, self-describing for the repro file."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


# ----------------------------------------------------------------------
# vTRS re-derivation (shared with tests/test_telemetry_audit.py)
# ----------------------------------------------------------------------
def rederive_flip(flip: "TypeFlip") -> str:
    """Recompute a vTRS verdict from the recorded window alone.

    Mirrors ``VTRS.cursor_averages`` + ``VTRS.type_of``: IO/ConSpin
    cursors average over every sample, the CPU-burn trio only over
    samples with compute evidence, ties break by TYPE_PRECEDENCE.
    """
    io_like = {VCpuType.IOINT.name, VCpuType.CONSPIN.name}
    count = len(flip.window)
    cpu_samples = [
        dict(cursors) for cursors, cpu_ok in flip.window if cpu_ok
    ]
    averages = {}
    for vtype in VCpuType:
        name = vtype.name
        if name in io_like:
            averages[name] = (
                sum(dict(cursors)[name] for cursors, _ in flip.window) / count
            )
        elif cpu_samples:
            averages[name] = (
                sum(sample[name] for sample in cpu_samples) / len(cpu_samples)
            )
        else:
            averages[name] = 0.0
    return max(
        TYPE_PRECEDENCE,
        key=lambda t: (averages[t.name], -TYPE_PRECEDENCE.index(t)),
    ).name


# ----------------------------------------------------------------------
# the six invariants
# ----------------------------------------------------------------------
def check_work_conservation(outcome: "FuzzOutcome") -> list[Violation]:
    machine = outcome.machine
    out: list[Violation] = []
    for ctx in machine.contexts.values():
        if not ctx.offline and ctx.current is None and len(ctx.runq):
            out.append(Violation(
                "work_conservation",
                f"{ctx.pcpu!r} idle with {len(ctx.runq)} runnable vCPUs "
                "queued on it",
            ))
    total_run = sum(v.run_ns_total for v in machine.all_vcpus)
    total_run += sum(
        v.run_ns_total for vm in machine.retired_vms for v in vm.vcpus
    )
    capacity = outcome.end_ns * len(machine.topology.pcpus)
    if total_run > capacity * (1 + 1e-6):
        out.append(Violation(
            "work_conservation",
            f"CPU time from nowhere: {total_run:.0f} ns run on "
            f"{capacity:.0f} ns of capacity",
        ))
    for name, workload in sorted(outcome.workloads.items()):
        vm = workload.vm
        start_ns = workload._window_start_ns
        if vm is None or not vm.alive or start_ns is None:
            continue
        if outcome.end_ns - start_ns < PROGRESS_GRACE_NS:
            continue
        gained = workload.units_done - workload._window_start_units
        if gained <= 0:
            out.append(Violation(
                "work_conservation",
                f"{name} ({workload.mode}) made no progress over "
                f"{(outcome.end_ns - start_ns) / MS:.0f} ms",
            ))
    return out


def _credit_band(outcome: "FuzzOutcome") -> tuple[float, float]:
    """The provable Credit balance band.

    After every accounting refill a balance is clipped to
    ``[-clip, +clip]``; between refills a vCPU can only *burn*, at most
    one full accounting period's worth (``accounting_ns * burn_rate``,
    since ``_on_accounting`` syncs before refilling).  So at any
    instant: ``-clip - period_burn <= credit <= +clip``.
    """
    params = outcome.machine.params
    period_burn = params.accounting_ns * params.burn_rate_per_ns
    return (-params.credit_clip - period_burn, params.credit_clip)


def check_credit_fairness(outcome: "FuzzOutcome") -> list[Violation]:
    low, high = _credit_band(outcome)
    out: list[Violation] = []
    for name, floor in sorted(outcome.credit_watermark.items()):
        if floor < low - CREDIT_SLACK:
            out.append(Violation(
                "credit_fairness",
                f"{name} sank to credit {floor:.1f}, below the "
                f"fairness floor {low:.1f} (starved of refills?)",
            ))
    for vm in _all_vms(outcome):
        for vcpu in vm.vcpus:
            if not low - CREDIT_SLACK <= vcpu.credit <= high + CREDIT_SLACK:
                out.append(Violation(
                    "credit_fairness",
                    f"{vcpu.name} finished at credit {vcpu.credit:.1f}, "
                    f"outside [{low:.1f}, {high:.1f}]",
                ))
    return out


def check_no_lost_io(outcome: "FuzzOutcome") -> list[Violation]:
    out: list[Violation] = []
    for vm in _all_vms(outcome):
        for port in vm.ports:
            books = port.consumed + port.backlog + port.discarded
            if port.posted != books:
                out.append(Violation(
                    "no_lost_io",
                    f"{port.name}: posted {port.posted} != consumed "
                    f"{port.consumed} + backlog {port.backlog} + "
                    f"discarded {port.discarded}",
                ))
            if min(
                port.posted, port.consumed, port.backlog,
                port.dropped, port.discarded,
            ) < 0:
                out.append(Violation(
                    "no_lost_io", f"{port.name}: negative IO counter"
                ))
            if port.closed and port.backlog:
                out.append(Violation(
                    "no_lost_io",
                    f"{port.name}: closed with {port.backlog} events "
                    "still pending for a dead VM",
                ))
    return out


def check_vtrs_rederivation(outcome: "FuzzOutcome") -> list[Violation]:
    audit = outcome.telemetry.audit
    out: list[Violation] = []
    for flip in audit.flips:
        derived = rederive_flip(flip)
        if derived != flip.new_type:
            out.append(Violation(
                "vtrs_rederivation",
                f"{flip.vcpu_name}@{flip.time_ns}: recorded window "
                f"re-derives to {derived}, not the recorded "
                f"{flip.new_type}",
            ))
        recorded = dict(flip.averages)
        if recorded and abs(
            recorded[flip.new_type] - max(recorded.values())
        ) > 1e-9:
            out.append(Violation(
                "vtrs_rederivation",
                f"{flip.vcpu_name}@{flip.time_ns}: winner's average "
                "is not the recorded maximum",
            ))
    for vcpu_id in sorted({flip.vcpu_id for flip in audit.flips}):
        chain = audit.flips_of(vcpu_id)
        if chain[0].old_type is not None:
            out.append(Violation(
                "vtrs_rederivation",
                f"vcpu {vcpu_id}: first flip claims a prior type "
                f"{chain[0].old_type}",
            ))
        for previous, current in zip(chain, chain[1:]):
            if current.old_type != previous.new_type:
                out.append(Violation(
                    "vtrs_rederivation",
                    f"vcpu {vcpu_id}: flip chain broken at "
                    f"t={current.time_ns} ({previous.new_type} -> "
                    f"recorded old {current.old_type})",
                ))
            if current.new_type == current.old_type:
                out.append(Violation(
                    "vtrs_rederivation",
                    f"vcpu {vcpu_id}: no-op flip at t={current.time_ns}",
                ))
    return out


def check_span_nesting(outcome: "FuzzOutcome") -> list[Violation]:
    tracer = outcome.telemetry.tracer
    out: list[Violation] = []
    for span in tracer.open_spans():
        out.append(Violation(
            "span_nesting",
            f"span {span.track}:{span.name} (begun {span.start_ns}) "
            "still open after run finalisation",
        ))
    by_id = {span.span_id: span for span in tracer.spans()}
    for span in tracer.spans():
        if span.end_ns is None or span.end_ns < span.start_ns:
            out.append(Violation(
                "span_nesting",
                f"span {span.track}:{span.name} has a malformed "
                f"interval [{span.start_ns}, {span.end_ns}]",
            ))
            continue
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue  # parent evicted by the retention cap
        if parent.track != span.track:
            out.append(Violation(
                "span_nesting",
                f"span {span.track}:{span.name} parented across tracks "
                f"to {parent.track}:{parent.name}",
            ))
        if span.start_ns < parent.start_ns or (
            parent.end_ns is not None and span.end_ns > parent.end_ns
        ):
            out.append(Violation(
                "span_nesting",
                f"span {span.track}:{span.name} "
                f"[{span.start_ns}, {span.end_ns}] escapes its parent "
                f"{parent.name} [{parent.start_ns}, {parent.end_ns}]",
            ))
    return out


def check_monotone_time(outcome: "FuzzOutcome") -> list[Violation]:
    out: list[Violation] = []
    scenario = outcome.scenario
    expected = scenario.warmup_ns + scenario.measure_ns
    if outcome.end_ns < expected:
        out.append(Violation(
            "monotone_time",
            f"run stopped at {outcome.end_ns} ns, before the scenario "
            f"horizon {expected} ns",
        ))
    last = 0
    for applied in outcome.engine.applied:
        if applied.time_ns < last:
            out.append(Violation(
                "monotone_time",
                f"applied event {applied.event.kind} fired at "
                f"{applied.time_ns}, after the log reached {last}",
            ))
        last = max(last, applied.time_ns)
        if applied.time_ns > outcome.end_ns:
            out.append(Violation(
                "monotone_time",
                f"applied event {applied.event.kind} fired at "
                f"{applied.time_ns}, beyond the horizon {outcome.end_ns}",
            ))
    audit = outcome.telemetry.audit
    for label, times in (
        ("flip", [f.time_ns for f in audit.flips]),
        ("decision", [d.time_ns for d in audit.decisions]),
        ("pool change", [c.time_ns for c in audit.ledger]),
    ):
        for earlier, later in zip(times, times[1:]):
            if later < earlier:
                out.append(Violation(
                    "monotone_time",
                    f"{label} log runs backwards: {earlier} -> {later}",
                ))
        if times and times[-1] > outcome.end_ns:
            out.append(Violation(
                "monotone_time",
                f"{label} recorded at {times[-1]}, beyond the horizon",
            ))
    indices = [d.decision_index for d in audit.decisions]
    if indices != sorted(set(indices)):
        out.append(Violation(
            "monotone_time", "decision indices not strictly increasing"
        ))
    return out


#: name -> check, in reporting order
INVARIANTS: dict[
    str, Callable[["FuzzOutcome"], list[Violation]]
] = {
    "work_conservation": check_work_conservation,
    "credit_fairness": check_credit_fairness,
    "no_lost_io": check_no_lost_io,
    "vtrs_rederivation": check_vtrs_rederivation,
    "span_nesting": check_span_nesting,
    "monotone_time": check_monotone_time,
}


# ----------------------------------------------------------------------
# read-only enforcement
# ----------------------------------------------------------------------
def _all_vms(outcome: "FuzzOutcome") -> Iterable["VM"]:
    machine = outcome.machine
    return list(machine.vms) + list(machine.retired_vms)


def state_fingerprint(outcome: "FuzzOutcome") -> tuple:
    """A digest of every piece of state the checks are allowed to read.

    Taken before and after :func:`check_invariants`; any drift means a
    check mutated the machine (a sync, a counter created on miss, a
    drained deque) and is itself a bug.
    """
    machine = outcome.machine
    vcpus = tuple(
        (
            vcpu.name, vcpu.credit, vcpu.run_ns_total, vcpu.state.name,
            vcpu.dispatch_count, vcpu.io_events, vcpu.migrations,
        )
        for vm in _all_vms(outcome)
        for vcpu in vm.vcpus
    )
    ports = tuple(
        (
            port.name, port.posted, port.consumed, port.backlog,
            port.dropped, port.discarded, port.closed,
        )
        for vm in _all_vms(outcome)
        for port in vm.ports
    )
    pools = tuple(
        (pool.name, pool.quantum_ns, len(pool.pcpus), len(pool.vcpus))
        for pool in machine.pools
    )
    telemetry = outcome.telemetry
    return (
        machine.sim.now,
        vcpus,
        ports,
        pools,
        machine.migrations_total,
        len(machine.vms),
        len(machine.retired_vms),
        len(telemetry.audit.flips),
        len(telemetry.audit.decisions),
        len(telemetry.audit.ledger),
        len(telemetry.tracer),
        telemetry.tracer.dropped,
        len(telemetry.tracer.open_spans()),
        len(telemetry.registry),
        tuple(outcome.credit_watermark.items()),
    )


def check_invariants(
    outcome: "FuzzOutcome",
    names: Optional[Sequence[str]] = None,
) -> list[Violation]:
    """Run the (selected) invariants; guarantees the outcome unchanged."""
    selected = list(INVARIANTS) if names is None else list(names)
    unknown = [n for n in selected if n not in INVARIANTS]
    if unknown:
        raise ValueError(f"unknown invariants: {unknown}")
    before = state_fingerprint(outcome)
    violations: list[Violation] = []
    for name in selected:
        violations.extend(INVARIANTS[name](outcome))
    after = state_fingerprint(outcome)
    if before != after:
        raise RuntimeError(
            "invariant checks mutated machine state — checks must be "
            "read-only"
        )
    return violations


__all__ = [
    "CREDIT_SLACK",
    "INVARIANTS",
    "PROGRESS_GRACE_NS",
    "Violation",
    "check_credit_fairness",
    "check_invariants",
    "check_monotone_time",
    "check_no_lost_io",
    "check_span_nesting",
    "check_vtrs_rederivation",
    "check_work_conservation",
    "rederive_flip",
    "state_fingerprint",
]
