"""The fuzzer's unit of reproduction: one fully-specified run.

A :class:`FuzzScenario` pins everything a churn run depends on — the
machine size, the policy, the base VM population, the churn timeline,
the windows and the RNG seed — as plain data with an exact JSON round
trip.  A failing scenario saved by the corpus runner replays bit-for-
bit with ``python -m repro.fuzz replay <case>.json``.

:func:`scenario_problems` is the static applicability check: it walks
the timeline with the same aliveness/offline bookkeeping the engine
applies at fire time, so an invalid candidate (shrinking removed the
boot a later phase change depends on, say) is rejected *before* a
simulated run is spent on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Union

from repro.dynamics.events import (
    MODES,
    ChurnEvent,
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    VmBoot,
    VmShutdown,
)
from repro.hypervisor.hostspec import HostSpec
from repro.sim.units import MS

#: every policy the fuzzer can drive a scenario under
POLICY_NAMES = ("xen", "microsliced", "vslicer", "vturbo", "aql")

_EVENT_CLASSES: dict[str, type[ChurnEvent]] = {
    cls.kind: cls
    for cls in (
        VmBoot, VmShutdown, PhaseChange, LoadSpike, PcpuOffline, PcpuOnline
    )
}


def event_to_json(event: ChurnEvent) -> dict[str, object]:
    """One event as a flat JSON object keyed by its ``kind``."""
    data: dict[str, object] = {"kind": event.kind}
    for f in fields(event):
        data[f.name] = getattr(event, f.name)
    return data


def event_from_json(data: dict[str, object]) -> ChurnEvent:
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _EVENT_CLASSES.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown churn event kind {kind!r}")
    return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FuzzScenario:
    """Everything one fuzzed run needs, as plain data."""

    seed: int
    pcpus: int
    policy: str
    #: the pre-churn population, ``(vm name, mode)`` per VM
    base: tuple[tuple[str, str], ...]
    timeline: ChurnTimeline
    clients: int = 4
    warmup_ns: int = 250 * MS
    tail_ns: int = 300 * MS
    #: name of a registered bug injection (repro.fuzz.inject), or None
    inject: Optional[str] = None
    label: str = ""

    @property
    def measure_ns(self) -> int:
        """Measured window: through the last event plus the tail."""
        return self.timeline.duration_ns + self.tail_ns

    @property
    def host_spec(self) -> HostSpec:
        """The machine shape this scenario runs on (shared recipe)."""
        return HostSpec(pcpus=self.pcpus)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "pcpus": self.pcpus,
            "policy": self.policy,
            "base": [list(member) for member in self.base],
            "events": [event_to_json(e) for e in self.timeline.events],
            "clients": self.clients,
            "warmup_ns": self.warmup_ns,
            "tail_ns": self.tail_ns,
            "inject": self.inject,
            "label": self.label,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "FuzzScenario":
        events = tuple(
            event_from_json(e)  # type: ignore[arg-type]
            for e in data.get("events", ())  # type: ignore[union-attr]
        )
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            pcpus=int(data["pcpus"]),  # type: ignore[arg-type]
            policy=str(data["policy"]),
            base=tuple(
                (str(name), str(mode))
                for name, mode in data["base"]  # type: ignore[union-attr]
            ),
            timeline=ChurnTimeline(events),
            clients=int(data.get("clients", 4)),  # type: ignore[arg-type]
            warmup_ns=int(data.get("warmup_ns", 250 * MS)),  # type: ignore[arg-type]
            tail_ns=int(data.get("tail_ns", 300 * MS)),  # type: ignore[arg-type]
            inject=(
                str(data["inject"]) if data.get("inject") is not None else None
            ),
            label=str(data.get("label", "")),
        )

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FuzzScenario":
        return cls.from_json(json.loads(Path(path).read_text()))


def scenario_problems(scenario: FuzzScenario) -> list[str]:
    """Every reason this scenario cannot run; empty list = valid.

    Mirrors the engine's fire-time requirements statically: boots need
    a never-used name (shut-down VMs stay registered), shutdowns and
    phase changes need a live VM, faults track the online core count,
    and at least one VM must survive the whole story.
    """
    problems: list[str] = []
    if scenario.pcpus < 2:
        problems.append("need at least 2 pCPUs")
    if scenario.policy not in POLICY_NAMES:
        problems.append(f"unknown policy {scenario.policy!r}")
    if scenario.clients < 1:
        problems.append("need at least one client per io workload")
    if scenario.warmup_ns <= 0 or scenario.tail_ns <= 0:
        problems.append("warmup and tail must be positive")
    if not scenario.base:
        problems.append("base population is empty")
    names = [name for name, _ in scenario.base]
    if len(set(names)) != len(names):
        problems.append("duplicate base VM names")
    for name, mode in scenario.base:
        if mode not in MODES:
            problems.append(f"base VM {name!r}: unknown mode {mode!r}")

    alive = {name: mode for name, mode in scenario.base}
    used = set(alive)
    offline: set[int] = set()
    last_t = 0
    for event in scenario.timeline.events:
        if event.at_ns < last_t:
            problems.append(f"{event!r}: events not in time order")
        last_t = max(last_t, event.at_ns)
        if isinstance(event, VmBoot):
            if event.name in used:
                problems.append(f"boot {event.name!r}: name already used")
            used.add(event.name)
            alive[event.name] = event.mode
        elif isinstance(event, VmShutdown):
            if event.name not in alive:
                problems.append(f"shutdown {event.name!r}: not alive")
            elif len(alive) <= 1:
                problems.append(
                    f"shutdown {event.name!r}: would leave no VM alive"
                )
            else:
                del alive[event.name]
        elif isinstance(event, (PhaseChange, LoadSpike)):
            if event.name not in alive:
                problems.append(f"{event.kind} {event.name!r}: not alive")
            elif isinstance(event, PhaseChange):
                alive[event.name] = event.mode
        elif isinstance(event, PcpuOffline):
            if not 0 <= event.cpu_id < scenario.pcpus:
                problems.append(f"offline pcpu{event.cpu_id}: no such core")
            elif event.cpu_id in offline:
                problems.append(f"offline pcpu{event.cpu_id}: already dark")
            elif scenario.pcpus - len(offline) < 2:
                problems.append(
                    f"offline pcpu{event.cpu_id}: would darken the last core"
                )
            else:
                offline.add(event.cpu_id)
        elif isinstance(event, PcpuOnline):
            if event.cpu_id not in offline:
                problems.append(f"online pcpu{event.cpu_id}: not offline")
            else:
                offline.discard(event.cpu_id)
    return problems


__all__ = [
    "POLICY_NAMES",
    "FuzzScenario",
    "event_from_json",
    "event_to_json",
    "scenario_problems",
]
