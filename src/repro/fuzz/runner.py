"""Drive one :class:`FuzzScenario` through a full simulated run.

The runner mirrors the churn experiment's run recipe (confine the base
population to a ``scenario`` pool, set the policy up, warm up, arm the
timeline, run through the tail) with two fuzz-specific additions:

* telemetry is always on — the invariant library re-derives vTRS
  verdicts from the audit trail and walks the span forest, and the
  coverage tracker reads decisions and the pool ledger;
* a **credit watermark probe** samples every vCPU's credit each
  accounting period.  Several credit bugs (the ``skip_credit_refill``
  injection among them) are *intermittent*: the balance dives below
  the legal floor mid-run and recovers by the final accounting, so the
  end state alone would exonerate a broken scheduler.

The returned :class:`FuzzOutcome` carries the live object graph; the
invariant checks in :mod:`repro.fuzz.invariants` treat it as strictly
read-only (enforced by fingerprinting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import (
    AqlPolicy,
    Microsliced,
    Policy,
    PolicyContext,
    VSlicer,
    VTurbo,
    XenCredit,
)
from repro.core.types import VCpuType
from repro.dynamics import ChurnEngine, SwitchableWorkload
from repro.fuzz.inject import apply_injection
from repro.fuzz.scenario import FuzzScenario, scenario_problems
from repro.hypervisor.machine import Machine
from repro.sim.units import MS
from repro.telemetry import Telemetry

#: ground-truth vCPU type per workload mode (feeds the manually
#: configured comparators' oracle, like the static experiments do)
MODE_TYPES = {
    "io": VCpuType.IOINT,
    "spin": VCpuType.CONSPIN,
    "llcf": VCpuType.LLCF,
    "llco": VCpuType.LLCO,
    "lolcf": VCpuType.LOLCF,
}


def _make_policy(name: str) -> Policy:
    if name == "xen":
        return XenCredit()
    if name == "microsliced":
        return Microsliced()
    if name == "vslicer":
        return VSlicer()
    if name == "vturbo":
        return VTurbo()
    if name == "aql":
        return AqlPolicy()
    raise ValueError(f"unknown policy {name!r}")


@dataclass
class FuzzOutcome:
    """Everything one fuzzed run produced, for invariant checking."""

    scenario: FuzzScenario
    machine: Machine
    workloads: dict[str, SwitchableWorkload]
    engine: ChurnEngine
    telemetry: Telemetry
    end_ns: int
    #: vcpu name -> lowest credit ever observed by the periodic probe
    credit_watermark: dict[str, float] = field(default_factory=dict)
    #: open spans force-closed at end of run (run finalisation)
    spans_closed: int = 0


def run_scenario_fuzz(scenario: FuzzScenario) -> FuzzOutcome:
    """Build, run and finalise one scenario; raises on invalid input."""
    problems = scenario_problems(scenario)
    if problems:
        raise ValueError(
            f"scenario is not runnable: {'; '.join(problems)}"
        )
    telemetry = Telemetry(enabled=True)
    machine = scenario.host_spec.build(seed=scenario.seed, telemetry=telemetry)
    pool = machine.create_pool("scenario", machine.topology.pcpus, 30 * MS)
    oracle: dict[int, VCpuType] = {}
    workloads: dict[str, SwitchableWorkload] = {}
    for name, mode in scenario.base:
        vm = machine.new_vm(name, 1)
        vcpu = vm.vcpus[0]
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
        oracle[vcpu.vcpu_id] = MODE_TYPES[mode]
        workload = SwitchableWorkload(
            name, mode=mode, clients=scenario.clients
        )
        workload.install(machine, vm)
        workloads[name] = workload

    ctx = PolicyContext(oracle_types=oracle, pool=pool)
    policy = _make_policy(scenario.policy)
    policy.setup(machine, ctx)
    if scenario.inject is not None:
        apply_injection(machine, scenario.inject)

    outcome = FuzzOutcome(
        scenario=scenario,
        machine=machine,
        workloads=workloads,
        engine=None,  # type: ignore[arg-type]  # set below
        telemetry=telemetry,
        end_ns=0,
    )

    def probe() -> None:
        machine.sync()
        for vcpu in machine.all_vcpus:
            floor = outcome.credit_watermark.get(vcpu.name)
            if floor is None or vcpu.credit < floor:
                outcome.credit_watermark[vcpu.name] = vcpu.credit

    # armed before run/start, so at a shared timestamp the probe fires
    # before the accounting refill and sees the period's true floor
    machine.every(machine.params.accounting_ns, probe, "fuzz:credit-probe")

    machine.run(scenario.warmup_ns)
    for workload in workloads.values():
        workload.begin_measurement()
    engine = ChurnEngine(
        machine,
        scenario.timeline,
        workloads=workloads,
        allowed_pcpus=pool.pcpus,
        clients=scenario.clients,
    )
    outcome.engine = engine
    engine.arm()
    machine.run(scenario.measure_ns)
    machine.sync()
    # run finalisation: close control-plane spans still open at the
    # horizon so the span forest is complete for the nesting invariant
    outcome.spans_closed = telemetry.tracer.close_all(machine.sim.now)
    outcome.end_ns = machine.sim.now
    return outcome


def replay(scenario: FuzzScenario) -> FuzzOutcome:
    """Alias with the CLI's vocabulary: replays are just runs."""
    return run_scenario_fuzz(scenario)


__all__ = ["MODE_TYPES", "FuzzOutcome", "replay", "run_scenario_fuzz"]
