"""The stateful scenario generator: a seeded churn state machine.

Generation is a little state machine over the :mod:`repro.dynamics`
vocabulary (the hand-rolled equivalent of a Hypothesis
``RuleBasedStateMachine``, kept in-tree so corpus seeds replay without
a database): it tracks which VMs are alive, what mode each runs and
which cores are dark, and only ever emits events that are applicable
when they fire — the same bookkeeping :func:`scenario_problems`
re-checks statically.

Two fuzz-specific behaviours on top of plain validity:

* **coverage steering** — when a :class:`CoverageMap` is supplied,
  event kinds, workload modes and policies are drawn with weight
  ``1 / (1 + hits)``, so a corpus drifts toward scheduler behaviour it
  has not exercised yet;
* **same-instant pairs** — with small probability a boot is emitted
  together with a phase change of the booted VM at the *same*
  timestamp, exercising the documented tuple-order tie-break of
  :class:`~repro.dynamics.events.ChurnTimeline`.

Determinism: one ``np.random.default_rng(seed)`` stream drives every
choice; the same (seed, coverage counts) always yields the same
scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dynamics.events import (
    MODES,
    ChurnEvent,
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    VmBoot,
    VmShutdown,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.scenario import POLICY_NAMES, FuzzScenario
from repro.sim.units import MS

#: timeline pacing — spaced around the AQL decide period (120 ms) so
#: the control plane gets to react between events, small enough that a
#: full run stays well under two simulated seconds
START_NS = 150 * MS
MIN_SPACING_NS = 120 * MS
MAX_SPACING_NS = 250 * MS


def _weighted_choice(
    rng: np.random.Generator,
    options: Sequence[str],
    coverage: Optional[CoverageMap],
    prefix: str,
) -> str:
    if coverage is None or len(options) == 1:
        return options[int(rng.integers(len(options)))]
    weights = np.array(
        [coverage.weight(f"{prefix}:{option}") for option in options]
    )
    weights = weights / weights.sum()
    return options[int(rng.choice(len(options), p=weights))]


def generate_scenario(
    seed: int,
    coverage: Optional[CoverageMap] = None,
    *,
    policies: Sequence[str] = POLICY_NAMES,
    pcpu_choices: Sequence[int] = (2, 3),
    max_base: int = 4,
    max_events: int = 4,
    clients: int = 4,
    inject: Optional[str] = None,
) -> FuzzScenario:
    """Draw one valid scenario; deterministic in (seed, coverage)."""
    rng = np.random.default_rng(seed)
    pcpus = int(pcpu_choices[int(rng.integers(len(pcpu_choices)))])
    policy = _weighted_choice(rng, list(policies), coverage, "policy")

    n_base = int(rng.integers(2, max_base + 1))
    base: list[tuple[str, str]] = []
    for i in range(n_base):
        mode = _weighted_choice(rng, list(MODES), coverage, "mode")
        base.append((f"base{i}", mode))

    alive: dict[str, str] = dict(base)
    used = set(alive)
    offline: list[int] = []
    booted = 0
    events: list[ChurnEvent] = []
    t = START_NS
    n_events = int(rng.integers(0, max_events + 1))
    while len(events) < n_events:
        kinds = ["vm_boot"]
        if len(alive) > 1:
            kinds.append("vm_shutdown")
        if alive:
            kinds.extend(["phase_change", "load_spike"])
        if pcpus - len(offline) >= 2:
            kinds.append("pcpu_offline")
        if offline:
            kinds.append("pcpu_online")
        kind = _weighted_choice(rng, kinds, coverage, "event")
        if kind == "vm_boot":
            name = f"hot{booted}"
            booted += 1
            mode = _weighted_choice(rng, list(MODES), coverage, "mode")
            events.append(VmBoot(t, name=name, mode=mode))
            used.add(name)
            alive[name] = mode
            # occasionally: a dependent same-timestamp pair, relying on
            # the documented tuple-order tie-break
            if rng.random() < 0.2 and len(events) < n_events:
                other = _weighted_choice(
                    rng,
                    [m for m in MODES if m != mode],
                    coverage,
                    "mode",
                )
                events.append(PhaseChange(t, name=name, mode=other))
                alive[name] = other
        elif kind == "vm_shutdown":
            names = sorted(alive)
            name = names[int(rng.integers(len(names)))]
            events.append(VmShutdown(t, name=name))
            del alive[name]
        elif kind == "phase_change":
            names = sorted(alive)
            name = names[int(rng.integers(len(names)))]
            others = [m for m in MODES if m != alive[name]]
            mode = _weighted_choice(rng, others, coverage, "mode")
            events.append(PhaseChange(t, name=name, mode=mode))
            alive[name] = mode
        elif kind == "load_spike":
            names = sorted(alive)
            name = names[int(rng.integers(len(names)))]
            factor = float(rng.integers(2, 6))
            events.append(LoadSpike(
                t, name=name, factor=factor, duration_ns=100 * MS
            ))
        elif kind == "pcpu_offline":
            online = sorted(set(range(pcpus)) - set(offline))
            cpu_id = online[int(rng.integers(len(online)))]
            events.append(PcpuOffline(t, cpu_id=cpu_id))
            offline.append(cpu_id)
        else:  # pcpu_online
            cpu_id = sorted(offline)[int(rng.integers(len(offline)))]
            events.append(PcpuOnline(t, cpu_id=cpu_id))
            offline.remove(cpu_id)
        t += int(rng.integers(MIN_SPACING_NS, MAX_SPACING_NS + 1))

    return FuzzScenario(
        seed=seed,
        pcpus=pcpus,
        policy=policy,
        base=tuple(base),
        timeline=ChurnTimeline(tuple(events)),
        clients=clients,
        inject=inject,
        label=f"gen-{seed}",
    )


__all__ = [
    "MAX_SPACING_NS",
    "MIN_SPACING_NS",
    "START_NS",
    "generate_scenario",
]
