"""``python -m repro.fuzz`` — run corpora, replay repros, print cases.

Subcommands:

* ``run`` — a fixed-seed corpus campaign with coverage report and
  shrunken repro files; the CI gate flags (``--require-invariant``,
  ``--min-alg-branches``, ``--expect-caught``, ``--max-shrunk-events``)
  turn the campaign into an executable acceptance test;
* ``replay <case.json>`` — re-run one saved scenario and re-check the
  invariant library (exit 1 on violation, unless the case carries an
  injection, where violations are the expected outcome);
* ``gen`` — print the scenario a seed generates, without running it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.fuzz.corpus import run_campaign
from repro.fuzz.generator import generate_scenario
from repro.fuzz.invariants import INVARIANTS, check_invariants
from repro.fuzz.runner import run_scenario_fuzz
from repro.fuzz.scenario import POLICY_NAMES, FuzzScenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="coverage-guided scenario fuzzer for the scheduler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a fixed-seed corpus campaign")
    run.add_argument("--cases", type=int, default=25)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out-dir", type=Path, default=None,
                     help="where repro files + coverage report land")
    run.add_argument("--policies", nargs="+", default=list(POLICY_NAMES),
                     choices=list(POLICY_NAMES))
    run.add_argument("--max-events", type=int, default=4)
    run.add_argument("--inject", default=None,
                     help="apply a named bug injection to every case")
    run.add_argument("--no-shrink", action="store_true")
    run.add_argument("--quiet", action="store_true")
    # engine mode: parallel, cached, resumable — unsteered generation
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="fan cases out over N engine workers "
                          "(unsteered generation; default: sequential "
                          "coverage-steered loop)")
    run.add_argument("--run-dir", type=Path, default=None, metavar="DIR",
                     help="with --jobs: journal completed cases under "
                          "DIR so a killed campaign resumes")
    run.add_argument("--serve", default=None, metavar="[HOST:]PORT",
                     help="serve live /metrics, /status and /events "
                          "for the campaign over HTTP (implies engine "
                          "mode, like --jobs; default: $REPRO_SERVE)")
    # gate flags (CI)
    run.add_argument("--min-alg-branches", type=int, default=0,
                     help="fail unless this many Algorithm 1/2 branches "
                          "were exercised")
    run.add_argument("--require-invariant", action="append", default=[],
                     choices=sorted(INVARIANTS),
                     help="fail unless this invariant was checked cleanly "
                          "on every case (repeatable)")
    run.add_argument("--expect-caught", action="store_true",
                     help="invert the verdict: fail unless at least one "
                          "case violated an invariant (injection gate)")
    run.add_argument("--max-shrunk-events", type=int, default=None,
                     help="with --expect-caught: fail unless some caught "
                          "case shrank to at most this many events")

    replay = sub.add_parser("replay", help="re-run a saved repro file")
    replay.add_argument("case", type=Path)

    gen = sub.add_parser("gen", help="print a generated scenario")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", type=Path, default=None)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.ops import attach_ops, resolve_serve_spec

    serve_spec = resolve_serve_spec(args.serve)
    runner = None
    plane = None
    if (
        args.jobs is not None
        or args.run_dir is not None
        or serve_spec is not None
    ):
        from repro.exec import SweepRunner

        runner = SweepRunner(jobs=args.jobs, run_root=args.run_dir)
        plane = attach_ops(runner.engine, spec=serve_spec)
        # one cell per case: lets /status project an ETA over the
        # whole campaign instead of only the cells planned so far
        runner.engine.expect_cells(args.cases)
        if plane.server is not None:
            print(f"[ops] serving at {plane.server.url}", file=sys.stderr)
    campaign = run_campaign(
        args.cases,
        seed=args.seed,
        out_dir=args.out_dir,
        policies=args.policies,
        max_events=args.max_events,
        inject=args.inject,
        shrink_failures=not args.no_shrink,
        log=None if args.quiet else sys.stderr,
        runner=runner,
    )
    if plane is not None:
        plane.close()
    if runner is not None:
        runner.engine.close()
    print(campaign.coverage.render())
    failures = campaign.failures
    print(
        f"\n{len(campaign.cases)} cases, {len(failures)} failing"
        + (f", repros in {args.out_dir}" if args.out_dir else "")
    )
    for case in failures:
        names = sorted({v.invariant for v in case.violations})
        where = f" -> {case.repro_path}" if case.repro_path else ""
        shrunk = (
            f" (shrunk to {len(case.shrunk.scenario.timeline)} events in "
            f"{case.shrunk.evaluations} runs)"
            if case.shrunk is not None
            else ""
        )
        print(f"  seed {case.seed}: {', '.join(names)}{shrunk}{where}")

    status = 0
    # checked-invariant gate: every invariant named must have run clean
    for name in args.require_invariant:
        dirty = [
            case.seed
            for case in campaign.cases
            if any(v.invariant == name for v in case.violations)
        ]
        if dirty:
            print(f"GATE: invariant {name!r} violated by seeds {dirty}")
            status = 1
    branches = campaign.coverage.distinct("alg1:") + \
        campaign.coverage.distinct("alg2:")
    if len(branches) < args.min_alg_branches:
        print(
            f"GATE: only {len(branches)} Algorithm 1/2 branches "
            f"exercised, need {args.min_alg_branches}: {branches}"
        )
        status = 1
    if args.expect_caught:
        if not failures:
            print("GATE: injection was NOT caught by the corpus")
            status = 1
        elif args.max_shrunk_events is not None:
            best = min(
                len(case.shrunk.scenario.timeline)
                for case in failures
                if case.shrunk is not None
            ) if any(c.shrunk is not None for c in failures) else None
            if best is None or best > args.max_shrunk_events:
                print(
                    f"GATE: minimal repro has {best} events, need "
                    f"<= {args.max_shrunk_events}"
                )
                status = 1
    elif failures:
        status = 1
    return status


def _cmd_replay(args: argparse.Namespace) -> int:
    scenario = FuzzScenario.load(args.case)
    outcome = run_scenario_fuzz(scenario)
    violations = check_invariants(outcome)
    print(
        f"replayed seed {scenario.seed} ({scenario.policy}, "
        f"{len(scenario.timeline)} events"
        + (f", inject={scenario.inject}" if scenario.inject else "")
        + f") to t={outcome.end_ns} ns"
    )
    for violation in violations:
        print(f"  {violation}")
    if scenario.inject is not None:
        # an injected case *should* fail — reproducing is success
        if violations:
            print("injected bug reproduced")
            return 0
        print("injected bug did NOT reproduce")
        return 1
    return 1 if violations else 0


def _cmd_gen(args: argparse.Namespace) -> int:
    scenario = generate_scenario(args.seed)
    text = json.dumps(scenario.to_json(), indent=2, sort_keys=True)
    if args.out is not None:
        scenario.save(args.out)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "replay":
            return _cmd_replay(args)
        return _cmd_gen(args)
    except BrokenPipeError:  # stdout piped into a closed reader
        return 0


__all__ = ["main"]
