"""Deliberate scheduler bugs, for proving the fuzzer has teeth.

Each injection is a named mutation applied to a machine after policy
setup; the CI fuzz-smoke gate runs the corpus with one injected and
asserts the invariant library catches it and shrinks the repro to a
trivial scenario.  Injections subclass the scheduler rather than
monkeypatching (``CreditScheduler`` uses ``__slots__``), and swap
``machine.scheduler`` — every dispatch/tick/accounting path reads that
attribute at call time, so the swap is complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.hypervisor.credit import CreditScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VCpu


class _SkipRefillScheduler(CreditScheduler):
    """The injected bug: every other accounting pass forgets to refill.

    Credits burn as usual but are only replenished half the time, so a
    busy vCPU sinks below the provable floor (``-credit_clip`` minus
    one period of burn) during every skipped period — an intermittent
    starvation bug the end-of-run state alone would never show, which
    is exactly what the runner's credit watermark probe exists to
    catch.
    """

    __slots__ = ("acct_calls",)

    def __init__(self, machine: "Machine", params) -> None:  # type: ignore[no-untyped-def]
        super().__init__(machine, params)
        self.acct_calls = 0

    def on_accounting(self, vcpus: Iterable["VCpu"]) -> None:
        self.acct_calls += 1
        if self.acct_calls % 2 == 1:
            return  # the bug: silently skip the whole refill pass
        super().on_accounting(vcpus)


def _inject_skip_credit_refill(machine: "Machine") -> None:
    machine.scheduler = _SkipRefillScheduler(machine, machine.params)


INJECTIONS: dict[str, Callable[["Machine"], None]] = {
    "skip_credit_refill": _inject_skip_credit_refill,
}


def apply_injection(machine: "Machine", name: str) -> None:
    try:
        INJECTIONS[name](machine)
    except KeyError:
        raise ValueError(
            f"unknown injection {name!r}; known: {sorted(INJECTIONS)}"
        ) from None


__all__ = ["INJECTIONS", "apply_injection"]
