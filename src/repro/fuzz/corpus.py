"""Corpus campaigns: generate, run, check, shrink, report.

:func:`run_campaign` is the fuzzing loop the CLI and CI drive: a
fixed-seed sequence of generated scenarios, each run to completion and
checked against the invariant library, with the shared coverage map
steering every subsequent generation.  Failures are shrunk and written
out as runnable repro files (``python -m repro.fuzz replay <case>``);
the merged coverage report lands next to them.

Everything is deterministic in (seed, cases, generation knobs): case
``i`` is generated from ``seed + i`` against the coverage accumulated
by cases ``0..i-1``.

Passing a :class:`~repro.exec.SweepRunner` switches the campaign onto
the execution engine: every case becomes one picklable
:func:`run_fuzz_case` cell, fanned out over worker processes, cached
content-addressed, and — with a run directory — journalled so a killed
campaign resumes.  The trade is *steering*: coverage-guided generation
is inherently sequential (case ``i`` reads the coverage of ``0..i-1``),
so engine-mode cases generate unsteered and coverage merges at the
fold.  The default sequential path keeps steering; shrinking always
happens in the parent either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.exec import Cell, SweepRunner, engine_cell
from repro.fuzz.coverage import CoverageMap, outcome_keys
from repro.fuzz.generator import generate_scenario
from repro.fuzz.invariants import Violation, check_invariants
from repro.fuzz.runner import run_scenario_fuzz
from repro.fuzz.scenario import POLICY_NAMES, FuzzScenario
from repro.fuzz.shrink import ShrinkResult, shrink


@dataclass
class CaseResult:
    """One corpus case: what ran and what the invariants said."""

    index: int
    seed: int
    scenario: FuzzScenario
    violations: list[Violation] = field(default_factory=list)
    #: coverage keys this case visited for the first time
    new_coverage: int = 0
    shrunk: Optional[ShrinkResult] = None
    repro_path: Optional[Path] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@dataclass
class CampaignResult:
    """The whole corpus run."""

    cases: list[CaseResult] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    report_path: Optional[Path] = None

    @property
    def failures(self) -> list[CaseResult]:
        return [case for case in self.cases if case.failed]


@dataclass(frozen=True)
class FuzzCaseSummary:
    """One engine-mode case, reduced to picklable facts.

    Workers cannot ship the live :class:`~repro.fuzz.runner.FuzzOutcome`
    object graph across the process boundary, so the cell distils it:
    the generated scenario (replayable data), the violations (plain
    dataclasses), the case's coverage counts, and the horizon.  The
    parent re-runs a failing scenario deterministically when it needs
    the live graph again (shrinking does exactly that).
    """

    seed: int
    scenario: FuzzScenario
    violations: tuple[Violation, ...]
    coverage_counts: dict[str, int]
    end_ns: int

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@engine_cell
def run_fuzz_case(
    case_seed: int,
    policies: Sequence[str] = POLICY_NAMES,
    max_events: int = 4,
    inject: Optional[str] = None,
) -> FuzzCaseSummary:
    """Generate (unsteered), run and check one corpus case.

    Module-level and pure in its arguments, so it pickles across the
    fork and caches content-addressed: the cell for ``(seed, knobs)``
    is the same cell in every campaign that plans it.
    """
    scenario = generate_scenario(
        case_seed,
        coverage=None,
        policies=tuple(policies),
        max_events=max_events,
        inject=inject,
    )
    outcome = run_scenario_fuzz(scenario)
    violations = tuple(check_invariants(outcome))
    probe = CoverageMap()
    probe.observe_outcome(outcome)
    return FuzzCaseSummary(
        seed=case_seed,
        scenario=scenario,
        violations=violations,
        coverage_counts=dict(probe.counts),
        end_ns=outcome.end_ns,
    )


def _finish_case(
    case: CaseResult,
    result: CampaignResult,
    *,
    cases: int,
    out_dir: Optional[Path],
    shrink_failures: bool,
    max_shrink_evaluations: int,
    log: Optional[object],
) -> None:
    """Shared tail of both campaign modes: shrink, save, log, append."""
    if case.failed:
        if shrink_failures:
            case.shrunk = shrink(
                case.scenario,
                case.violations,
                max_evaluations=max_shrink_evaluations,
            )
        if out_dir is not None:
            minimal = (
                case.shrunk.scenario
                if case.shrunk is not None
                else case.scenario
            )
            case.repro_path = minimal.save(
                Path(out_dir) / f"case_{case.seed}.json"
            )
    if log is not None:
        status = (
            "FAIL " + ",".join(sorted({
                v.invariant for v in case.violations
            }))
            if case.failed
            else "ok"
        )
        print(
            f"[{case.index + 1}/{cases}] seed={case.seed} "
            f"policy={case.scenario.policy} "
            f"events={len(case.scenario.timeline)} "
            f"new-coverage={case.new_coverage} {status}",
            file=log,
        )
    result.cases.append(case)


def run_campaign(
    cases: int,
    seed: int = 0,
    *,
    out_dir: Optional[Path] = None,
    policies: Sequence[str] = POLICY_NAMES,
    max_events: int = 4,
    inject: Optional[str] = None,
    shrink_failures: bool = True,
    max_shrink_evaluations: int = 60,
    coverage: Optional[CoverageMap] = None,
    log: Optional[object] = None,
    runner: Optional[SweepRunner] = None,
) -> CampaignResult:
    """Run a fixed-seed corpus; returns every case plus merged coverage.

    With ``runner`` the campaign goes through the execution engine
    (parallel, cached, resumable — see the module docstring for the
    steering trade); without it, the classic sequential
    coverage-steered loop runs unchanged.
    """
    result = CampaignResult(
        coverage=coverage if coverage is not None else CoverageMap()
    )
    finish = dict(
        cases=cases,
        out_dir=out_dir,
        shrink_failures=shrink_failures,
        max_shrink_evaluations=max_shrink_evaluations,
        log=log,
    )

    if runner is not None:
        cells = [
            Cell(
                run_fuzz_case,
                dict(
                    case_seed=seed + index,
                    policies=tuple(policies),
                    max_events=max_events,
                    inject=inject,
                ),
                label=f"fuzz:seed{seed + index}",
            )
            for index in range(cases)
        ]
        summaries = runner.run(cells, stage="fuzz-corpus")
        for index, summary in enumerate(summaries):
            case = CaseResult(
                index=index, seed=summary.seed, scenario=summary.scenario
            )
            case.violations = list(summary.violations)
            case.new_coverage = result.coverage.novelty(
                summary.coverage_counts
            )
            fold = CoverageMap()
            fold.counts = dict(summary.coverage_counts)
            fold.runs = 1
            result.coverage.merge(fold)
            _finish_case(case, result, **finish)
    else:
        for index in range(cases):
            case_seed = seed + index
            scenario = generate_scenario(
                case_seed,
                coverage=result.coverage,
                policies=policies,
                max_events=max_events,
                inject=inject,
            )
            outcome = run_scenario_fuzz(scenario)
            case = CaseResult(
                index=index, seed=case_seed, scenario=scenario
            )
            case.violations = check_invariants(outcome)
            case.new_coverage = result.coverage.novelty(
                outcome_keys(outcome)
            )
            result.coverage.observe_outcome(outcome)
            _finish_case(case, result, **finish)

    if out_dir is not None:
        result.report_path = result.coverage.save(
            Path(out_dir) / "coverage_report.json"
        )
    return result


__all__ = [
    "CampaignResult",
    "CaseResult",
    "FuzzCaseSummary",
    "run_campaign",
    "run_fuzz_case",
]
