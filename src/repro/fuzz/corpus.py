"""Corpus campaigns: generate, run, check, shrink, report.

:func:`run_campaign` is the fuzzing loop the CLI and CI drive: a
fixed-seed sequence of generated scenarios, each run to completion and
checked against the invariant library, with the shared coverage map
steering every subsequent generation.  Failures are shrunk and written
out as runnable repro files (``python -m repro.fuzz replay <case>``);
the merged coverage report lands next to them.

Everything is deterministic in (seed, cases, generation knobs): case
``i`` is generated from ``seed + i`` against the coverage accumulated
by cases ``0..i-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.fuzz.coverage import CoverageMap, outcome_keys
from repro.fuzz.generator import generate_scenario
from repro.fuzz.invariants import Violation, check_invariants
from repro.fuzz.runner import run_scenario_fuzz
from repro.fuzz.scenario import POLICY_NAMES, FuzzScenario
from repro.fuzz.shrink import ShrinkResult, shrink


@dataclass
class CaseResult:
    """One corpus case: what ran and what the invariants said."""

    index: int
    seed: int
    scenario: FuzzScenario
    violations: list[Violation] = field(default_factory=list)
    #: coverage keys this case visited for the first time
    new_coverage: int = 0
    shrunk: Optional[ShrinkResult] = None
    repro_path: Optional[Path] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@dataclass
class CampaignResult:
    """The whole corpus run."""

    cases: list[CaseResult] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    report_path: Optional[Path] = None

    @property
    def failures(self) -> list[CaseResult]:
        return [case for case in self.cases if case.failed]


def run_campaign(
    cases: int,
    seed: int = 0,
    *,
    out_dir: Optional[Path] = None,
    policies: Sequence[str] = POLICY_NAMES,
    max_events: int = 4,
    inject: Optional[str] = None,
    shrink_failures: bool = True,
    max_shrink_evaluations: int = 60,
    coverage: Optional[CoverageMap] = None,
    log: Optional[object] = None,
) -> CampaignResult:
    """Run a fixed-seed corpus; returns every case plus merged coverage."""
    result = CampaignResult(
        coverage=coverage if coverage is not None else CoverageMap()
    )
    for index in range(cases):
        case_seed = seed + index
        scenario = generate_scenario(
            case_seed,
            coverage=result.coverage,
            policies=policies,
            max_events=max_events,
            inject=inject,
        )
        outcome = run_scenario_fuzz(scenario)
        case = CaseResult(index=index, seed=case_seed, scenario=scenario)
        case.violations = check_invariants(outcome)
        case.new_coverage = result.coverage.novelty(outcome_keys(outcome))
        result.coverage.observe_outcome(outcome)
        if case.failed:
            if shrink_failures:
                case.shrunk = shrink(
                    scenario,
                    case.violations,
                    max_evaluations=max_shrink_evaluations,
                )
            if out_dir is not None:
                minimal = (
                    case.shrunk.scenario
                    if case.shrunk is not None
                    else scenario
                )
                case.repro_path = minimal.save(
                    Path(out_dir) / f"case_{case_seed}.json"
                )
        if log is not None:
            status = (
                "FAIL " + ",".join(sorted({
                    v.invariant for v in case.violations
                }))
                if case.failed
                else "ok"
            )
            print(
                f"[{index + 1}/{cases}] seed={case_seed} "
                f"policy={scenario.policy} events={len(scenario.timeline)} "
                f"new-coverage={case.new_coverage} {status}",
                file=log,
            )
        result.cases.append(case)
    if out_dir is not None:
        result.report_path = result.coverage.save(
            Path(out_dir) / "coverage_report.json"
        )
    return result


__all__ = ["CampaignResult", "CaseResult", "run_campaign"]
