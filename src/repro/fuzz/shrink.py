"""Shrinking: reduce a failing scenario to a minimal reproduction.

Delta-debugging over the scenario's degrees of freedom, cheapest
reduction first:

1. **events** — ddmin over the churn timeline (drop halves, then
   quarters, … then single events);
2. **base VMs** — drop population members one at a time (at least one
   survives; events referencing a dropped VM make the candidate
   statically invalid and are skipped without a run);
3. **time** — halve the tail, halve the warmup, then compress event
   timestamps toward the origin (preserving order and same-instant
   groups).

A candidate *reproduces* when it is statically valid
(:func:`repro.fuzz.scenario.scenario_problems`) and a fresh run still
violates at least one invariant from the original failure's signature.
Every evaluation is a full simulated run, so the budget is capped and
results are memoised by the scenario's canonical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.dynamics.events import ChurnEvent, ChurnTimeline
from repro.fuzz.invariants import Violation, check_invariants
from repro.fuzz.runner import run_scenario_fuzz
from repro.fuzz.scenario import FuzzScenario, scenario_problems
from repro.sim.units import MS

#: time reductions never go below these (the run must still cover the
#: AQL cold start and give the progress invariant its grace window)
MIN_WARMUP_NS = 100 * MS
MIN_TAIL_NS = 260 * MS


def failure_signature(violations: Iterable[Violation]) -> frozenset[str]:
    """The invariant names a failure is known by during shrinking."""
    return frozenset(v.invariant for v in violations)


@dataclass
class ShrinkResult:
    """The minimal scenario plus the search's accounting."""

    scenario: FuzzScenario
    signature: frozenset[str]
    evaluations: int
    steps: list[str]


class _Shrinker:
    def __init__(
        self, signature: frozenset[str], max_evaluations: int
    ) -> None:
        self.signature = signature
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self._memo: dict[str, bool] = {}
        self.steps: list[str] = []

    def budget_left(self) -> bool:
        return self.evaluations < self.max_evaluations

    def reproduces(self, candidate: FuzzScenario) -> bool:
        """Does the candidate still trip the original signature?"""
        if scenario_problems(candidate):
            return False  # statically invalid: rejected without a run
        key = json.dumps(candidate.to_json(), sort_keys=True)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if not self.budget_left():
            return False
        self.evaluations += 1
        outcome = run_scenario_fuzz(candidate)
        found = failure_signature(check_invariants(outcome))
        verdict = bool(found & self.signature)
        self._memo[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # stage 1: ddmin over timeline events
    # ------------------------------------------------------------------
    def shrink_events(self, scenario: FuzzScenario) -> FuzzScenario:
        events = list(scenario.timeline.events)
        chunk = max(1, len(events) // 2)
        while events and chunk >= 1 and self.budget_left():
            removed_any = False
            start = 0
            while start < len(events) and self.budget_left():
                candidate_events = events[:start] + events[start + chunk:]
                candidate = _with_events(scenario, candidate_events)
                if self.reproduces(candidate):
                    dropped = len(events) - len(candidate_events)
                    events = candidate_events
                    self.steps.append(f"dropped {dropped} event(s)")
                    removed_any = True
                else:
                    start += chunk
            if not removed_any or chunk == 1:
                if chunk == 1:
                    break
            chunk = max(1, chunk // 2)
        return _with_events(scenario, events)

    # ------------------------------------------------------------------
    # stage 2: drop base VMs
    # ------------------------------------------------------------------
    def shrink_base(self, scenario: FuzzScenario) -> FuzzScenario:
        members = list(scenario.base)
        index = 0
        while len(members) > 1 and index < len(members) and self.budget_left():
            candidate = replace(
                scenario,
                base=tuple(members[:index] + members[index + 1:]),
            )
            if self.reproduces(candidate):
                self.steps.append(f"dropped base VM {members[index][0]!r}")
                del members[index]
                scenario = candidate
            else:
                index += 1
        return scenario

    # ------------------------------------------------------------------
    # stage 3: time compression
    # ------------------------------------------------------------------
    def shrink_time(self, scenario: FuzzScenario) -> FuzzScenario:
        for field_name, floor in (
            ("tail_ns", MIN_TAIL_NS),
            ("warmup_ns", MIN_WARMUP_NS),
        ):
            while self.budget_left():
                value = getattr(scenario, field_name)
                smaller = max(floor, value // 2)
                if smaller >= value:
                    break
                candidate = replace(scenario, **{field_name: smaller})
                if self.reproduces(candidate):
                    self.steps.append(f"{field_name} -> {smaller // MS} ms")
                    scenario = candidate
                else:
                    break
        if scenario.timeline.events and self.budget_left():
            candidate = _with_events(
                scenario, _compress_times(scenario.timeline.events)
            )
            if candidate != scenario and self.reproduces(candidate):
                self.steps.append("compressed event timestamps")
                scenario = candidate
        return scenario


def _with_events(
    scenario: FuzzScenario, events: list[ChurnEvent]
) -> FuzzScenario:
    return replace(scenario, timeline=ChurnTimeline(tuple(events)))


def _compress_times(events: tuple[ChurnEvent, ...]) -> list[ChurnEvent]:
    """Remap timestamps onto a tight 150 ms grid, keeping order and
    collapsing nothing: same-instant groups stay same-instant."""
    distinct = sorted({e.at_ns for e in events})
    mapping = {t: 150 * MS * (i + 1) for i, t in enumerate(distinct)}
    return [
        replace(e, at_ns=min(e.at_ns, mapping[e.at_ns])) for e in events
    ]


def shrink(
    scenario: FuzzScenario,
    violations: Iterable[Violation],
    max_evaluations: int = 60,
) -> ShrinkResult:
    """Minimise ``scenario`` while the failure signature reproduces."""
    signature = failure_signature(violations)
    if not signature:
        raise ValueError("nothing to shrink: no violations")
    shrinker = _Shrinker(signature, max_evaluations)
    current = shrinker.shrink_events(scenario)
    current = shrinker.shrink_base(current)
    current = shrinker.shrink_time(current)
    return ShrinkResult(
        scenario=current,
        signature=signature,
        evaluations=shrinker.evaluations,
        steps=shrinker.steps,
    )


__all__ = [
    "MIN_TAIL_NS",
    "MIN_WARMUP_NS",
    "ShrinkResult",
    "failure_signature",
    "shrink",
]
