"""`repro.fuzz` — coverage-guided scenario fuzzing with shrinking.

The stateful scenario generator (:mod:`repro.fuzz.generator`) composes
random topologies, VM mixes, phased workloads and churn timelines as a
seeded state machine over the :mod:`repro.dynamics` vocabulary; the
runner drives each scenario through a full simulated run; the global
invariant library (:mod:`repro.fuzz.invariants`) checks work
conservation, credit fairness, IO-event conservation, vTRS audit
re-derivation, span nesting and monotone virtual time; failures shrink
(:mod:`repro.fuzz.shrink`) to a minimal scenario replayable with
``python -m repro.fuzz replay <case>.json``.  A decision-space
coverage map (:mod:`repro.fuzz.coverage`) derived from the telemetry
audit trail steers generation toward scheduler behaviour the corpus
has not exercised.  DESIGN.md §12 documents the architecture.
"""

from repro.fuzz.corpus import CampaignResult, CaseResult, run_campaign
from repro.fuzz.coverage import CoverageMap, outcome_keys
from repro.fuzz.generator import generate_scenario
from repro.fuzz.inject import INJECTIONS, apply_injection
from repro.fuzz.invariants import (
    INVARIANTS,
    Violation,
    check_invariants,
    rederive_flip,
    state_fingerprint,
)
from repro.fuzz.runner import FuzzOutcome, run_scenario_fuzz
from repro.fuzz.scenario import (
    POLICY_NAMES,
    FuzzScenario,
    scenario_problems,
)
from repro.fuzz.shrink import ShrinkResult, failure_signature, shrink

__all__ = [
    "INJECTIONS",
    "INVARIANTS",
    "POLICY_NAMES",
    "CampaignResult",
    "CaseResult",
    "CoverageMap",
    "FuzzOutcome",
    "FuzzScenario",
    "ShrinkResult",
    "Violation",
    "apply_injection",
    "check_invariants",
    "failure_signature",
    "generate_scenario",
    "outcome_keys",
    "rederive_flip",
    "run_campaign",
    "run_scenario_fuzz",
    "scenario_problems",
    "shrink",
    "state_fingerprint",
]
