"""Span-based tracing over the virtual clock.

A span is a named ``[begin, end]`` interval on a *track* (one track per
pCPU for quantum slices, one for the vTRS/AQL control plane, one for
the engine).  Tracks keep a LIFO stack of open spans, so nesting is
structural: beginning a span while another is open on the same track
parents it, and :meth:`SpanTracer.end` closes exactly the innermost
open span — ending out of order raises instead of silently producing a
malformed trace.  The Hypothesis suite in
``tests/test_telemetry_spans.py`` holds the tracer to this contract
under random op schedules.

Spans complement, not replace, :mod:`repro.sim.tracing`: the flat
recorder stays the raw event log; spans add durations and parent links
that chrome://tracing and the JSONL exposition render directly.
"""

from __future__ import annotations

from typing import Optional


class SpanError(RuntimeError):
    """Structurally invalid span usage (mismatched end, time travel)."""


class Span:
    """One completed or open interval; created via ``SpanTracer.begin``."""

    __slots__ = (
        "span_id", "parent_id", "name", "category", "track",
        "start_ns", "end_ns", "args",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        track: str,
        start_ns: int,
        args: dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start_ns = start_ns
        #: None while the span is open
        self.end_ns: Optional[int] = None
        self.args = args

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise SpanError(f"span {self.name!r} is still open")
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = self.end_ns if self.end_ns is not None else "…"
        return f"<Span {self.track}:{self.name} [{self.start_ns},{end}]>"


class SpanTracer:
    """Begin/end span recorder with per-track nesting enforcement."""

    __slots__ = (
        "enabled", "max_spans", "dropped", "_completed", "_open", "_seq",
    )

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = enabled
        #: retention cap: completed spans beyond this are dropped (and
        #: counted) rather than growing without bound on long runs
        self.max_spans = max_spans
        self.dropped = 0
        self._completed: list[Span] = []
        self._open: dict[str, list[Span]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(
        self,
        time_ns: int,
        name: str,
        track: str = "main",
        category: str = "span",
        **args: object,
    ) -> Span:
        """Open a span; nests under the track's innermost open span."""
        stack = self._open.setdefault(track, [])
        if stack and time_ns < stack[-1].start_ns:
            raise SpanError(
                f"span {name!r} begins at {time_ns}, before its parent "
                f"{stack[-1].name!r} began at {stack[-1].start_ns}"
            )
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            span_id=self._next_id(),
            parent_id=parent_id,
            name=name,
            category=category,
            track=track,
            start_ns=time_ns,
            args=dict(args),
        )
        stack.append(span)
        return span

    def end(
        self,
        time_ns: int,
        span: Optional[Span] = None,
        track: str = "main",
        **args: object,
    ) -> Span:
        """Close the innermost open span of ``track`` (must match ``span``
        when given)."""
        if span is not None:
            track = span.track
        stack = self._open.get(track)
        if not stack:
            raise SpanError(f"no open span on track {track!r}")
        top = stack[-1]
        if span is not None and top is not span:
            raise SpanError(
                f"cannot end {span.name!r}: {top.name!r} is still open "
                f"inside it (spans close innermost-first)"
            )
        if time_ns < top.start_ns:
            raise SpanError(
                f"span {top.name!r} ends at {time_ns} before its start "
                f"{top.start_ns}"
            )
        stack.pop()
        top.end_ns = time_ns
        if args:
            top.args.update(args)
        self._keep(top)
        return top

    def instant(
        self,
        time_ns: int,
        name: str,
        track: str = "main",
        category: str = "marker",
        **args: object,
    ) -> Span:
        """A zero-duration span (milestones: plan installs, churn)."""
        span = self.begin(time_ns, name, track=track, category=category, **args)
        return self.end(time_ns, span)

    def complete(
        self,
        start_ns: int,
        end_ns: int,
        name: str,
        track: str = "main",
        category: str = "span",
        **args: object,
    ) -> Span:
        """Record a retroactive ``[start, end]`` span in one call.

        Used by periodic monitors that only learn a period's extent
        when it closes (a vTRS monitoring period spans the gap since
        the previous sample).  The span still nests: it parents under
        the track's innermost open span, but may not overlap one that
        began inside the recorded interval.
        """
        if end_ns < start_ns:
            raise SpanError(f"span {name!r}: end {end_ns} < start {start_ns}")
        stack = self._open.get(track)
        if stack and stack[-1].start_ns > start_ns:
            raise SpanError(
                f"retroactive span {name!r} [{start_ns},{end_ns}] overlaps "
                f"open span {stack[-1].name!r} begun at {stack[-1].start_ns}"
            )
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            span_id=self._next_id(),
            parent_id=parent_id,
            name=name,
            category=category,
            track=track,
            start_ns=start_ns,
            args=dict(args),
        )
        span.end_ns = end_ns
        self._keep(span)
        return span

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spans(self, track: Optional[str] = None) -> list[Span]:
        """Completed spans in completion order, optionally one track's."""
        if track is None:
            return list(self._completed)
        return [s for s in self._completed if s.track == track]

    def open_spans(self) -> list[Span]:
        """Every still-open span, outermost first per track."""
        out: list[Span] = []
        for track in sorted(self._open):
            out.extend(self._open[track])
        return out

    def close_all(self, time_ns: int) -> int:
        """End every open span (run teardown); returns how many closed."""
        closed = 0
        for track in sorted(self._open):
            while self._open[track]:
                self.end(time_ns, track=track)
                closed += 1
        return closed

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self._completed:
            seen.setdefault(span.track, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._completed)

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        self._seq += 1
        return self._seq

    def _keep(self, span: Span) -> None:
        if len(self._completed) >= self.max_spans:
            self.dropped += 1
            return
        self._completed.append(span)


__all__ = ["Span", "SpanError", "SpanTracer"]
