"""`repro.telemetry` — unified observability for the simulator.

One :class:`Telemetry` object bundles the three pillars (DESIGN.md
§11):

* :class:`~repro.telemetry.registry.TelemetryRegistry` — counters,
  gauges and histograms with per-vCPU/pCPU/pool label sets and
  ring-buffered time series;
* :class:`~repro.telemetry.spans.SpanTracer` — begin/end spans with
  parent links (quantum slices, vTRS periods, re-clustering passes);
* :class:`~repro.telemetry.audit.DecisionAudit` — the vTRS/AQL
  decision audit trail (type flips with cursor-window snapshots,
  clustering runs, the pool-change ledger).

The overhead contract: instrumented code guards every emit with
``if telemetry.enabled:`` — a disabled Telemetry costs one attribute
check on the hot path, the same discipline ``trace.enabled``
established, and the CI bench gate holds the disabled path to the
25% regression budget against ``BENCH_sim.json``.
"""

from __future__ import annotations

from repro.telemetry.audit import (
    ClusterDecision,
    DecisionAudit,
    PoolChange,
    TypeFlip,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    RingBuffer,
    TelemetryRegistry,
    qualified_name,
)
from repro.telemetry.exposition import (
    jsonl_records,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.spans import Span, SpanError, SpanTracer


class Telemetry:
    """The one object components hold: registry + tracer + audit."""

    __slots__ = ("enabled", "registry", "tracer", "audit")

    def __init__(
        self,
        enabled: bool = False,
        ring: int = 512,
        max_spans: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.registry = TelemetryRegistry(enabled=enabled, ring=ring)
        self.tracer = SpanTracer(enabled=enabled, max_spans=max_spans)
        self.audit = DecisionAudit(enabled=enabled)

    def summary(self) -> dict[str, float]:
        """Flat, picklable aggregate: registry values + audit counts.

        Deterministic (virtual-clock quantities only), so sweep results
        carry it through workers and the cache without breaking the
        serial ≡ parallel ≡ cached equivalence.
        """
        out = self.registry.summary()
        out.update(self.audit.summary())
        out["spans_recorded"] = float(len(self.tracer))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (
            f"<Telemetry {state} instruments={len(self.registry)} "
            f"spans={len(self.tracer)} audit={len(self.audit)}>"
        )


__all__ = [
    "ClusterDecision",
    "Counter",
    "DecisionAudit",
    "Gauge",
    "Histogram",
    "PoolChange",
    "RingBuffer",
    "Span",
    "SpanError",
    "SpanTracer",
    "Telemetry",
    "TelemetryRegistry",
    "TypeFlip",
    "jsonl_records",
    "prometheus_text",
    "qualified_name",
    "write_jsonl",
    "write_prometheus",
]
