"""Exposition: Prometheus text format and JSONL export.

Two formats, two audiences:

* :func:`prometheus_text` renders the registry the way a node exporter
  would — ``# TYPE`` headers, ``{label="value"}`` series, histogram
  ``_bucket``/``_sum``/``_count`` triplets — so a scrape of a finished
  run drops straight into existing Prometheus/Grafana tooling.
* :func:`write_jsonl` streams everything (instruments, ring-buffer
  series, spans, the decision audit) as one JSON object per line, the
  format CI uploads as a run artifact and ad-hoc analysis greps.

This module is the *only* telemetry component allowed to read the wall
clock (the export header stamps when the artifact was written — an
operational fact about the host, not the simulation).  It is
allowlisted for simlint SIM001; the registry/span/audit layers stay on
the virtual clock, and an unguarded wall-clock read anywhere else in
sim code still fails the lint (see
``tests/analysis_fixtures/sim001_telemetry_flagged.py``).
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Optional, TextIO, Union

from repro.telemetry.registry import Histogram, LabelSet, TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

#: Every exported metric name is prefixed so a shared Prometheus does
#: not collide with host metrics.
PROMETHEUS_PREFIX = "repro_"


def _sanitize(name: str) -> str:
    """Prometheus metric names: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = [c if c.isalnum() or c == "_" else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _escape_label_value(value: str) -> str:
    """Escape per the exposition-format spec: label values quote ``\\``
    as ``\\\\``, ``"`` as ``\\"`` and newline as ``\\n`` — a stage label
    like ``epoch "2"`` or an embedded newline must round-trip through a
    scraper instead of corrupting the series line."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escapes ``\\`` and newline only (no quoting)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: LabelSet, extra: str = "") -> str:
    parts = [
        f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: TelemetryRegistry) -> str:
    """The registry in Prometheus exposition format (text/plain 0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        metric = PROMETHEUS_PREFIX + _sanitize(instrument.name)
        if metric not in seen_types:
            seen_types.add(metric)
            help_text = getattr(instrument, "help", "")
            if help_text:
                lines.append(f"# HELP {metric} {_escape_help(help_text)}")
            lines.append(f"# TYPE {metric} {instrument.kind}")
        if isinstance(instrument, Histogram):
            cumulative = 0
            for bound, count in zip(
                instrument.bounds, instrument.bucket_counts
            ):
                cumulative += count
                le = f'le="{bound}"'
                lines.append(
                    f"{metric}_bucket"
                    f"{_label_str(instrument.labels, le)}"
                    f" {cumulative}"
                )
            le_inf = 'le="+Inf"'
            lines.append(
                f"{metric}_bucket"
                f"{_label_str(instrument.labels, le_inf)}"
                f" {instrument.count}"
            )
            lines.append(
                f"{metric}_sum{_label_str(instrument.labels)}"
                f" {instrument.sum}"
            )
            lines.append(
                f"{metric}_count{_label_str(instrument.labels)}"
                f" {instrument.count}"
            )
        else:
            lines.append(
                f"{metric}{_label_str(instrument.labels)} {instrument.value}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: TelemetryRegistry) -> int:
    """Write the exposition text; returns the number of lines."""
    text = prometheus_text(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_records(
    telemetry: "Telemetry",
    end_time_ns: Optional[int] = None,
    stamp_wall_clock: bool = True,
) -> list[dict[str, object]]:
    """Every telemetry fact as a flat record list (one JSON line each).

    Record kinds: ``meta``, ``instrument``, ``series``, ``span``,
    ``flip``, ``decision``, ``pool_change``.  All values inside the
    simulation records are virtual-clock quantities; only the ``meta``
    header carries the (optional) wall-clock export stamp.
    """
    records: list[dict[str, object]] = []
    meta: dict[str, object] = {
        "kind": "meta",
        "schema": 1,
        "end_time_ns": end_time_ns,
        "instruments": len(telemetry.registry),
        "spans": len(telemetry.tracer),
        "spans_dropped": telemetry.tracer.dropped,
        "audit_records": len(telemetry.audit),
    }
    if stamp_wall_clock:
        # host-side provenance for the artifact, never a simulation input
        meta["exported_at_unix"] = time.time()
    records.append(meta)
    for instrument in telemetry.registry.instruments():
        row: dict[str, object] = {
            "kind": "instrument",
            "type": instrument.kind,
            "name": instrument.name,
            "labels": dict(instrument.labels),
            "value": instrument.value,
        }
        if isinstance(instrument, Histogram):
            row["count"] = instrument.count
            row["sum"] = instrument.sum
            row["min"] = instrument.min
            row["max"] = instrument.max
            row["buckets"] = list(
                zip(instrument.bounds, instrument.bucket_counts)
            )
        records.append(row)
        series = instrument.series.items()
        if series:
            records.append({
                "kind": "series",
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "samples": series,
            })
    for span in telemetry.tracer.spans():
        records.append({
            "kind": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "category": span.category,
            "track": span.track,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "args": span.args,
        })
    for flip in telemetry.audit.flips:
        records.append({
            "kind": "flip",
            "time_ns": flip.time_ns,
            "vcpu_id": flip.vcpu_id,
            "vcpu": flip.vcpu_name,
            "old": flip.old_type,
            "new": flip.new_type,
            "averages": list(flip.averages),
            "window": [
                {"cursors": list(cursors), "cpu_evidence": cpu_ok}
                for cursors, cpu_ok in flip.window
            ],
        })
    for decision in telemetry.audit.decisions:
        records.append({
            "kind": "decision",
            "time_ns": decision.time_ns,
            "index": decision.decision_index,
            "changed": decision.changed,
            "skipped": decision.skipped,
            "types": list(decision.input_types),
            "pools": [
                {
                    "name": name,
                    "quantum_ns": quantum,
                    "pcpus": list(pcpus),
                    "vcpus": list(vcpus),
                }
                for name, quantum, pcpus, vcpus in decision.pools
            ],
            "spills": list(decision.spills),
        })
    for change in telemetry.audit.ledger:
        records.append({
            "kind": "pool_change",
            "time_ns": change.time_ns,
            "change": change.kind,
            "detail": change.detail,
            "migrations_total": change.migrations_total,
            "pools": [
                {"name": n, "quantum_ns": q, "pcpus": p, "vcpus": v}
                for n, q, p, v in change.pools
            ],
        })
    return records


def write_jsonl(
    path_or_handle: Union[str, TextIO],
    telemetry: "Telemetry",
    end_time_ns: Optional[int] = None,
) -> int:
    """Write one JSON object per line; returns the record count."""
    records = jsonl_records(telemetry, end_time_ns=end_time_ns)
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
    else:
        for record in records:
            path_or_handle.write(json.dumps(record, separators=(",", ":")))
            path_or_handle.write("\n")
    return len(records)


__all__ = [
    "PROMETHEUS_PREFIX",
    "jsonl_records",
    "prometheus_text",
    "write_jsonl",
    "write_prometheus",
]
