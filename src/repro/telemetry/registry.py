"""The counter/gauge/histogram registry.

Instruments are keyed by ``(name, labels)``: the same metric name may
exist once per vCPU, pCPU or pool (``dispatches{vcpu="web.0"}``), and
a label-free instance aggregates machine-wide.  Every instrument keeps
a scalar current value plus a fixed-size :class:`RingBuffer` of
``(virtual time, value)`` samples, filled by :meth:`TelemetryRegistry.
sample` — a periodic probe the machine arms once per accounting window
when telemetry is on.

Overhead contract (DESIGN.md §11): a *disabled* registry must cost one
attribute check on the hot path.  Instrument lookups therefore never
happen behind a disabled flag — callers guard with
``if telemetry.enabled:`` exactly like the ``trace.enabled`` discipline
— and creating an instrument is the slow path anyway: hot code holds
the instrument object and calls :meth:`Counter.inc` directly.

Everything here is a pure function of the virtual clock and program
order: instruments are stored in insertion-ordered dicts and summaries
sort by key, so serial, parallel and cache-replayed runs produce
byte-identical telemetry.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Union

#: A label set in canonical form: sorted ``(key, value)`` pairs.
LabelSet = tuple[tuple[str, str], ...]

#: Default ring-buffer depth: at one sample per 30 ms accounting window
#: this holds ~15 s of virtual time, longer than any single experiment
#: measurement window.
DEFAULT_RING = 512

#: Default histogram bucket upper bounds (ns-scale quantities: wake
#: latencies, span durations, quantum slices from 10 µs to 100 ms).
DEFAULT_BUCKETS = (
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    30_000_000.0,
    100_000_000.0,
)


def canonical_labels(labels: Mapping[str, object]) -> LabelSet:
    """Sorted, stringified label pairs — the dict key and export order."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class RingBuffer:
    """A fixed-capacity ``(time, value)`` series that forgets the past."""

    __slots__ = ("capacity", "_items", "_next")

    def __init__(self, capacity: int = DEFAULT_RING) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._items: list[tuple[int, float]] = []
        self._next = 0

    def push(self, time_ns: int, value: float) -> None:
        if len(self._items) < self.capacity:
            self._items.append((time_ns, value))
        else:
            self._items[self._next] = (time_ns, value)
            self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> list[tuple[int, float]]:
        """Samples oldest-first (unwraps the ring)."""
        if len(self._items) < self.capacity:
            return list(self._items)
        return self._items[self._next:] + self._items[:self._next]


class Counter:
    """A monotonically increasing count (events, migrations, flips)."""

    __slots__ = ("name", "labels", "value", "series", "help")

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet, ring: int) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.series = RingBuffer(ring)
        #: optional ``# HELP`` text for Prometheus exposition
        self.help = ""

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, pool load, live VMs)."""

    __slots__ = ("name", "labels", "value", "series", "help")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet, ring: int) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.series = RingBuffer(ring)
        #: optional ``# HELP`` text for Prometheus exposition
        self.help = ""

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A bucketed distribution (latencies, slice lengths).

    ``value`` mirrors the observation count so histograms sample into
    their ring buffer uniformly with counters and gauges.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts",
        "count", "sum", "min", "max", "value", "series", "help",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        ring: int,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        self.value = 0.0
        self.series = RingBuffer(ring)
        #: optional ``# HELP`` text for Prometheus exposition
        self.help = ""

    def observe(self, value: float) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.value = float(self.count)
        self.sum += value
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


Instrument = Union[Counter, Gauge, Histogram]


class TelemetryRegistry:
    """Get-or-create instrument store with deterministic iteration."""

    __slots__ = ("enabled", "ring", "_instruments", "samples_taken")

    def __init__(self, enabled: bool = True, ring: int = DEFAULT_RING) -> None:
        self.enabled = enabled
        self.ring = ring
        self._instruments: dict[tuple[str, str, LabelSet], Instrument] = {}
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", **labels: object
    ) -> Counter:
        instrument = self._get("counter", name, labels)
        if instrument is None:
            instrument = Counter(name, canonical_labels(labels), self.ring)
            self._put(instrument)
        assert isinstance(instrument, Counter)
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        instrument = self._get("gauge", name, labels)
        if instrument is None:
            instrument = Gauge(name, canonical_labels(labels), self.ring)
            self._put(instrument)
        assert isinstance(instrument, Gauge)
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: object,
    ) -> Histogram:
        instrument = self._get("histogram", name, labels)
        if instrument is None:
            instrument = Histogram(
                name, canonical_labels(labels), self.ring, bounds
            )
            self._put(instrument)
        assert isinstance(instrument, Histogram)
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def _get(
        self, kind: str, name: str, labels: Mapping[str, object]
    ) -> Optional[Instrument]:
        return self._instruments.get((kind, name, canonical_labels(labels)))

    def _put(self, instrument: Instrument) -> None:
        key = (instrument.kind, instrument.name, instrument.labels)
        self._instruments[key] = instrument

    # ------------------------------------------------------------------
    # time series
    # ------------------------------------------------------------------
    def sample(self, time_ns: int) -> None:
        """Push every instrument's current value into its ring buffer."""
        self.samples_taken += 1
        for instrument in self._instruments.values():
            instrument.series.push(time_ns, instrument.value)

    def series_of(
        self, name: str, **labels: object
    ) -> list[tuple[int, float]]:
        """The sampled ``(time, value)`` series of one instrument."""
        key = canonical_labels(labels)
        for (_, iname, ilabels), instrument in self._instruments.items():
            if iname == name and ilabels == key:
                return instrument.series.items()
        return []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> Iterator[Instrument]:
        """Instruments sorted by (kind, name, labels) — export order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def summary(self) -> dict[str, float]:
        """A flat, picklable ``qualified-name -> value`` snapshot.

        This is what sweep results carry across process boundaries and
        through the result cache; keys are stable and sorted so the
        serial ≡ parallel ≡ cached equivalence extends to telemetry.
        """
        out: dict[str, float] = {}
        for instrument in self.instruments():
            out[qualified_name(instrument.name, instrument.labels)] = (
                instrument.value
            )
        return out


def qualified_name(name: str, labels: LabelSet) -> str:
    """``dispatches{pool=s0.C1,vcpu=web.0}`` — the flat summary key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_RING",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "LabelSet",
    "RingBuffer",
    "TelemetryRegistry",
    "canonical_labels",
    "qualified_name",
]
