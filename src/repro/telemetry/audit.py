"""The vTRS/AQL decision audit trail.

Makes every online scheduling decision *explainable* after the fact:

* every vTRS **type flip** records the full ``n``-sample cursor-window
  snapshot the verdict was computed from, plus the window averages, so
  "why did web.0 become IOInt at t=210 ms?" is answerable by
  recomputing the argmax from the recorded window (the audit test does
  exactly that);
* every AQL **clustering run** (Algorithms 1/2) records its input
  types, the resulting cluster assignments, and the spill-to-default
  reasons the clustering emitted (mixed-quantum pCPU shares, surplus
  filler);
* every **pool change** — plan installs, pool collapses, fault-driven
  re-absorptions — lands in a ledger with its migration delta.

Records are frozen dataclasses of plain types (ints, strings, tuples),
so an audit pickles across process boundaries and into the result
cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: One recorded cursor sample: sorted (type-name, cursor) pairs plus
#: whether the period carried CPU evidence.
WindowSample = tuple[tuple[tuple[str, float], ...], bool]


@dataclass(frozen=True)
class TypeFlip:
    """A vCPU's vTRS verdict changed (or was first established)."""

    time_ns: int
    vcpu_id: int
    vcpu_name: str
    #: None on the first-ever verdict
    old_type: Optional[str]
    new_type: str
    #: the full sliding window the verdict was computed from,
    #: oldest sample first
    window: tuple[WindowSample, ...]
    #: the window averages the argmax ran over
    averages: tuple[tuple[str, float], ...]

    @property
    def winning_average(self) -> float:
        return dict(self.averages)[self.new_type]


@dataclass(frozen=True)
class ClusterDecision:
    """One AQL decide(): re-type, re-cluster, maybe re-plan."""

    time_ns: int
    decision_index: int
    #: sorted (vcpu_id, type-name) input to the clustering
    input_types: tuple[tuple[int, str], ...]
    changed: bool
    #: (pool name, quantum_ns, pcpu ids, vcpu ids) per planned pool
    pools: tuple[tuple[str, int, tuple[int, ...], tuple[int, ...]], ...]
    #: (vcpu_id, reason) for every vCPU the clustering spilled into a
    #: default-quantum pool instead of its type's calibrated one
    spills: tuple[tuple[int, str], ...]
    #: True while the initial cold-start delay is still sitting out
    skipped: bool = False


@dataclass(frozen=True)
class PoolChange:
    """One pool-layout mutation, for the ledger."""

    time_ns: int
    #: "plan" | "collapse" | "absorb" | "offline" | "online"
    kind: str
    detail: str
    #: machine-wide migration count after the change
    migrations_total: int
    #: (pool name, quantum_ns, pcpus, vcpus) after the change
    pools: tuple[tuple[str, int, int, int], ...]


class DecisionAudit:
    """Append-only store for the three record kinds."""

    __slots__ = ("enabled", "flips", "decisions", "ledger")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.flips: list[TypeFlip] = []
        self.decisions: list[ClusterDecision] = []
        self.ledger: list[PoolChange] = []

    # ------------------------------------------------------------------
    # recording (callers guard with ``telemetry.enabled``)
    # ------------------------------------------------------------------
    def record_flip(self, flip: TypeFlip) -> None:
        self.flips.append(flip)

    def record_decision(self, decision: ClusterDecision) -> None:
        self.decisions.append(decision)

    def record_pool_change(self, change: PoolChange) -> None:
        self.ledger.append(change)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def flips_of(self, vcpu_id: int) -> list[TypeFlip]:
        return [f for f in self.flips if f.vcpu_id == vcpu_id]

    def summary(self) -> dict[str, float]:
        """Flat aggregate counts (merged into the registry summary)."""
        return {
            "audit_type_flips": float(len(self.flips)),
            "audit_decisions": float(len(self.decisions)),
            "audit_plan_changes": float(
                sum(1 for d in self.decisions if d.changed)
            ),
            "audit_pool_ledger": float(len(self.ledger)),
        }

    def __len__(self) -> int:
        return len(self.flips) + len(self.decisions) + len(self.ledger)


__all__ = [
    "ClusterDecision",
    "DecisionAudit",
    "PoolChange",
    "TypeFlip",
    "WindowSample",
]
