"""Fleet-level metric folds over host-epoch results.

Pure functions from :class:`~repro.fleet.model.HostEpochResult`
sequences to summary numbers, built on the shared series helpers in
:mod:`repro.metrics.stats` — every number is a deterministic fold over
per-cell values, so serial, sharded and cache-replayed fleet runs
summarise identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.fleet.model import HostEpochResult
from repro.metrics.stats import percentile
from repro.sim.units import MS


@dataclass
class EpochMetrics:
    """One epoch of the fleet, folded across its hosts."""

    epoch: int
    #: resident population once the epoch's churn has been applied
    vms: int
    #: hosts that ran at least one VM this epoch
    active_hosts: int
    arrivals: int
    departures: int
    #: inter-host placement migrations applied at this epoch's barrier
    migrations: int
    #: p99 request latency across every io VM in the fleet (ms)
    p99_ms: float
    #: mean busy fraction across active hosts
    mean_util: float
    #: max-min busy fraction across active hosts (placement balance)
    util_spread: float
    #: VMs per active host
    consolidation: float
    #: work units completed fleet-wide
    units: int


def fold_epoch(
    epoch: int,
    results: Sequence[HostEpochResult],
    vms: int,
    arrivals: int,
    departures: int,
    migrations: int,
) -> EpochMetrics:
    """Fold one epoch's host results into fleet metrics."""
    latencies: list[float] = []
    utils: list[float] = []
    units = 0
    active = 0
    for result in results:
        if not result.vm_values:
            continue
        active += 1
        latencies.extend(result.io_latencies_ns)
        utils.append(result.util)
        units += result.units
    return EpochMetrics(
        epoch=epoch,
        vms=vms,
        active_hosts=active,
        arrivals=arrivals,
        departures=departures,
        migrations=migrations,
        p99_ms=(percentile(latencies, 99.0) / MS) if latencies else 0.0,
        mean_util=(sum(utils) / len(utils)) if utils else 0.0,
        util_spread=(max(utils) - min(utils)) if utils else 0.0,
        consolidation=(vms / active) if active else 0.0,
        units=units,
    )


@dataclass
class FleetRun:
    """One (story, placer) fleet simulation, fully folded (picklable)."""

    story: str
    placer: str
    hosts: int
    epochs: list[EpochMetrics] = field(default_factory=list)
    #: largest end-of-epoch population seen
    peak_vms: int = 0
    total_migrations: int = 0
    #: p99 over every request latency across all epochs (ms)
    p99_ms: float = 0.0
    #: mean VMs-per-active-host over epochs
    consolidation: float = 0.0
    #: inter-host migrations per VM-epoch (placement churn)
    migration_churn: float = 0.0
    units: int = 0
    #: summed per-cell telemetry (empty unless telemetry was on)
    telemetry_summary: dict[str, float] = field(default_factory=dict)


def fold_run(
    story: str,
    placer: str,
    hosts: int,
    epochs: Sequence[EpochMetrics],
    all_latencies_ns: Sequence[float],
) -> FleetRun:
    """Fold per-epoch metrics into the run-level summary."""
    run = FleetRun(story=story, placer=placer, hosts=hosts)
    run.epochs = list(epochs)
    run.peak_vms = max((e.vms for e in epochs), default=0)
    run.total_migrations = sum(e.migrations for e in epochs)
    run.p99_ms = (
        percentile(all_latencies_ns, 99.0) / MS if all_latencies_ns else 0.0
    )
    populated = [e for e in epochs if e.active_hosts]
    run.consolidation = (
        sum(e.consolidation for e in populated) / len(populated)
        if populated
        else 0.0
    )
    vm_epochs = sum(e.vms for e in epochs)
    run.migration_churn = (
        run.total_migrations / vm_epochs if vm_epochs else 0.0
    )
    run.units = sum(e.units for e in epochs)
    return run


__all__ = ["EpochMetrics", "FleetRun", "fold_epoch", "fold_run"]
