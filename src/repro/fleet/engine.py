"""The fleet simulation: epochs, barriers, placement, sharding.

A :class:`FleetSimulation` drives one ``(story, placer)`` pair through
``spec.epochs`` bulk-synchronous epochs:

1. the :class:`~repro.fleet.traffic.TrafficGenerator` plans the
   epoch's arrivals/departures/phase changes (a pure function of the
   fleet seed);
2. at the barrier, the placer migrates type-minority residents
   (``rebalance``) and assigns arrivals (``place``);
3. every populated host becomes one
   :func:`~repro.fleet.model.run_host_epoch` cell, fanned out through
   the :class:`~repro.exec.SweepRunner` work-stealing pool — each
   epoch is one engine sweep, so the bulk-synchronous barrier is
   exactly an engine phase boundary (plan → probe → execute → fold) —
   migrants-in and arrivals enter through ``VmBoot`` events (migrants
   pay the migration lag), departures through ``VmShutdown``;
4. results are folded into :class:`~repro.fleet.metrics.EpochMetrics`
   and the detected vTRS types feed the next barrier's placement.

Host-epoch seeds derive from ``(fleet seed, story, epoch, host)``, and
every loop iterates hosts and VM names in sorted order, so the whole
run is a pure function of ``(spec, story, placer, seed)`` — running
the cells serially or across workers is byte-identical.  When the
runner carries a run directory, every host-epoch cell is journalled
under its content-addressed cache key, so a killed fleet run resumes
mid-story: completed epochs replay from the journal (the re-planned
cells hash to the same keys) and the interrupted epoch re-executes
only its unfinished hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.dynamics.events import (
    ChurnEvent,
    ChurnTimeline,
    PhaseChange,
    VmBoot,
    VmShutdown,
)
from repro.exec import Cell, SweepRunner
from repro.exec.runner import aggregate_telemetry
from repro.fleet.catalog import HOST_CATALOG, VMSpec, derive_seed
from repro.fleet.metrics import EpochMetrics, FleetRun, fold_epoch, fold_run
from repro.fleet.model import SCHEDULERS, HostEpochResult, run_host_epoch
from repro.fleet.placement import HostState, Migration, Placer, vm_type
from repro.fleet.traffic import DiurnalStory, TrafficGenerator, event_offset_ns
from repro.hypervisor.hostspec import HostSpec
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class FleetSpec:
    """Shape and rhythm of a fleet simulation (frozen, picklable)."""

    hosts: int = 64
    host_class: str = "medium"
    #: vCPU:pCPU consolidation — VM slots per host = pcpus * ratio
    vcpu_ratio: int = 2
    scheduler: str = "aql"
    epochs: int = 3
    warmup_ns: int = 120 * MS
    epoch_ns: int = 320 * MS
    #: how late into the epoch a migrated VM boots on its new host
    migration_lag_ns: int = 40 * MS
    #: inter-host moves the placer may make per barrier
    migration_budget: int = 8
    #: closed-loop clients per io-mode VM
    clients: int = 4
    #: run per-host telemetry inside every cell (summed into the run)
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError("need at least one host")
        if self.host_class not in HOST_CATALOG:
            raise ValueError(
                f"unknown host class {self.host_class!r}; "
                f"choose from {sorted(HOST_CATALOG)}"
            )
        if self.vcpu_ratio < 1:
            raise ValueError("vcpu_ratio must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {SCHEDULERS}"
            )
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.warmup_ns <= 0 or self.epoch_ns <= 0:
            raise ValueError("warmup and epoch durations must be positive")
        if not 0 < self.migration_lag_ns < self.epoch_ns:
            raise ValueError("migration lag must fall inside the epoch")
        if self.migration_budget < 0:
            raise ValueError("migration budget must be >= 0")
        if self.clients < 1:
            raise ValueError("need at least one client per io VM")

    @property
    def host_spec(self) -> HostSpec:
        return HOST_CATALOG[self.host_class]

    @property
    def slots_per_host(self) -> int:
        return self.host_spec.pcpus * self.vcpu_ratio

    @property
    def capacity(self) -> int:
        """Total VM slots across the fleet."""
        return self.hosts * self.slots_per_host


class FleetSimulation:
    """One ``(story, placer)`` fleet run over the epoch barrier loop."""

    def __init__(
        self,
        spec: FleetSpec,
        story: DiurnalStory,
        placer: Placer,
        seed: int = 0,
        runner: Optional[SweepRunner] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.spec = spec
        self.story = story
        self.placer = placer
        self.seed = seed
        self.runner = runner if runner is not None else SweepRunner()
        #: fleet-level control-plane telemetry (the cells' per-host
        #: telemetry is separate and controlled by ``spec.telemetry``)
        self.telemetry = telemetry
        self.host_ids = tuple(f"h{i:03d}" for i in range(spec.hosts))
        #: host id -> vm name -> spec (the steady residents)
        self.residents: dict[str, dict[str, VMSpec]] = {
            host_id: {} for host_id in self.host_ids
        }
        #: vm name -> detected vTRS type label (absent until the host's
        #: scheduler has classified the VM)
        self.detected: dict[str, str] = {}

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    def _alive(self) -> dict[str, VMSpec]:
        alive: dict[str, VMSpec] = {}
        for host_id in self.host_ids:
            for name in sorted(self.residents[host_id]):
                alive[name] = self.residents[host_id][name]
        return alive

    def _view(
        self, exclude: frozenset[str] = frozenset()
    ) -> tuple[HostState, ...]:
        """Placer's view; ``exclude`` hides this epoch's departures.

        A departing VM drains mid-epoch, so its slot is free again by
        the barrier's end state — hiding it lets arrivals overlap the
        drain (briefly double-occupied, like any real fleet) while the
        steady-state slot invariant still holds at every barrier.
        """
        return tuple(
            HostState(
                host_id=host_id,
                slots=self.spec.slots_per_host,
                vms=tuple(
                    name
                    for name in sorted(self.residents[host_id])
                    if name not in exclude
                ),
            )
            for host_id in self.host_ids
        )

    def _types(self, alive: dict[str, VMSpec]) -> dict[str, str]:
        return {
            name: vm_type(name, alive[name], self.detected)
            for name in sorted(alive)
        }

    def _host_of(self, name: str) -> str:
        for host_id in self.host_ids:
            if name in self.residents[host_id]:
                return host_id
        raise KeyError(f"no resident named {name!r}")

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> FleetRun:
        spec = self.spec
        # one simulation cell per host per epoch: hint the whole-run
        # total so the ops plane's /status ETA projects over the full
        # campaign instead of the epochs planned so far (observability
        # metadata only — execution never reads it)
        self.runner.engine.expect_cells(spec.epochs * len(self.host_ids))
        traffic = TrafficGenerator(
            self.story, capacity=spec.capacity, seed=self.seed
        )
        epochs: list[EpochMetrics] = []
        all_latencies: list[float] = []
        all_results: list[HostEpochResult] = []

        for epoch in range(spec.epochs):
            alive = self._alive()
            plan = traffic.epoch_plan(epoch, alive)
            departing = frozenset(plan.departures)

            migrations: list[Migration] = []
            if epoch > 0 and spec.migration_budget > 0:
                migrations = self.placer.rebalance(
                    self._view(exclude=departing),
                    self._types(alive),
                    spec.migration_budget,
                )
            # move migrants in the steady state right away — they
            # occupy a destination slot this epoch (they boot there at
            # the migration lag), and their source slot frees up
            migrants: dict[str, tuple[str, VMSpec]] = {}
            for move in migrations:
                vm_spec = self.residents[move.src].pop(move.vm)
                self.residents[move.dst][move.vm] = vm_spec
                migrants[move.vm] = (move.dst, vm_spec)

            assignment = self.placer.place(
                plan.arrivals, self._view(exclude=departing), self._types(alive)
            )

            # ---- per-host epoch timelines ------------------------------
            events: dict[str, list[ChurnEvent]] = {
                host_id: [] for host_id in self.host_ids
            }
            span = spec.epoch_ns // 2
            for name in sorted(migrants):
                dst, vm_spec = migrants[name]
                events[dst].append(
                    VmBoot(
                        spec.migration_lag_ns, name=name, mode=vm_spec.mode
                    )
                )
            for vm_spec in plan.arrivals:
                events[assignment[vm_spec.name]].append(
                    VmBoot(
                        event_offset_ns(self.seed, epoch, vm_spec.name, span),
                        name=vm_spec.name,
                        mode=vm_spec.mode,
                    )
                )
            for name in plan.departures:
                events[self._host_of(name)].append(
                    VmShutdown(
                        event_offset_ns(self.seed, epoch, name, span),
                        name=name,
                    )
                )
            for name, mode in plan.phase_changes:
                if name in migrants or name in departing:
                    continue  # in flight or leaving: let it be
                at_ns = min(
                    span + event_offset_ns(self.seed, epoch, name, span),
                    spec.epoch_ns - MS,
                )
                events[self._host_of(name)].append(
                    PhaseChange(at_ns, name=name, mode=mode)
                )

            # ---- shard the hosts over the pool -------------------------
            cells: list[Cell] = []
            cell_hosts: list[str] = []
            for host_id in self.host_ids:
                residents = tuple(
                    self.residents[host_id][name]
                    for name in sorted(self.residents[host_id])
                    if name not in migrants  # in flight: boots via event
                )
                host_events = sorted(
                    events[host_id],
                    key=lambda e: (e.at_ns, e.kind, getattr(e, "name", "")),
                )
                if not residents and not host_events:
                    continue
                cells.append(
                    Cell(
                        run_host_epoch,
                        dict(
                            host_id=host_id,
                            host=spec.host_spec,
                            residents=residents,
                            timeline=ChurnTimeline(tuple(host_events)),
                            warmup_ns=spec.warmup_ns,
                            measure_ns=spec.epoch_ns,
                            seed=derive_seed(
                                self.seed, self.story.name, epoch, host_id
                            ),
                            scheduler=spec.scheduler,
                            clients=spec.clients,
                            telemetry=spec.telemetry,
                        ),
                        label=(
                            f"fleet:{self.story.name}:{self.placer.name}"
                            f":e{epoch}:{host_id}"
                        ),
                    )
                )
                cell_hosts.append(host_id)

            stage = (
                f"{self.story.name}:{self.placer.name} "
                f"epoch {epoch + 1}/{spec.epochs}"
            )
            # one engine sweep per epoch: the bulk-synchronous barrier
            # is an engine phase boundary, and the stage label rides
            # the event stream into progress lines and event logs
            results = self.runner.run(cells, stage=stage)
            by_host = dict(zip(cell_hosts, results))

            # ---- apply the epoch's churn to the steady state -----------
            for name in plan.departures:
                host_id = self._host_of(name)
                del self.residents[host_id][name]
                self.detected.pop(name, None)
            for vm_spec in plan.arrivals:
                self.residents[assignment[vm_spec.name]][vm_spec.name] = (
                    vm_spec
                )
            for name, mode in plan.phase_changes:
                if name in migrants or name in departing:
                    continue
                host_id = self._host_of(name)
                old = self.residents[host_id][name]
                self.residents[host_id][name] = replace(old, mode=mode)
                # the detected type described the old behaviour
                self.detected.pop(name, None)

            population = 0
            for host_id in self.host_ids:
                population += len(self.residents[host_id])
            for host_id in cell_hosts:
                result = by_host[host_id]
                all_latencies.extend(result.io_latencies_ns)
                all_results.append(result)
                for name in sorted(result.detected):
                    if name in self.residents[host_id]:
                        self.detected[name] = result.detected[name]
            epochs.append(
                fold_epoch(
                    epoch,
                    [by_host[host_id] for host_id in cell_hosts],
                    vms=population,
                    arrivals=len(plan.arrivals),
                    departures=len(plan.departures),
                    migrations=len(migrations),
                )
            )
            self._emit_epoch(epochs[-1])

        run = fold_run(
            self.story.name,
            self.placer.name,
            spec.hosts,
            epochs,
            all_latencies,
        )
        if spec.telemetry:
            run.telemetry_summary = aggregate_telemetry(all_results)
        return run

    # ------------------------------------------------------------------
    # fleet-level telemetry (control plane, virtual epoch clock)
    # ------------------------------------------------------------------
    def _emit_epoch(self, metrics: EpochMetrics) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        labels = dict(story=self.story.name, placer=self.placer.name)
        registry = telemetry.registry
        registry.counter("fleet_arrivals", **labels).inc(
            float(metrics.arrivals)
        )
        registry.counter("fleet_departures", **labels).inc(
            float(metrics.departures)
        )
        registry.counter("fleet_migrations", **labels).inc(
            float(metrics.migrations)
        )
        registry.counter("fleet_units", **labels).inc(float(metrics.units))
        registry.gauge("fleet_vms", **labels).set(float(metrics.vms))
        registry.gauge("fleet_active_hosts", **labels).set(
            float(metrics.active_hosts)
        )
        registry.gauge("fleet_util_spread", **labels).set(metrics.util_spread)
        registry.sample(
            (metrics.epoch + 1) * (self.spec.warmup_ns + self.spec.epoch_ns)
        )


def run_fleet_story(
    spec: FleetSpec,
    story: DiurnalStory,
    placer: Placer,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    telemetry: Optional["Telemetry"] = None,
) -> FleetRun:
    """Convenience wrapper: build the simulation and run it."""
    return FleetSimulation(
        spec, story, placer, seed=seed, runner=runner, telemetry=telemetry
    ).run()


__all__ = ["FleetSimulation", "FleetSpec", "run_fleet_story"]
