"""VM placement over the fleet: bin-packing baselines + AQL-aware.

A placer answers two questions at each epoch barrier: where do
arriving VMs go (:meth:`Placer.place`), and which resident VMs are
worth migrating before the next epoch starts
(:meth:`Placer.rebalance`).  It sees the fleet as a sorted tuple of
:class:`HostState` views plus a ``vm name -> vTRS type`` map (the
detected type once the host scheduler has classified the VM, the
mode-derived prior before that).

``first_fit`` / ``best_fit`` are classical bin packers and never
migrate.  ``aql_aware`` exploits the paper's central observation —
each vTRS type wants a *different* quantum, and AQL_Sched carves one
cpupool per type — by co-locating VMs of the same type: fewer distinct
types per host means fewer, larger pools and less pCPU fragmentation.
Between epochs it moves type-minority VMs to hosts where their type
already dominates, bounded by a per-epoch migration budget.

Everything iterates in sorted/host order, so placement is a pure
function of its inputs (the serial ≡ sharded equivalence depends on
it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.types import VCpuType
from repro.fleet.catalog import MODE_PRIOR, VMSpec


class PlacementError(RuntimeError):
    """The fleet has no slot left for an arriving VM."""


@dataclass(frozen=True)
class HostState:
    """A placer's view of one host at an epoch barrier."""

    host_id: str
    slots: int
    vms: tuple[str, ...]

    @property
    def free(self) -> int:
        return self.slots - len(self.vms)

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"{self.host_id}: need at least one slot")
        if len(self.vms) > self.slots:
            raise ValueError(
                f"{self.host_id}: {len(self.vms)} VMs exceed "
                f"{self.slots} slots"
            )


@dataclass(frozen=True)
class Migration:
    """One inter-host move decided at an epoch barrier."""

    vm: str
    src: str
    dst: str


def vm_type(vm: str, spec: VMSpec, types: Mapping[str, str]) -> str:
    """Detected vTRS type when known, else the mode-derived prior."""
    return types.get(vm, MODE_PRIOR[spec.mode])


class Placer:
    """Placement policy interface (stateless; all state is arguments)."""

    name = "base"

    def place(
        self,
        arrivals: Sequence[VMSpec],
        hosts: Sequence[HostState],
        types: Mapping[str, str],
    ) -> dict[str, str]:
        """Assign every arrival a host; ``vm name -> host id``."""
        raise NotImplementedError

    def rebalance(
        self,
        hosts: Sequence[HostState],
        types: Mapping[str, str],
        budget: int,
    ) -> list[Migration]:
        """Inter-host moves for the next epoch (empty by default)."""
        return []


class FirstFit(Placer):
    """Scan hosts in id order; take the first with a free slot."""

    name = "first_fit"

    def place(
        self,
        arrivals: Sequence[VMSpec],
        hosts: Sequence[HostState],
        types: Mapping[str, str],
    ) -> dict[str, str]:
        free = {host.host_id: host.free for host in hosts}
        assignment: dict[str, str] = {}
        for vm in arrivals:
            for host in hosts:
                if free[host.host_id] > 0:
                    assignment[vm.name] = host.host_id
                    free[host.host_id] -= 1
                    break
            else:
                raise PlacementError(f"no slot left for {vm.name!r}")
        return assignment


class BestFit(Placer):
    """Tightest fit: the fullest host that still has a slot."""

    name = "best_fit"

    def place(
        self,
        arrivals: Sequence[VMSpec],
        hosts: Sequence[HostState],
        types: Mapping[str, str],
    ) -> dict[str, str]:
        free = {host.host_id: host.free for host in hosts}
        assignment: dict[str, str] = {}
        for vm in arrivals:
            best: Optional[HostState] = None
            for host in hosts:
                slack = free[host.host_id]
                if slack <= 0:
                    continue
                if best is None or slack < free[best.host_id]:
                    best = host
            if best is None:
                raise PlacementError(f"no slot left for {vm.name!r}")
            assignment[vm.name] = best.host_id
            free[best.host_id] -= 1
        return assignment


def _plurality(counts: Mapping[str, int]) -> Optional[str]:
    """The host's dominant type (max count, lexicographic tie-break)."""
    best: Optional[str] = None
    for label in sorted(counts):
        if counts[label] <= 0:
            continue
        if best is None or counts[label] > counts[best]:
            best = label
    return best


class AqlAware(Placer):
    """Co-locate VMs by vTRS type; migrate minorities at barriers."""

    name = "aql_aware"

    #: the placer's prior for a VM whose type nobody knows yet
    default_type = str(VCpuType.LOLCF)

    def place(
        self,
        arrivals: Sequence[VMSpec],
        hosts: Sequence[HostState],
        types: Mapping[str, str],
    ) -> dict[str, str]:
        free = {host.host_id: host.free for host in hosts}
        # per-host type histogram, updated as arrivals land
        counts: dict[str, dict[str, int]] = {}
        for host in hosts:
            histogram: dict[str, int] = {}
            for vm in host.vms:
                label = types.get(vm, self.default_type)
                histogram[label] = histogram.get(label, 0) + 1
            counts[host.host_id] = histogram

        assignment: dict[str, str] = {}
        for vm in arrivals:
            label = types.get(vm.name, MODE_PRIOR[vm.mode])
            best: Optional[HostState] = None
            best_key: tuple[int, int] = (-1, -1)
            for host in hosts:
                slack = free[host.host_id]
                if slack <= 0:
                    continue
                same = counts[host.host_id].get(label, 0)
                # most type-mates first; among equals, the emptiest
                # host (a fresh "type home" instead of a mixed one)
                key = (same, slack)
                if best is None or key > best_key:
                    best, best_key = host, key
            if best is None:
                raise PlacementError(f"no slot left for {vm.name!r}")
            assignment[vm.name] = best.host_id
            free[best.host_id] -= 1
            histogram = counts[best.host_id]
            histogram[label] = histogram.get(label, 0) + 1
        return assignment

    def rebalance(
        self,
        hosts: Sequence[HostState],
        types: Mapping[str, str],
        budget: int,
    ) -> list[Migration]:
        free = {host.host_id: host.free for host in hosts}
        counts: dict[str, dict[str, int]] = {}
        for host in hosts:
            histogram: dict[str, int] = {}
            for vm in host.vms:
                label = types.get(vm, self.default_type)
                histogram[label] = histogram.get(label, 0) + 1
            counts[host.host_id] = histogram

        moves: list[Migration] = []
        for host in hosts:
            if len(moves) >= budget:
                break
            for vm in sorted(host.vms):
                if len(moves) >= budget:
                    break
                label = types.get(vm, self.default_type)
                dominant = _plurality(counts[host.host_id])
                if dominant is None or label == dominant:
                    continue
                # a minority VM: find a host where its type already
                # rules and a slot is open; failing that, an empty
                # host seeds a fresh home for the type
                best: Optional[HostState] = None
                best_same = 0
                fallback: Optional[HostState] = None
                for candidate in hosts:
                    if candidate.host_id == host.host_id:
                        continue
                    if free[candidate.host_id] <= 0:
                        continue
                    ruling = _plurality(counts[candidate.host_id])
                    if ruling is None and fallback is None:
                        fallback = candidate
                    if ruling != label:
                        continue
                    same = counts[candidate.host_id].get(label, 0)
                    if best is None or same > best_same:
                        best, best_same = candidate, same
                if best is None:
                    best = fallback
                if best is None:
                    continue
                moves.append(Migration(vm, host.host_id, best.host_id))
                free[host.host_id] += 1
                free[best.host_id] -= 1
                src_histogram = counts[host.host_id]
                src_histogram[label] = src_histogram.get(label, 0) - 1
                dst_histogram = counts[best.host_id]
                dst_histogram[label] = dst_histogram.get(label, 0) + 1
        return moves


#: placement policies the fleet experiment compares, by name
PLACERS: dict[str, type[Placer]] = {
    FirstFit.name: FirstFit,
    BestFit.name: BestFit,
    AqlAware.name: AqlAware,
}


def make_placer(name: str) -> Placer:
    cls = PLACERS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown placer {name!r}; choose from {sorted(PLACERS)}"
        )
    return cls()


__all__ = [
    "AqlAware",
    "BestFit",
    "FirstFit",
    "HostState",
    "Migration",
    "PLACERS",
    "Placer",
    "PlacementError",
    "make_placer",
    "vm_type",
]
