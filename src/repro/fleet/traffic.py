"""Open-loop fleet traffic: seeded diurnal load curves.

A :class:`DiurnalStory` is a repeating load shape (fraction of the
fleet's VM-slot capacity per epoch) plus a flavour mix and churn
rates.  The :class:`TrafficGenerator` turns it into per-epoch
:class:`EpochTraffic` plans — arrivals, departures and phase changes —
expressed in the :mod:`repro.dynamics` churn vocabulary by the fleet
engine.

Determinism: every draw flows through a per-``(seed, story, epoch)``
:class:`~repro.sim.rng.RngFactory` stream, and all candidate lists are
sorted before sampling, so the plan for epoch *e* is a pure function
of the fleet seed and the story — independent of sharding, placement
policy, or how previous epochs were executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.fleet.catalog import VM_CATALOG, VMSpec, derive_seed
from repro.sim.rng import RngFactory
from repro.sim.units import MS


@dataclass(frozen=True)
class DiurnalStory:
    """A named load curve: the fleet's day, one entry per epoch slot."""

    name: str
    #: target population as a fraction of slot capacity, indexed by
    #: ``epoch % len(shape)`` — the diurnal cycle
    shape: tuple[float, ...]
    #: ``(flavour, weight)`` draw table for arriving VMs
    flavor_mix: tuple[tuple[str, float], ...]
    #: fraction of the alive population departing each epoch (on top
    #: of any curve-driven shrink)
    churn: float = 0.06
    #: fraction of surviving VMs switching behaviour mode each epoch
    phase_rate: float = 0.05

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("story needs at least one shape slot")
        for value in self.shape:
            if not 0.0 < value <= 1.0:
                raise ValueError(f"shape values must be in (0, 1], got {value}")
        if not self.flavor_mix:
            raise ValueError("story needs a flavour mix")
        for flavor, weight in self.flavor_mix:
            if flavor not in VM_CATALOG:
                raise ValueError(f"unknown flavour {flavor!r}")
            if weight <= 0:
                raise ValueError(f"flavour {flavor!r}: weight must be > 0")
        if not 0.0 <= self.churn < 1.0:
            raise ValueError("churn must be in [0, 1)")
        if not 0.0 <= self.phase_rate < 1.0:
            raise ValueError("phase_rate must be in [0, 1)")


#: the two stock diurnal stories the fleet experiment compares
STORIES: dict[str, DiurnalStory] = {
    # an office day: quiet morning, sustained busy plateau, evening
    # drain — the web/batch mix of an interactive service
    "weekday": DiurnalStory(
        "weekday",
        shape=(0.45, 0.75, 0.99, 0.9, 0.65, 0.4),
        flavor_mix=(
            ("web", 0.35),
            ("batch", 0.25),
            ("stream", 0.15),
            ("lock", 0.1),
            ("light", 0.15),
        ),
    ),
    # overnight batch windows: load swings hard between analytics
    # bursts and near-idle valleys, heavy on cache-hungry flavours
    "batchnight": DiurnalStory(
        "batchnight",
        shape=(0.35, 0.9, 0.5, 0.95, 0.4, 0.85),
        flavor_mix=(
            ("batch", 0.35),
            ("stream", 0.3),
            ("web", 0.15),
            ("light", 0.2),
        ),
        churn=0.1,
        phase_rate=0.08,
    ),
}


@dataclass(frozen=True)
class EpochTraffic:
    """What the outside world does to the fleet during one epoch."""

    epoch: int
    target: int
    arrivals: tuple[VMSpec, ...]
    departures: tuple[str, ...]
    #: ``(vm name, new mode)`` per phase change
    phase_changes: tuple[tuple[str, str], ...]


def event_offset_ns(seed: int, epoch: int, name: str, span_ns: int) -> int:
    """Where inside the epoch a VM's churn event fires (deterministic).

    A stable hash of ``(seed, epoch, name)`` spread over ``span_ns`` in
    1 ms steps, starting at 1 ms so events never collide with the
    epoch's own t=0 boundary work.
    """
    steps = max(1, span_ns // MS)
    return MS * (1 + derive_seed(seed, "offset", epoch, name) % steps)


class TrafficGenerator:
    """Seeded open-loop arrivals/departures/phase changes per epoch."""

    def __init__(self, story: DiurnalStory, capacity: int, seed: int) -> None:
        if capacity < 1:
            raise ValueError("fleet capacity must be at least one slot")
        self.story = story
        self.capacity = capacity
        self.seed = seed
        self._rng = RngFactory(derive_seed(seed, "traffic", story.name))
        self._counter = 0

    def target(self, epoch: int) -> int:
        """The curve's population target for this epoch slot."""
        fraction = self.story.shape[epoch % len(self.story.shape)]
        return max(1, round(self.capacity * fraction))

    def _draw_flavor(self, fraction: float) -> str:
        total = sum(weight for _, weight in self.story.flavor_mix)
        cursor = fraction * total
        for flavor, weight in self.story.flavor_mix:
            cursor -= weight
            if cursor < 0:
                return flavor
        return self.story.flavor_mix[-1][0]

    def epoch_plan(
        self, epoch: int, alive: Mapping[str, VMSpec]
    ) -> EpochTraffic:
        """Plan one epoch against the current population."""
        stream = self._rng.stream(f"epoch/{epoch}")
        names = sorted(alive)
        target = self.target(epoch)

        # background churn: a seeded sample of the population leaves
        leaving = round(len(names) * self.story.churn)
        departures: list[str] = []
        if leaving:
            picks = stream.choice(len(names), size=leaving, replace=False)
            departures = sorted(names[int(i)] for i in picks)
        survivors = [name for name in names if name not in set(departures)]

        # then the curve: drain down or arrive up to the target
        deficit = target - len(survivors)
        while deficit < 0 and survivors:
            index = int(stream.integers(0, len(survivors)))
            departures.append(survivors.pop(index))
            deficit += 1
        arrivals: list[VMSpec] = []
        for _ in range(max(0, deficit)):
            flavor = self._draw_flavor(float(stream.random()))
            name = f"vm{self._counter:05d}"
            self._counter += 1
            arrivals.append(VMSpec(name=name, mode=VM_CATALOG[flavor]))

        # phase changes on a seeded sample of the survivors
        flips = round(len(survivors) * self.story.phase_rate)
        phase_changes: list[tuple[str, str]] = []
        if flips:
            picks = stream.choice(len(survivors), size=flips, replace=False)
            modes = sorted(set(VM_CATALOG.values()))
            for i in sorted(int(p) for p in picks):
                name = survivors[i]
                others = [m for m in modes if m != alive[name].mode]
                phase_changes.append(
                    (name, others[int(stream.integers(0, len(others)))])
                )
        return EpochTraffic(
            epoch=epoch,
            target=target,
            arrivals=tuple(arrivals),
            departures=tuple(sorted(departures)),
            phase_changes=tuple(phase_changes),
        )


__all__ = [
    "STORIES",
    "DiurnalStory",
    "EpochTraffic",
    "TrafficGenerator",
    "event_offset_ns",
]
