"""The fleet's shared host/VM catalog.

A datacenter run is described entirely by frozen specs: host classes
are :class:`~repro.hypervisor.hostspec.HostSpec` recipes (the same
recipe the fuzzer and the experiment families build machines from),
and VM flavours map onto the :mod:`repro.dynamics` workload modes.
Everything here is plain picklable data, because specs travel into
host-epoch cells across the :mod:`repro.exec` process pool and into
cache keys.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.types import VCpuType
from repro.dynamics.events import MODES
from repro.hypervisor.hostspec import HostSpec

#: host classes a fleet can be built from (homogeneous per fleet)
HOST_CATALOG: dict[str, HostSpec] = {
    "small": HostSpec(model="i7_3770", pcpus=2),
    "medium": HostSpec(model="i7_3770", pcpus=4),
    "large": HostSpec(model="xeon_e5_4603", pcpus=8, sockets=2),
}


@dataclass(frozen=True)
class VMSpec:
    """One VM in the fleet: a name and a behaviour mode.

    The mode selects the :class:`~repro.dynamics.SwitchableWorkload`
    behaviour (and thereby the vTRS type the host's scheduler will
    eventually detect); phase changes between epochs replace the spec
    with one carrying the new mode.
    """

    name: str
    mode: str
    vcpus: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VM needs a name")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        if self.vcpus != 1:
            raise ValueError("fleet VMs are single-vCPU (one slot each)")


#: VM flavours the traffic generator draws from: flavour -> mode
VM_CATALOG: dict[str, str] = {
    "web": "io",  # closed-loop request service + CGI burner
    "batch": "llcf",  # cache-friendly compute
    "stream": "llco",  # LLC-overflowing scans
    "lock": "spin",  # dense lock activity
    "light": "lolcf",  # small-footprint filler
}

#: expected vTRS type per workload mode — the placer's prior for a VM
#: the host scheduler has not yet classified
MODE_PRIOR: dict[str, str] = {
    "io": str(VCpuType.IOINT),
    "spin": str(VCpuType.CONSPIN),
    "llcf": str(VCpuType.LLCF),
    "llco": str(VCpuType.LLCO),
    "lolcf": str(VCpuType.LOLCF),
}


def derive_seed(*parts: object) -> int:
    """A stable 63-bit seed from structured parts (sha256-derived).

    The fleet derives every per-host-epoch machine seed and every
    traffic stream this way, so adding a host or an epoch never
    perturbs the seeds of existing ones — the same property
    :class:`~repro.sim.rng.RngFactory` gives streams inside a machine.
    """
    text = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


__all__ = [
    "HOST_CATALOG",
    "MODE_PRIOR",
    "VMSpec",
    "VM_CATALOG",
    "derive_seed",
]
