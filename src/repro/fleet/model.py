"""The fleet's unit of simulation: one host for one epoch.

Live machines do not pickle, so the fleet is bulk-synchronous and
quasi-static: :func:`run_host_epoch` is a module-level pure function
of plain data — the :class:`~repro.hypervisor.hostspec.HostSpec`, the
resident VM specs, the epoch's churn timeline and a derived seed — and
therefore a legal :class:`~repro.exec.cells.Cell` payload.  Each epoch
the engine rebuilds every host from its spec, runs it, and collects a
:class:`HostEpochResult`; placement decisions happen only between
epochs, at the barrier.  Because a cell's result depends on nothing
but its arguments, sharding hosts across the process pool is
byte-identical to running them serially (pinned by
``tests/test_fleet_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AqlPolicy, PolicyContext, XenCredit
from repro.dynamics import ChurnEngine, ChurnTimeline, SwitchableWorkload
from repro.exec import engine_cell
from repro.fleet.catalog import VMSpec
from repro.hypervisor.hostspec import HostSpec
from repro.metrics.stats import StatsCollector
from repro.sim.units import MS
from repro.telemetry import Telemetry

#: host schedulers a fleet can run (every host runs the same one)
SCHEDULERS = ("aql", "xen")


@dataclass
class HostEpochResult:
    """Everything one host produced during one epoch (picklable)."""

    host_id: str
    #: ns-per-unit for every VM alive (and productive) at epoch end
    vm_values: dict[str, float] = field(default_factory=dict)
    vm_modes: dict[str, str] = field(default_factory=dict)
    #: request latencies measured this epoch across the host's io VMs
    io_latencies_ns: tuple[float, ...] = ()
    #: busy fraction of the host's fleet pool over the epoch
    util: float = 0.0
    #: intra-host vCPU->pCPU migrations (scheduler activity, not
    #: inter-host placement moves)
    vcpu_migrations: int = 0
    events_applied: int = 0
    #: work units completed in the measured window
    units: int = 0
    #: vm name -> vTRS type label the host's AQL manager last assigned
    detected: dict[str, str] = field(default_factory=dict)
    telemetry_summary: dict[str, float] = field(default_factory=dict)


@engine_cell
def run_host_epoch(
    host_id: str,
    host: HostSpec,
    residents: tuple[VMSpec, ...],
    timeline: ChurnTimeline,
    warmup_ns: int,
    measure_ns: int,
    seed: int,
    scheduler: str = "aql",
    clients: int = 4,
    telemetry: bool = False,
) -> HostEpochResult:
    """Build one host from specs, run one epoch, summarise.

    Residents are installed before t=0 (they survived from the last
    epoch); arrivals and migrants-in enter through the timeline's
    ``VmBoot`` events, departures through ``VmShutdown`` — so a
    migration costs its victim the migration lag at the start of the
    epoch, like a real stop-and-copy.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
        )
    if measure_ns <= timeline.duration_ns:
        raise ValueError("epoch ends before its last churn event")
    tel = Telemetry(enabled=telemetry)
    machine = host.build(seed=seed, telemetry=tel)
    pool = machine.create_pool("fleet", machine.topology.pcpus, 30 * MS)
    workloads: dict[str, SwitchableWorkload] = {}
    for spec in residents:
        vm = machine.new_vm(spec.name, spec.vcpus)
        vcpu = vm.vcpus[0]
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
        workload = SwitchableWorkload(spec.name, mode=spec.mode, clients=clients)
        workload.install(machine, vm)
        workloads[spec.name] = workload

    ctx = PolicyContext(pool=pool)
    policy = XenCredit() if scheduler == "xen" else AqlPolicy()
    policy.setup(machine, ctx)
    machine.run(warmup_ns)
    for workload in workloads.values():
        workload.begin_measurement()
    latency_start = {
        name: len(workload.latencies_ns)
        for name, workload in workloads.items()
    }
    units_start = {
        name: workload.units_done for name, workload in workloads.items()
    }
    stats = StatsCollector(machine)
    stats.start()
    engine = ChurnEngine(
        machine,
        timeline,
        workloads=workloads,
        allowed_pcpus=pool.pcpus,
        clients=clients,
    )
    engine.arm()
    machine.run(measure_ns)
    machine.sync()

    result = HostEpochResult(host_id=host_id)
    window = stats.collect()
    # AQL splits the fleet pool into per-type pools, so "the host's
    # utilization" is the machine-wide busy fraction, not one pool's
    result.util = window.machine_utilization
    latencies: list[float] = []
    for name in sorted(workloads):
        workload = workloads[name]
        if workload.vm is None or not workload.vm.alive:
            continue
        if workload.units_done - units_start.get(name, 0) <= 0:
            continue  # booted too late to do any work this epoch
        perf = workload.result()
        result.vm_values[name] = perf.value
        result.vm_modes[name] = workload.mode
        latencies.extend(workload.latencies_ns[latency_start.get(name, 0):])
    result.io_latencies_ns = tuple(latencies)
    result.vcpu_migrations = machine.migrations_total
    result.events_applied = len(engine.applied)
    result.units = sum(
        workloads[name].units_done for name in sorted(workloads)
    )
    manager = getattr(policy, "manager", None)
    if manager is not None and manager.last_types:
        by_vcpu = {
            vcpu.vcpu_id: vcpu for vcpu in machine.all_vcpus
        }
        for vcpu_id in sorted(manager.last_types):
            vcpu = by_vcpu.get(vcpu_id)
            if vcpu is None or not vcpu.vm.alive:
                continue
            result.detected[vcpu.vm.name] = str(manager.last_types[vcpu_id])
    if telemetry:
        tel.tracer.close_all(machine.sim.now)
        result.telemetry_summary = tel.summary()
    return result


__all__ = ["SCHEDULERS", "HostEpochResult", "run_host_epoch"]
