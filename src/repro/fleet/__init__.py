"""``repro.fleet`` — datacenter-scale multi-host simulation.

The fleet layer scales the single-machine simulator out to hundreds of
hosts and thousands of VMs without ever holding more than one live
machine per worker: hosts are rebuilt from frozen specs each epoch
(:mod:`repro.fleet.model`), sharded across the :mod:`repro.exec`
process pool, and stitched together by a bulk-synchronous epoch
barrier (:mod:`repro.fleet.engine`) where traffic
(:mod:`repro.fleet.traffic`) and placement
(:mod:`repro.fleet.placement`) decisions happen.

The headline experiment (``python -m repro.experiments fleet``)
compares classical bin-packing placement against an AQL-aware placer
that co-locates VMs by detected vTRS type — turning the paper's
per-host scheduling insight into a datacenter-level placement signal.
"""

from repro.fleet.catalog import (
    HOST_CATALOG,
    MODE_PRIOR,
    VMSpec,
    VM_CATALOG,
    derive_seed,
)
from repro.fleet.engine import FleetSimulation, FleetSpec, run_fleet_story
from repro.fleet.metrics import EpochMetrics, FleetRun, fold_epoch, fold_run
from repro.fleet.model import SCHEDULERS, HostEpochResult, run_host_epoch
from repro.fleet.placement import (
    PLACERS,
    AqlAware,
    BestFit,
    FirstFit,
    HostState,
    Migration,
    Placer,
    PlacementError,
    make_placer,
)
from repro.fleet.traffic import (
    STORIES,
    DiurnalStory,
    EpochTraffic,
    TrafficGenerator,
    event_offset_ns,
)

__all__ = [
    "AqlAware",
    "BestFit",
    "DiurnalStory",
    "EpochMetrics",
    "EpochTraffic",
    "FirstFit",
    "FleetRun",
    "FleetSimulation",
    "FleetSpec",
    "HOST_CATALOG",
    "HostEpochResult",
    "HostState",
    "MODE_PRIOR",
    "Migration",
    "PLACERS",
    "Placer",
    "PlacementError",
    "SCHEDULERS",
    "STORIES",
    "TrafficGenerator",
    "VMSpec",
    "VM_CATALOG",
    "derive_seed",
    "event_offset_ns",
    "fold_epoch",
    "fold_run",
    "make_placer",
    "run_fleet_story",
    "run_host_epoch",
]
