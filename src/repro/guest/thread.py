"""Guest threads: generator-driven workloads pinned to vCPUs.

A thread's ``body`` is a generator yielding :mod:`~repro.guest.phases`
objects.  The thread object is also the cache *actor*: its working set
is what occupies LLC space, so thread identity is what the
:class:`~repro.hardware.cache.SharedCache` tracks.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.guest.phases import Exit, Phase
from repro.hardware.cache import MemoryProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.vm import VCpu


class ThreadState(enum.Enum):
    READY = "ready"  # runnable, waiting for its vCPU / its turn
    RUNNING = "running"  # currently executing on a pCPU
    SPINNING = "spinning"  # busy-waiting on a spin lock (occupies the CPU)
    BLOCKED = "blocked"  # waiting for an event / sleeping
    DONE = "done"


ThreadBody = Callable[["GuestThread"], Iterator[Phase]]


class GuestThread:
    """One schedulable guest task."""

    __slots__ = (
        "tid",
        "name",
        "profile",
        "state",
        "vcpu",
        "_generator",
        "_body",
        "phase",
        "last_socket",
        "instructions_retired",
        "spin_ns",
        "run_ns",
        "started_at",
        "finished_at",
    )

    _next_tid = 0

    def __init__(
        self,
        name: str,
        body: ThreadBody,
        profile: Optional[MemoryProfile] = None,
    ):
        GuestThread._next_tid += 1
        self.tid = GuestThread._next_tid
        self.name = name
        self.profile = profile or MemoryProfile()
        self.state = ThreadState.READY
        self.vcpu: Optional["VCpu"] = None  # assigned by GuestOS.add_thread
        self._generator: Optional[Iterator[Phase]] = None
        self._body = body
        self.phase: Optional[Phase] = None
        #: socket whose LLC holds this thread's lines; on migration the
        #: machine evicts the stale footprint from the old socket.
        self.last_socket = None
        # accounting
        self.instructions_retired = 0.0
        self.spin_ns = 0.0
        self.run_ns = 0.0
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    # ------------------------------------------------------------------
    # phase machinery
    # ------------------------------------------------------------------
    def current_phase(self) -> Phase:
        """The phase in progress, starting the generator lazily."""
        if self.phase is None:
            self.advance_phase()
        assert self.phase is not None
        return self.phase

    def advance_phase(self) -> Phase:
        """Move to the next phase; yields :class:`Exit` forever after."""
        if self._generator is None:
            self._generator = self._body(self)
        try:
            self.phase = next(self._generator)
        except StopIteration:
            self.phase = Exit()
        return self.phase

    @property
    def done(self) -> bool:
        return self.state == ThreadState.DONE

    @property
    def runnable(self) -> bool:
        return self.state in (
            ThreadState.READY,
            ThreadState.RUNNING,
            ThreadState.SPINNING,
        )

    def effective_profile(self) -> MemoryProfile:
        """Memory profile of the current compute phase (or the default)."""
        phase = self.phase
        profile = getattr(phase, "profile", None)
        return profile if profile is not None else self.profile

    def __repr__(self) -> str:
        return f"<Thread {self.name} tid={self.tid} {self.state.value}>"


__all__ = ["GuestThread", "ThreadState", "ThreadBody"]
