"""Guest operating-system model.

Each VM runs a :class:`~repro.guest.os.GuestOS` that multiplexes
:class:`~repro.guest.thread.GuestThread` objects over the VM's vCPUs.
Threads are written as Python generators yielding *phases*
(:mod:`repro.guest.phases`): compute bursts, spin-lock critical
sections, IO waits, sleeps.  The hypervisor machine drives the phases
while the vCPU holds a pCPU.

The spin-lock (:mod:`repro.guest.spinlock`) is a ticket lock, so both
pathologies the paper discusses emerge naturally: *lock-holder
preemption* (the holder's vCPU is descheduled mid-critical-section and
every waiter burns its quantum spinning) and *lock-waiter preemption*
(FIFO handoff grants the lock to a vCPU that is off-CPU, stalling the
whole lock until it runs again).
"""

from repro.guest.barrier import SpinBarrier
from repro.guest.os import GuestOS
from repro.guest.phases import (
    Acquire,
    BarrierWait,
    Compute,
    Exit,
    Phase,
    Release,
    SemAcquire,
    SemRelease,
    Sleep,
    WaitEvent,
)
from repro.guest.semaphore import Semaphore
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread, ThreadState

__all__ = [
    "GuestOS",
    "GuestThread",
    "ThreadState",
    "SpinLock",
    "SpinBarrier",
    "Semaphore",
    "Phase",
    "Compute",
    "Acquire",
    "Release",
    "SemAcquire",
    "SemRelease",
    "BarrierWait",
    "WaitEvent",
    "Sleep",
    "Exit",
]
