"""Spin barriers: PARSEC-style phase synchronisation.

Parallel programs of the paper's ConSpin class (facesim, fluidanimate,
streamcluster, ...) alternate compute phases with barriers where every
thread spin-waits for the slowest sibling.  Under consolidation the
slowest sibling is usually a *descheduled vCPU*, so every barrier
episode costs on the order of the quantum length while the arrived
threads burn their own quanta spinning — the reason short quanta help
this class (paper Fig. 2c).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.thread import GuestThread


class SpinBarrier:
    """A spin barrier for a fixed party count."""

    def __init__(self, name: str, parties: int):
        if parties <= 0:
            raise ValueError("a barrier needs at least one party")
        self.name = name
        self.parties = parties
        self.generation = 0
        self._arrived: list["GuestThread"] = []
        self.rounds_completed = 0

    def arrive(self, thread: "GuestThread") -> Optional[list["GuestThread"]]:
        """Register arrival.

        Returns the list of *other* waiting threads when this arrival
        completes the round (the caller must poke them so on-CPU
        spinners stop immediately); returns None while the round is
        still short of parties.
        """
        if thread in self._arrived:
            raise RuntimeError(f"{thread!r} arrived twice at {self.name}")
        self._arrived.append(thread)
        if len(self._arrived) < self.parties:
            return None
        waiters = [t for t in self._arrived if t is not thread]
        self._arrived.clear()
        self.generation += 1
        self.rounds_completed += 1
        return waiters

    @property
    def waiting_count(self) -> int:
        return len(self._arrived)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpinBarrier {self.name} {len(self._arrived)}/{self.parties} "
            f"gen={self.generation}>"
        )


__all__ = ["SpinBarrier"]
