"""Ticket spin-lock with preemption pathologies.

Guest kernels of the paper's era (Linux 3.x) use ticket spin-locks:
waiters take a ticket and spin until the "now serving" counter reaches
it.  Under virtualization two things go wrong, both central to the
paper's ConSpin analysis:

* **lock-holder preemption** — the holder's vCPU is descheduled
  mid-critical-section; every waiter burns CPU until the holder's vCPU
  gets a pCPU again (up to ``(k - 1) * quantum`` later);
* **lock-waiter preemption** — FIFO handoff passes the lock to the next
  ticket even if that waiter's vCPU is off-CPU, so the lock stalls until
  that specific vCPU runs.  This is why measured lock duration grows
  with the quantum length (paper Fig. 2, rightmost plot).

The lock keeps aggregate statistics (acquisitions, wait time, hold
time) that the calibration experiments report.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.thread import GuestThread


class LockStats:
    """Aggregate observability for one lock."""

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_ns = 0.0
        self.total_hold_ns = 0.0

    @property
    def mean_duration_ns(self) -> float:
        """Mean acquire-request -> release time (the paper's metric)."""
        if self.acquisitions == 0:
            return 0.0
        return (self.total_wait_ns + self.total_hold_ns) / self.acquisitions

    @property
    def mean_wait_ns(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_ns / self.acquisitions


def _waiter_on_cpu(thread: "GuestThread") -> bool:
    """Is this waiter actively spinning on a pCPU right now?"""
    vcpu = thread.vcpu
    if vcpu is None:
        return False
    return (
        thread.state.value == "spinning"
        and vcpu.state.value == "running"
        and vcpu.current_thread is thread
    )


class SpinLock:
    """A guest-level spin lock shared by a VM's threads.

    ``handoff`` selects the grant policy on release:

    * ``"hybrid"`` (default) — test-and-set semantics: on release the
      lock is handed to the earliest waiter that is on-CPU right now;
      if none is, the lock is left *free* and the first waiter whose
      vCPU gets scheduled barges in.  A descheduled waiter therefore
      never stalls the lock while others can run.  Lock-*holder*
      preemption still costs the full off-CPU stall (everyone spins
      until the holder's vCPU returns).
    * ``"fifo"`` — strict ticket-lock order; a grant to a descheduled
      waiter stalls the lock until that vCPU runs (the lock-waiter-
      preemption pathology of [39]).  Under heavy consolidation this
      produces absorbing convoys, far more extreme than the paper's
      testbed numbers — useful to study, not as the default.
    """

    def __init__(self, name: str = "lock", handoff: str = "hybrid"):
        if handoff not in ("hybrid", "fifo"):
            raise ValueError(f"unknown handoff policy {handoff!r}")
        self.handoff = handoff
        self.name = name
        self.owner: Optional["GuestThread"] = None
        self._waiters: deque["GuestThread"] = deque()
        #: set when release handed the lock to a waiter that has not yet
        #: noticed (its vCPU may be descheduled) — the waiter-preemption
        #: window.
        self.granted_to: Optional["GuestThread"] = None
        self.stats = LockStats()
        self._acquired_at: dict[int, int] = {}  # tid -> hold start time
        self._requested_at: dict[int, int] = {}  # tid -> wait start time

    # ------------------------------------------------------------------
    # protocol (driven by the machine's phase interpreter)
    # ------------------------------------------------------------------
    def try_acquire(self, thread: "GuestThread", now: int) -> bool:
        """Attempt acquisition; enqueue as a spinning waiter on failure.

        Returns True if the lock was taken (either it was free, or this
        thread had already been granted the lock by a releaser).
        """
        if self.granted_to is thread:
            self.granted_to = None
            self._take(thread, now)
            return True
        free = self.owner is None and self.granted_to is None
        if free and self.handoff == "hybrid":
            # test-and-set barging: the lock is free, take it even if
            # other (descheduled) waiters queued first
            if thread in self._waiters:
                self._waiters.remove(thread)
            self._requested_at.setdefault(thread.tid, now)
            self._take(thread, now)
            return True
        if free and not self._waiters:
            self._requested_at.setdefault(thread.tid, now)
            self._take(thread, now)
            return True
        if thread not in self._waiters:
            self._waiters.append(thread)
            self._requested_at.setdefault(thread.tid, now)
            self.stats.contended_acquisitions += 1
        return False

    def release(self, thread: "GuestThread", now: int) -> Optional["GuestThread"]:
        """Release; returns the waiter the lock was handed to, if any.

        The caller (machine) is responsible for poking the returned
        waiter so that, if it is currently spinning on a pCPU, it stops
        spinning immediately.  If the waiter's vCPU is descheduled the
        grant simply sits until that vCPU runs — the waiter-preemption
        stall.
        """
        if self.owner is not thread:
            raise RuntimeError(
                f"{thread!r} released {self.name} owned by {self.owner!r}"
            )
        start = self._acquired_at.pop(thread.tid)
        self.stats.total_hold_ns += now - start
        self.owner = None
        if not self._waiters:
            return None
        beneficiary: Optional["GuestThread"] = None
        if self.handoff == "hybrid":
            for candidate in self._waiters:
                if _waiter_on_cpu(candidate):
                    beneficiary = candidate
                    break
            if beneficiary is None:
                # no waiter can take it right now: leave the lock free;
                # the first waiter to get scheduled will barge in
                return None
        else:
            beneficiary = self._waiters[0]
        self._waiters.remove(beneficiary)
        self.granted_to = beneficiary
        return beneficiary

    def _take(self, thread: "GuestThread", now: int) -> None:
        self.owner = thread
        self._acquired_at[thread.tid] = now
        requested = self._requested_at.pop(thread.tid, now)
        self.stats.total_wait_ns += now - requested
        self.stats.acquisitions += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def contended(self) -> bool:
        return bool(self._waiters) or self.granted_to is not None

    def waiting_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        owner = self.owner.name if self.owner else "-"
        return f"<SpinLock {self.name} owner={owner} waiters={len(self._waiters)}>"


__all__ = ["SpinLock", "LockStats"]
