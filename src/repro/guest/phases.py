"""Thread phases: the units of guest execution.

A guest thread body is a generator yielding these objects.  The
hypervisor machine interprets them:

* :class:`Compute` — retire an instruction burst under a memory profile;
* :class:`Acquire` / :class:`Release` — ticket-spin-lock operations;
* :class:`WaitEvent` — block until an event-channel port has a pending
  event (the IO path);
* :class:`Sleep` — block for a fixed virtual duration;
* :class:`Exit` — terminate the thread.

Phases carry mutable progress state (e.g. remaining instructions) so a
phase can span many scheduling segments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hardware.cache import MemoryProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.spinlock import SpinLock
    from repro.hypervisor.event_channel import EventPort


class Phase:
    """Base class; only the concrete subclasses below are instantiated."""

    __slots__ = ()


class Compute(Phase):
    """Retire ``instructions`` under ``profile`` (thread default if None)."""

    __slots__ = ("instructions", "remaining", "profile")

    def __init__(self, instructions: float, profile: Optional[MemoryProfile] = None):
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        self.instructions = float(instructions)
        self.remaining = float(instructions)
        self.profile = profile

    def __repr__(self) -> str:
        return f"Compute({self.remaining:.0f}/{self.instructions:.0f})"


class Acquire(Phase):
    """Take a spin lock, spinning (burning CPU) while contended."""

    __slots__ = ("lock", "requested_at", "ticket")

    def __init__(self, lock: "SpinLock"):
        self.lock = lock
        self.requested_at: Optional[int] = None
        self.ticket: Optional[int] = None

    def __repr__(self) -> str:
        return f"Acquire({self.lock.name})"


class Release(Phase):
    """Release a spin lock (instantaneous)."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock"):
        self.lock = lock

    def __repr__(self) -> str:
        return f"Release({self.lock.name})"


class SemAcquire(Phase):
    """Take a blocking semaphore; the thread sleeps while contended."""

    __slots__ = ("semaphore", "granted")

    def __init__(self, semaphore):
        self.semaphore = semaphore
        #: set by the releaser's handoff while this thread is blocked
        self.granted = False

    def __repr__(self) -> str:
        return f"SemAcquire({self.semaphore.name})"


class SemRelease(Phase):
    """Release a blocking semaphore (instantaneous)."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore):
        self.semaphore = semaphore

    def __repr__(self) -> str:
        return f"SemRelease({self.semaphore.name})"


class BarrierWait(Phase):
    """Spin at a barrier until all parties of this round have arrived.

    ``generation`` records which barrier round this thread is waiting
    on; the machine compares it against the barrier's current
    generation to detect release (which may happen while the thread's
    vCPU is descheduled — the tail the quantum length stretches).
    """

    __slots__ = ("barrier", "generation")

    def __init__(self, barrier):
        self.barrier = barrier
        self.generation: Optional[int] = None

    def __repr__(self) -> str:
        return f"BarrierWait({self.barrier.name}, gen={self.generation})"


class WaitEvent(Phase):
    """Block until the port has a pending event, then consume one."""

    __slots__ = ("port", "payload")

    def __init__(self, port: "EventPort"):
        self.port = port
        self.payload: object = None  # filled in when the event is consumed

    def __repr__(self) -> str:
        return f"WaitEvent({self.port.name})"


class Sleep(Phase):
    """Block for a fixed amount of virtual time.

    ``started`` / ``expired`` track the phase's progress so the code
    after the ``yield Sleep(...)`` runs only once the timer has fired
    (the generator advances on wake-up, not at block time).
    """

    __slots__ = ("duration_ns", "started", "expired")

    def __init__(self, duration_ns: int):
        if duration_ns < 0:
            raise ValueError("sleep duration cannot be negative")
        self.duration_ns = int(duration_ns)
        self.started = False
        self.expired = False

    def __repr__(self) -> str:
        return f"Sleep({self.duration_ns}ns)"


class Exit(Phase):
    """Terminate the thread."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Exit()"


__all__ = [
    "Phase",
    "Compute",
    "Acquire",
    "Release",
    "SemAcquire",
    "SemRelease",
    "BarrierWait",
    "WaitEvent",
    "Sleep",
    "Exit",
]
