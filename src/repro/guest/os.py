"""The guest OS scheduler: multiplexes threads over a VM's vCPUs.

Threads are pinned to a vCPU when added (explicitly or to the
least-loaded one) and each vCPU round-robins its ready threads with a
guest-level timeslice.  This is intentionally a small model of a Linux
guest: what matters to the paper is only (a) that a vCPU with no
runnable thread blocks — releasing its pCPU — and (b) that several
different thread types may take turns on one vCPU, which is why vTRS
must re-evaluate vCPU types online.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.guest.thread import GuestThread, ThreadState
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.vm import VCpu, VM


class GuestOS:
    """Per-VM thread scheduler."""

    def __init__(self, vm: "VM", guest_slice_ns: int = 4 * MS):
        self.vm = vm
        self.guest_slice_ns = guest_slice_ns
        self._ready: dict[int, deque[GuestThread]] = {}
        self._current: dict[int, Optional[GuestThread]] = {}
        self._current_run_ns: dict[int, float] = {}
        self.threads: list[GuestThread] = []

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------
    def add_thread(
        self, thread: GuestThread, vcpu: Optional["VCpu"] = None
    ) -> GuestThread:
        """Register a thread, pinning it to ``vcpu`` or the emptiest one."""
        if vcpu is None:
            vcpu = min(
                self.vm.vcpus,
                key=lambda v: len(self._ready.get(v.vcpu_id, ())),
            )
        if vcpu.vm is not self.vm:
            raise ValueError(f"{vcpu!r} does not belong to {self.vm!r}")
        thread.vcpu = vcpu
        self.threads.append(thread)
        queue = self._ready.setdefault(vcpu.vcpu_id, deque())
        queue.append(thread)
        thread.state = ThreadState.READY
        return thread

    # ------------------------------------------------------------------
    # scheduling interface used by the hypervisor machine
    # ------------------------------------------------------------------
    def pick(self, vcpu: "VCpu") -> Optional[GuestThread]:
        """The thread that should run next on ``vcpu`` (None = idle)."""
        current = self._current.get(vcpu.vcpu_id)
        if current is not None and current.runnable:
            return current
        return self._switch_to_next(vcpu)

    def maybe_rotate(self, vcpu: "VCpu") -> Optional[GuestThread]:
        """Rotate if the current thread exhausted its guest timeslice.

        A spinning thread is never rotated away from: guest kernels
        disable preemption while a spin lock is held or awaited, which
        is precisely what makes lock-holder preemption a hypervisor
        (not guest) problem.
        """
        current = self._current.get(vcpu.vcpu_id)
        if current is not None and current.state == ThreadState.SPINNING:
            return current
        if current is None or not current.runnable:
            return self._switch_to_next(vcpu)
        if self._current_run_ns.get(vcpu.vcpu_id, 0.0) >= self.guest_slice_ns:
            queue = self._ready.setdefault(vcpu.vcpu_id, deque())
            if queue:  # someone else is waiting: yield the vCPU to them
                queue.append(current)
                current.state = ThreadState.READY
                return self._switch_to_next(vcpu)
            self._current_run_ns[vcpu.vcpu_id] = 0.0
        return current

    def note_run(self, vcpu: "VCpu", run_ns: float) -> None:
        """Charge run time to the current thread's guest timeslice."""
        self._current_run_ns[vcpu.vcpu_id] = (
            self._current_run_ns.get(vcpu.vcpu_id, 0.0) + run_ns
        )

    def _switch_to_next(self, vcpu: "VCpu") -> Optional[GuestThread]:
        queue = self._ready.setdefault(vcpu.vcpu_id, deque())
        while queue:
            thread = queue.popleft()
            if thread.runnable:
                self._current[vcpu.vcpu_id] = thread
                self._current_run_ns[vcpu.vcpu_id] = 0.0
                return thread
        self._current[vcpu.vcpu_id] = None
        return None

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def thread_blocked(self, thread: GuestThread) -> None:
        """The current thread blocked (IO wait / sleep)."""
        thread.state = ThreadState.BLOCKED
        vcpu = thread.vcpu
        assert vcpu is not None
        if self._current.get(vcpu.vcpu_id) is thread:
            self._current[vcpu.vcpu_id] = None

    def thread_exited(self, thread: GuestThread) -> None:
        thread.state = ThreadState.DONE
        vcpu = thread.vcpu
        assert vcpu is not None
        if self._current.get(vcpu.vcpu_id) is thread:
            self._current[vcpu.vcpu_id] = None

    def thread_ready(self, thread: GuestThread) -> bool:
        """Unblock a thread.  Returns True if its vCPU needs a wake-up."""
        if thread.state != ThreadState.BLOCKED:
            return False
        thread.state = ThreadState.READY
        vcpu = thread.vcpu
        assert vcpu is not None
        self._ready.setdefault(vcpu.vcpu_id, deque()).append(thread)
        return True

    def preempt_to(self, vcpu: "VCpu", thread: GuestThread) -> bool:
        """Guest interrupt handling: make ``thread`` the current thread.

        The displaced thread goes to the *front* of the ready queue (it
        resumes right after the handler).  Returns True if the current
        thread actually changed.  A SPINNING current thread is never
        displaced (interrupts disabled around kernel spin locks).
        """
        if thread.vcpu is not vcpu or not thread.runnable:
            return False
        current = self._current.get(vcpu.vcpu_id)
        if current is thread:
            return False
        if current is not None and current.state == ThreadState.SPINNING:
            return False
        queue = self._ready.setdefault(vcpu.vcpu_id, deque())
        try:
            queue.remove(thread)
        except ValueError:
            return False  # not queued here (e.g. still blocked)
        if current is not None and current.runnable:
            current.state = ThreadState.READY
            queue.appendleft(current)
        self._current[vcpu.vcpu_id] = thread
        self._current_run_ns[vcpu.vcpu_id] = 0.0
        return True

    def has_runnable(self, vcpu: "VCpu") -> bool:
        current = self._current.get(vcpu.vcpu_id)
        if current is not None and current.runnable:
            return True
        return any(t.runnable for t in self._ready.get(vcpu.vcpu_id, ()))

    def runnable_count(self, vcpu: "VCpu") -> int:
        count = sum(1 for t in self._ready.get(vcpu.vcpu_id, ()) if t.runnable)
        current = self._current.get(vcpu.vcpu_id)
        if current is not None and current.runnable:
            count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GuestOS vm={self.vm.name} threads={len(self.threads)}>"


__all__ = ["GuestOS"]
