"""Blocking semaphores — the paper's §3.2 counterpoint to spin locks.

"In the semaphore case, a blocked thread loses the processor when
waiting for the lock to be released."  A semaphore waiter therefore
never burns its quantum; the cost moves to the wake-up path (the
hypervisor must schedule the waiter's vCPU again, where Credit's BOOST
usually helps).  The sync-primitive ablation
(:mod:`repro.experiments.sync_primitives`) contrasts the two under
consolidation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.guest.thread import GuestThread


class SemaphoreStats:
    """Aggregate observability, mirroring LockStats."""

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_ns = 0.0
        self.total_hold_ns = 0.0

    @property
    def mean_duration_ns(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return (self.total_wait_ns + self.total_hold_ns) / self.acquisitions


class Semaphore:
    """A counting semaphore whose waiters *block* (release their vCPU)."""

    def __init__(self, name: str = "sem", initial: int = 1):
        if initial < 0:
            raise ValueError("initial count cannot be negative")
        self.name = name
        self.count = initial
        self._waiters: deque["GuestThread"] = deque()
        self.stats = SemaphoreStats()
        self._acquired_at: dict[int, int] = {}
        self._requested_at: dict[int, int] = {}

    def try_acquire(self, thread: "GuestThread", now: int) -> bool:
        """Take a unit if available; else join the (FIFO) wait queue.

        Returns False when the thread must block; the caller (machine)
        parks the thread, and :meth:`release` later returns it for a
        wake-up with the unit already reserved on its behalf.
        """
        self._requested_at.setdefault(thread.tid, now)
        if self.count > 0 and not self._waiters:
            self.count -= 1
            self._take(thread, now)
            return True
        if thread not in self._waiters:
            self._waiters.append(thread)
            self.stats.contended_acquisitions += 1
        return False

    def grant_to(self, thread: "GuestThread", now: int) -> None:
        """Complete a handoff release() reserved for ``thread``."""
        self._take(thread, now)

    def release(self, thread: "GuestThread", now: int) -> Optional["GuestThread"]:
        """Release a unit; returns the waiter to wake, if any.

        When a waiter exists the unit is handed to it directly (it
        never returns to ``count``), so a woken thread is guaranteed
        its unit regardless of wake-up latency.
        """
        start = self._acquired_at.pop(thread.tid, None)
        if start is None:
            raise RuntimeError(f"{thread!r} released {self.name} without holding it")
        self.stats.total_hold_ns += now - start
        if self._waiters:
            return self._waiters.popleft()
        self.count += 1
        return None

    def _take(self, thread: "GuestThread", now: int) -> None:
        self._acquired_at[thread.tid] = now
        requested = self._requested_at.pop(thread.tid, now)
        self.stats.total_wait_ns += now - requested
        self.stats.acquisitions += 1

    @property
    def waiting_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Semaphore {self.name} count={self.count} "
            f"waiters={len(self._waiters)}>"
        )


__all__ = ["Semaphore", "SemaphoreStats"]
