"""repro.analysis — simlint, the determinism & hot-path audit.

Static analysis tailored to this reproduction's invariants: every
result rests on runs being pure functions of their seed (so the
serial≡parallel≡cache-replay and heap≡wheel equivalences hold) and on
the simulation hot path staying allocation-lean.  The rule battery
(``repro.analysis.rules``) encodes those invariants; the engine
(``repro.analysis.core``) runs them in one AST walk per file; the
whole-program layer (``repro.analysis.interproc``) lifts the audit
across module boundaries — interprocedural determinism taint (SIM008)
and engine-cell purity proofs (SIM009) over a project-wide,
alias-resolved call graph, ratcheted by a committed findings baseline;
the CLI (``python -m repro.analysis``) and
``tests/test_analysis_selfcheck.py`` keep the tree clean.  DESIGN.md
§10 documents the per-module rule catalogue and the suppression
policy; §15 documents the whole-program pass.
"""

from repro.analysis.core import (
    Analyzer,
    ModuleContext,
    Violation,
    format_suppression,
    module_name_for,
    parse_suppressions,
)
from repro.analysis.interproc import (
    ProjectIndex,
    TaintAnalysis,
    WholeProgramAnalyzer,
    interprocedural_violations,
)
from repro.analysis.report import (
    exit_code,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    RULE_CLASSES,
    RULE_INDEX,
    WHOLE_PROGRAM_RULE_IDS,
    Rule,
    default_rules,
    describe_rules,
    get_rules,
)

__all__ = [
    "Analyzer",
    "ModuleContext",
    "ProjectIndex",
    "RULE_CLASSES",
    "RULE_INDEX",
    "Rule",
    "TaintAnalysis",
    "Violation",
    "WHOLE_PROGRAM_RULE_IDS",
    "WholeProgramAnalyzer",
    "default_rules",
    "describe_rules",
    "exit_code",
    "format_suppression",
    "get_rules",
    "interprocedural_violations",
    "module_name_for",
    "parse_suppressions",
    "render_json",
    "render_sarif",
    "render_text",
]
