"""repro.analysis — simlint, the determinism & hot-path audit.

Static analysis tailored to this reproduction's invariants: every
result rests on runs being pure functions of their seed (so the
serial≡parallel≡cache-replay and heap≡wheel equivalences hold) and on
the simulation hot path staying allocation-lean.  The rule battery
(``repro.analysis.rules``) encodes those invariants; the engine
(``repro.analysis.core``) runs them in one AST walk per file; the CLI
(``python -m repro.analysis``) and ``tests/test_analysis_selfcheck.py``
keep the tree clean.  DESIGN.md §10 documents the rule catalogue and
the suppression policy.
"""

from repro.analysis.core import (
    Analyzer,
    ModuleContext,
    Violation,
    format_suppression,
    module_name_for,
    parse_suppressions,
)
from repro.analysis.report import exit_code, render_json, render_text
from repro.analysis.rules import (
    RULE_CLASSES,
    RULE_INDEX,
    Rule,
    default_rules,
    describe_rules,
    get_rules,
)

__all__ = [
    "Analyzer",
    "ModuleContext",
    "RULE_CLASSES",
    "RULE_INDEX",
    "Rule",
    "Violation",
    "default_rules",
    "describe_rules",
    "exit_code",
    "format_suppression",
    "get_rules",
    "module_name_for",
    "parse_suppressions",
    "render_json",
    "render_text",
]
