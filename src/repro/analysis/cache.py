"""``--changed-only``: the content-hash findings cache.

The pre-commit hook and the CI clean-tree gate used to re-parse all
~140 files on every run.  This cache keys each file by the SHA-256 of
its *content* plus an engine salt (the analysis package's own sources
and the selected rule ids), and stores both the per-module findings
and the whole-program :class:`~repro.analysis.interproc.callgraph.
ModuleSummary` — so an incremental run re-parses only changed files
and still rebuilds the full interprocedural index from cached
summaries.  Editing any rule, or the engine itself, changes the salt
and invalidates everything; results are therefore byte-identical to a
cold run by construction.

The cache lives in ``.repro_cache/`` (already git-ignored and already
on the analyzer's own ``SKIP_DIRS`` list) and degrades to a miss on
any read problem — a corrupt cache can slow a run down, never change
its output.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.analysis.core import Violation
from repro.analysis.interproc.callgraph import ModuleSummary

CACHE_SCHEMA = 1

#: Default cache directory (shared with the sweep engine's result cache,
#: distinct file).
DEFAULT_CACHE_DIR = ".repro_cache"
CACHE_FILENAME = "simlint-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def engine_salt(rule_ids: Iterable[str]) -> str:
    """Hash of the analysis package sources + active rule ids.

    Any edit to a rule, the engine, or the interprocedural passes
    produces a new salt, so stale findings can never survive an
    analyzer change.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(path.read_bytes())
    digest.update(",".join(sorted(rule_ids)).encode())
    digest.update(str(CACHE_SCHEMA).encode())
    return digest.hexdigest()[:24]


class FindingsCache:
    """Per-file findings + summary store, keyed by content hash."""

    def __init__(self, cache_dir: Optional[Path], salt: str) -> None:
        self.path: Optional[Path] = (
            None
            if cache_dir is None
            else Path(cache_dir) / CACHE_FILENAME
        )
        self.salt = salt
        self._entries: dict[str, dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # degrade to cold cache
        if (
            document.get("schema") != CACHE_SCHEMA
            or document.get("salt") != self.salt
        ):
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "salt": self.salt,
            "entries": self._entries,
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False

    # ------------------------------------------------------------------
    def lookup(
        self, path: Path, file_hash: str
    ) -> Optional[tuple[list[Violation], Optional[ModuleSummary]]]:
        """Cached (violations, summary) for an unchanged file, else None."""
        entry = self._entries.get(str(path))
        if entry is None or entry.get("hash") != file_hash:
            self.misses += 1
            return None
        try:
            violations = [
                Violation.from_dict(row)
                for row in entry["violations"]  # type: ignore[union-attr]
            ]
            summary_doc = entry.get("summary")
            summary = (
                None
                if summary_doc is None
                else ModuleSummary.from_json(
                    summary_doc  # type: ignore[arg-type]
                )
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return violations, summary

    def store(
        self,
        path: Path,
        file_hash: str,
        violations: list[Violation],
        summary: Optional[ModuleSummary],
    ) -> None:
        self._entries[str(path)] = {
            "hash": file_hash,
            "violations": [v.as_dict() for v in violations],
            "summary": None if summary is None else summary.to_json(),
        }
        self._dirty = True

    # ------------------------------------------------------------------
    def stats(self) -> Mapping[str, int]:
        return {"hits": self.hits, "misses": self.misses}


__all__ = [
    "CACHE_FILENAME",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "FindingsCache",
    "content_hash",
    "engine_salt",
]
