"""The simlint rule engine.

simlint is an AST-based auditor for the invariants every result in this
reproduction rests on: the simulator must be *deterministic* (a seed
fully decides a run, so serial ≡ parallel ≡ cache-replay holds), and the
hot path must stay allocation-lean.  Nothing here executes the code
under analysis — every rule works from the parse tree plus a per-module
import map, so the audit is cheap enough to run on every commit.

Architecture
------------

* :class:`Violation` — one finding, pinned to ``path:line:col``.
* :class:`ModuleContext` — everything a rule may consult about the file
  being analyzed: dotted module name, source lines, the resolved import
  map, and the parsed suppressions.
* :class:`~repro.analysis.rules.base.Rule` — rules declare the AST node
  types they care about (``interests``) and the dotted-module domains
  they audit; the :class:`Analyzer` walks each tree **once**,
  dispatching nodes to every interested rule.
* Suppressions — ``# simlint: disable=SIM001,SIM004`` on the offending
  line silences exactly those rules there (``disable=all`` silences
  everything).  The policy (DESIGN.md §10): a suppression must carry a
  justification comment; fixing the code is always preferred.

Module classification
---------------------

Rules scope themselves by dotted module name (``repro.sim.engine``),
derived from the file path (``src/repro/...`` or ``benchmarks/...``).
A file can override the derived name with a directive in its first few
lines — ``# simlint: module=repro.sim.fake`` — which is how the test
fixtures under ``tests/analysis_fixtures/`` impersonate in-domain
modules without living inside the package.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.rules.base import Rule

#: Violation severities, most severe first.  ``error`` findings fail the
#: build; ``warning`` findings are reported but do not affect exit codes.
SEVERITIES = ("error", "warning")

#: Directories never descended into when expanding path arguments.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".repro_cache"}
)

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")
_MODULE_RE = re.compile(r"#\s*simlint:\s*module=([A-Za-z0-9_.]+)")

#: How many leading lines may carry a ``# simlint: module=`` directive.
_DIRECTIVE_WINDOW = 10


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule finding, pinned to a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    #: Interprocedural findings (SIM008/SIM009) carry the taint path,
    #: one rendered hop per element; ``--explain`` prints it.
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }
        if self.trace:
            row["trace"] = list(self.trace)
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "Violation":
        """Inverse of :meth:`as_dict`; the incremental cache round-trips
        findings through JSON with this pair."""
        return cls(
            rule_id=str(row["rule"]),
            path=str(row["path"]),
            line=int(row["line"]),  # type: ignore[call-overload]
            col=int(row["col"]),  # type: ignore[call-overload]
            message=str(row["message"]),
            severity=str(row.get("severity", "error")),
            trace=tuple(str(hop) for hop in row.get("trace", ())),  # type: ignore[union-attr]
        )


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line.

    The token ``all`` (any case) suppresses every rule.  Several
    ``disable=`` comments on one line union together.  Rule ids are
    upper-cased so ``sim001`` and ``SIM001`` are the same suppression.
    """
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "simlint" not in line:
            continue
        ids: set[str] = set()
        for match in _SUPPRESS_RE.finditer(line):
            for token in match.group(1).split(","):
                token = token.strip()
                if token:
                    ids.add("all" if token.lower() == "all" else token.upper())
        if ids:
            table[lineno] = frozenset(ids)
    return table


def format_suppression(rule_ids: Sequence[str]) -> str:
    """Render the canonical suppression comment for ``rule_ids``.

    Inverse of :func:`parse_suppressions` for a single comment — the
    Hypothesis round-trip test in ``tests/test_analysis_suppressions.py``
    holds the pair to that contract.
    """
    if not rule_ids:
        raise ValueError("a suppression needs at least one rule id")
    rendered = ",".join(
        "all" if rid.lower() == "all" else rid.upper() for rid in rule_ids
    )
    return f"# simlint: disable={rendered}"


def is_suppressed(
    violation: Violation, suppressions: Mapping[int, frozenset[str]]
) -> bool:
    active = suppressions.get(violation.line)
    if not active:
        return False
    return "all" in active or violation.rule_id in active


def module_name_for(path: Path, source: Optional[str] = None) -> str:
    """Derive the dotted module name a file would import as.

    Honors an explicit ``# simlint: module=...`` directive in the first
    few lines (used by test fixtures), then falls back to the path:
    everything after a ``src`` component, else everything from a
    ``repro`` or ``benchmarks`` component, else the bare stem.
    """
    if source is not None:
        head = source.splitlines()[:_DIRECTIVE_WINDOW]
        for line in head:
            match = _MODULE_RE.search(line)
            if match:
                return match.group(1)
    parts = list(path.resolve().with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor, keep_anchor in (("src", False), ("repro", True), ("benchmarks", True), ("tests", True)):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index:] if keep_anchor else parts[index + 1:]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else ""


def _build_import_map(tree: ast.Module, module: str) -> dict[str, str]:
    """Map local names to the dotted path they were imported from.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports resolve against the containing package, best-effort.
    """
    imports: dict[str, str] = {}
    package_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


class ModuleContext:
    """Everything the rules may consult about one analyzed file."""

    __slots__ = ("path", "module", "source", "lines", "tree", "imports", "suppressions")

    def __init__(self, path: Path, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = _build_import_map(tree, module)
        self.suppressions = parse_suppressions(source)

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted name of an expression, import aliases substituted.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``; bare
        builtins resolve to themselves.  Returns None for expressions
        that are not name/attribute chains (calls, subscripts, ...).
        """
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(self.imports.get(cursor.id, cursor.id))
        return ".".join(reversed(parts))


def build_context(
    source: str, path: Path, module: Optional[str] = None
) -> tuple[Optional[ModuleContext], Optional[Violation]]:
    """Parse one file into a :class:`ModuleContext`.

    Returns ``(ctx, None)`` on success and ``(None, sim000)`` when the
    file does not parse — the SIM000 violation carries the syntax error.
    """
    if module is None:
        module = module_name_for(path, source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Violation(
            rule_id="SIM000",
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleContext(path, module, source, tree), None


class Analyzer:
    """Runs a rule battery over files, one AST walk per file."""

    def __init__(self, rules: Optional[Sequence["Rule"]] = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: tuple["Rule", ...] = tuple(rules)

    # ------------------------------------------------------------------
    def analyze_source(
        self, source: str, path: Path, module: Optional[str] = None
    ) -> list[Violation]:
        """Analyze one file's text; the workhorse behind every entry point."""
        ctx, parse_error = build_context(source, path, module)
        if ctx is None:
            assert parse_error is not None
            return [parse_error]
        return self.analyze_context(ctx)

    def analyze_context(self, ctx: ModuleContext) -> list[Violation]:
        """Run the per-module battery over an already-built context.

        Split out from :meth:`analyze_source` so the whole-program layer
        (:mod:`repro.analysis.interproc`) can reuse one parse for both
        the per-module rules and its call-graph summary.
        """
        active = [rule for rule in self.rules if rule.applies_to(ctx.module)]
        if not active:
            return []
        dispatch: dict[type, list["Rule"]] = {}
        for rule in active:
            rule.start_module(ctx)
            for node_type in rule.interests:
                dispatch.setdefault(node_type, []).append(rule)
        found: list[Violation] = []
        for node in ast.walk(ctx.tree):
            for rule in dispatch.get(type(node), ()):
                found.extend(rule.visit(node, ctx))
        for rule in active:
            found.extend(rule.finish_module(ctx))
        kept = [v for v in found if not is_suppressed(v, ctx.suppressions)]
        kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return kept

    def analyze_file(self, path: Path) -> list[Violation]:
        source = path.read_text(encoding="utf-8")
        return self.analyze_source(source, path)

    def analyze_paths(self, paths: Iterable[Path]) -> list[Violation]:
        violations: list[Violation] = []
        for path in iter_python_files(paths):
            violations.extend(self.analyze_file(path))
        return violations


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py stream."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(child.parts):
                    collected.append(child)
        elif path.suffix == ".py":
            collected.append(path)
    for path in collected:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            yield path


__all__ = [
    "Analyzer",
    "ModuleContext",
    "SEVERITIES",
    "Violation",
    "build_context",
    "format_suppression",
    "is_suppressed",
    "iter_python_files",
    "module_name_for",
    "parse_suppressions",
]
