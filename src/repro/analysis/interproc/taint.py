"""SIM008 — interprocedural determinism taint propagation.

The lattice is deliberately binary: a function is *tainted* when it can
reach a determinism source (wall-clock read, nondeterministic RNG,
host-ordering primitive) through any chain of statically-resolved
calls, and *clean* otherwise.  Propagation is a breadth-first fixpoint
over the reversed call graph, seeded at every unsuppressed source, so
each tainted function records a **shortest witness path** down to a
concrete primitive — that path is what the violation message summarises
and ``--explain SIM008`` prints edge-by-edge.

Flagging policy:

* Sinks are functions defined in the sim domains
  (:data:`~repro.analysis.rules.base.SIM_DOMAINS`); SIM001's module
  allowlist is *lifted to the sink* — an allowlisted module (e.g.
  ``repro.perf``) may read the clock, but it still seeds taint into
  any sim-domain caller.
* A call site is flagged when its resolved callee is tainted.  Direct
  wall-clock / RNG sources are *not* re-flagged — those are SIM001 and
  SIM002 findings and stay per-module.  Direct *ordering* sources
  (``os.environ`` and friends) are flagged here, because no per-module
  rule covers them.
* ``# simlint: disable=SIM008`` on a **source** line kills the taint at
  the root (the suppressed source contributes nothing anywhere — the
  Hypothesis property in ``tests/test_analysis_interproc.py`` pins
  this); on a **call site** line it silences that one finding only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.analysis.core import Violation
from repro.analysis.rules.base import SIM_DOMAINS, module_in
from repro.analysis.rules.wallclock import WallClockRule
from repro.analysis.interproc.callgraph import ProjectIndex, TaintSource

RULE_ID = "SIM008"

#: Sink exemptions: modules that measure wall time on purpose.  Shared
#: with SIM001 so the two layers cannot disagree about who is exempt.
SINK_ALLOWLIST: tuple[str, ...] = WallClockRule.allowlist

#: Domains whose functions count as SIM008 sinks.  ``repro.ops`` is a
#: sink on top of the sim domains: the observation plane must stay a
#: pure *reader* of host facts, so an unwaived clock read reachable
#: from ops code is flagged interprocedurally (the fixture
#: ``tests/analysis_fixtures/interproc/sim008_ops_unwaived.py`` proves
#: it still fires there).
SINK_DOMAINS: tuple[str, ...] = (*SIM_DOMAINS, "repro.ops")


@dataclass(frozen=True, slots=True)
class TaintInfo:
    """Why a function is tainted: the primitive plus the witness chain."""

    source: TaintSource
    #: Module where the primitive source lives.
    source_module: str
    #: Function refs from this function (exclusive) down to the function
    #: containing the primitive (inclusive), shortest-path order.
    chain: tuple[str, ...]

    def describe(self) -> str:
        hops = " -> ".join((*self.chain, f"{self.source.call}()"))
        return f"{self.source.reason} [path: {hops}]"


class TaintAnalysis:
    """Fixpoint taint over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: function ref → taint witness (absent = proven-clean under the
        #: resolution envelope).
        self.tainted: dict[str, TaintInfo] = {}
        self._propagate()

    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        # reverse edges: callee ref → caller refs (deterministic order)
        callers: dict[str, list[str]] = {}
        for ref, (summary, fn) in self.index.iter_functions():
            for call in fn.calls:
                callee_ref, entries = self.index.resolve_callable(call.target)
                if entries and callee_ref != ref:
                    callers.setdefault(callee_ref, []).append(ref)

        queue: deque[str] = deque()
        # seed: functions containing an unsuppressed source
        for ref, (summary, fn) in self.index.iter_functions():
            if ref in self.tainted:
                continue
            source = next((s for s in fn.sources if not s.suppressed), None)
            if source is not None:
                self.tainted[ref] = TaintInfo(
                    source=source, source_module=summary.module, chain=(ref,)
                )
                queue.append(ref)

        while queue:
            callee_ref = queue.popleft()
            info = self.tainted[callee_ref]
            for caller_ref in callers.get(callee_ref, ()):  # BFS = shortest
                if caller_ref in self.tainted:
                    continue
                self.tainted[caller_ref] = TaintInfo(
                    source=info.source,
                    source_module=info.source_module,
                    chain=(caller_ref, *info.chain),
                )
                queue.append(caller_ref)

    # ------------------------------------------------------------------
    def taint_of(self, ref: str) -> Optional[TaintInfo]:
        return self.tainted.get(ref)

    def callee_taint(self, target: str) -> Optional[tuple[str, TaintInfo]]:
        """Taint of a call target, resolving aliases; None when clean."""
        callee_ref, entries = self.index.resolve_callable(target)
        if not entries:
            return None
        info = self.tainted.get(callee_ref)
        if info is None:
            return None
        return callee_ref, info


def _is_sink(module: str) -> bool:
    return module_in(module, SINK_DOMAINS) and not module_in(
        module, SINK_ALLOWLIST
    )


def render_trace(
    index: ProjectIndex, chain: tuple[str, ...], source: TaintSource
) -> tuple[str, ...]:
    """One rendered hop per line for ``--explain`` / SARIF."""
    hops: list[str] = []
    for ref in chain:
        _, entries = index.resolve_callable(ref)
        if entries:
            summary, fn = entries[0]
            hops.append(f"{ref} ({summary.path}:{fn.line})")
        else:
            hops.append(ref)
    hops.append(f"{source.call}() at line {source.line} [{source.kind}]")
    return tuple(hops)


def taint_violations(
    index: ProjectIndex, taint: TaintAnalysis
) -> list[Violation]:
    """SIM008 findings: sim-domain functions that can reach a source."""
    found: list[Violation] = []
    for ref, (summary, fn) in index.iter_functions():
        if not _is_sink(summary.module):
            continue
        # direct ordering sources (no per-module rule covers these)
        for source in fn.sources:
            if source.kind != "ordering" or source.suppressed:
                continue
            found.append(
                Violation(
                    rule_id=RULE_ID,
                    path=summary.path,
                    line=source.line,
                    col=source.col,
                    message=(
                        f"{source.reason}; sim-domain code must be a pure "
                        "function of the seed"
                    ),
                    trace=render_trace(index, (ref,), source),
                )
            )
        # calls into tainted callees, wherever the source lives
        for call in fn.calls:
            if summary.suppressed_at(call.line, RULE_ID):
                continue
            hit = taint.callee_taint(call.target)
            if hit is None:
                continue
            callee_ref, info = hit
            found.append(
                Violation(
                    rule_id=RULE_ID,
                    path=summary.path,
                    line=call.line,
                    col=call.col,
                    message=(
                        f"call to {callee_ref} reaches {info.describe()}; "
                        "sim-domain code must be a pure function of the seed"
                    ),
                    trace=render_trace(
                        index, (ref, *info.chain), info.source
                    ),
                )
            )
    found.sort(key=lambda v: (v.path, v.line, v.col))
    return found


__all__ = [
    "RULE_ID",
    "render_trace",
    "SINK_ALLOWLIST",
    "SINK_DOMAINS",
    "TaintAnalysis",
    "TaintInfo",
    "taint_violations",
]
