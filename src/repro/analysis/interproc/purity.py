"""SIM009 — engine-cell purity proofs.

``repro.exec``'s crash-resume guarantee (PR 8) rests on every cell
being a *pure, picklable, deterministic* function of its kwargs: a
resumed run re-executes only unfinished cells and must fold to the
byte-identical result, and the content-addressed cache replays any
cell from disk.  Those are dynamic guarantees built on a static
assumption — this pass checks the assumption.

Cell discovery:

* every ``Cell(fn, kwargs)`` literal whose constructor resolves to
  ``repro.exec.cells.Cell`` (any import alias), and
* every function carrying the explicit ``@engine_cell`` registration
  marker (``repro.exec.cells.engine_cell``) — the anchor for cells
  submitted through indirection the resolver cannot follow.

Proof obligations per cell function, over its transitive call closure:

1. **taint-free** — reuses SIM008's fixpoint: a cell that can reach a
   wall-clock/RNG/ordering source is not replayable (flagged at the
   cell function's definition, witness path attached);
2. **no module-global mutation** — a ``global`` write makes cell
   results order- and placement-dependent across workers (flagged at
   the write);
3. **no unpicklable captures** — a kwarg bound to live simulation
   state (``Machine``/``Simulator``), a lambda, or a nested function
   either fails to pickle or forks divergent state into workers
   (flagged at the ``Cell(...)`` construction site).
"""

from __future__ import annotations

from repro.analysis.core import Violation
from repro.analysis.interproc.callgraph import FunctionEntry, ProjectIndex
from repro.analysis.interproc.taint import TaintAnalysis, render_trace

RULE_ID = "SIM009"


def _discover_cells(index: ProjectIndex) -> dict[str, list[FunctionEntry]]:
    """Cell-function ref → entries, from literals and markers."""
    cells: dict[str, list[FunctionEntry]] = {}
    for summary in index.summaries:
        for site in summary.cell_sites:
            if site.target is None:
                continue
            ref, entries = index.resolve_callable(site.target)
            if entries:
                cells.setdefault(ref, entries)
    for ref, (summary, fn) in index.iter_functions():
        if fn.is_engine_cell and ref not in cells:
            cells[ref] = [(summary, fn)]
    return cells


def _closure(index: ProjectIndex, root: str) -> list[str]:
    """Refs reachable from ``root`` (inclusive), deterministic order."""
    seen: set[str] = {root}
    order: list[str] = [root]
    frontier: list[str] = [root]
    while frontier:
        nxt: list[str] = []
        for ref in frontier:
            _, entries = index.resolve_callable(ref)
            for _summary, fn in entries:
                for call in fn.calls:
                    callee_ref, callee_entries = index.resolve_callable(
                        call.target
                    )
                    if callee_entries and callee_ref not in seen:
                        seen.add(callee_ref)
                        order.append(callee_ref)
                        nxt.append(callee_ref)
        frontier = nxt
    return order


def purity_violations(
    index: ProjectIndex, taint: TaintAnalysis
) -> list[Violation]:
    found: list[Violation] = []
    cells = _discover_cells(index)

    # obligation 1 + 2: closure checks, anchored once per offending site
    flagged_writes: set[tuple[str, int, int]] = set()
    for ref in sorted(cells):
        entries = cells[ref] or index.resolve_callable(ref)[1]
        if not entries:
            continue
        summary, fn = entries[0]
        info = taint.taint_of(ref)
        if info is not None and not summary.suppressed_at(fn.line, RULE_ID):
            found.append(
                Violation(
                    rule_id=RULE_ID,
                    path=summary.path,
                    line=fn.line,
                    col=fn.col,
                    message=(
                        f"engine cell {ref} is not deterministic: it "
                        f"reaches {info.describe()}; cells must be pure "
                        "functions of their kwargs to be cacheable and "
                        "crash-resumable"
                    ),
                    trace=render_trace(index, info.chain, info.source),
                )
            )
        for closure_ref in _closure(index, ref):
            _, closure_entries = index.resolve_callable(closure_ref)
            for member_summary, member in closure_entries:
                for write in member.global_writes:
                    key = (member_summary.path, write.line, write.col)
                    if key in flagged_writes:
                        continue
                    if member_summary.suppressed_at(write.line, RULE_ID):
                        continue
                    flagged_writes.add(key)
                    found.append(
                        Violation(
                            rule_id=RULE_ID,
                            path=member_summary.path,
                            line=write.line,
                            col=write.col,
                            message=(
                                f"module-global write to {write.name!r} in "
                                f"{closure_ref}, reachable from engine cell "
                                f"{ref}; cell results must not depend on "
                                "execution order or worker placement"
                            ),
                        )
                    )

    # obligation 3: construction-site captures
    for summary in index.summaries:
        for site in summary.cell_sites:
            if summary.suppressed_at(site.line, RULE_ID):
                continue
            for capture in site.captures:
                found.append(
                    Violation(
                        rule_id=RULE_ID,
                        path=summary.path,
                        line=site.line,
                        col=site.col,
                        message=_capture_message(capture.kind, capture.detail,
                                                 capture.keyword),
                    )
                )
    found.sort(key=lambda v: (v.path, v.line, v.col))
    return found


def _capture_message(kind: str, detail: str, keyword: str) -> str:
    if kind == "lambda-fn":
        return (
            "cell function is a lambda; cells must be module-level "
            "functions so they pickle across the worker fork"
        )
    if kind == "nested-fn":
        return (
            f"cell function {detail!r} is defined inside another function; "
            "cells must be module-level so they pickle across the worker "
            "fork"
        )
    if detail == "lambda":
        return (
            f"cell kwarg {keyword!r} is a lambda; cell arguments must "
            "pickle and hash stably for the content-addressed cache"
        )
    return (
        f"cell kwarg {keyword!r} captures a live {detail} instance; pass "
        "picklable specs and rebuild the object inside the cell"
    )


__all__ = ["RULE_ID", "purity_violations"]
