"""Project-wide call-graph extraction and the cross-module index.

One :class:`ModuleSummary` per file — every function the module
defines (methods keyed ``Class.method``), every alias-resolved call it
makes, every determinism *source* it touches, every module-global
write, and every ``Cell(...)`` construction — all JSON-round-trippable
so the ``--changed-only`` cache can rebuild the whole-program index
without re-parsing unchanged files.

Resolution strategy (documented precision envelope):

* bare-name calls resolve to same-module functions, then through the
  import map (``from x import f as g; g()`` → ``x.f``);
* attribute calls resolve through the import map when the chain roots
  at an imported name (``import repro.fleet.model as m; m.f()``);
* ``self.x()`` / ``cls.x()`` resolve to the enclosing class's method;
* ``Class(...)`` resolves to ``Class.__init__`` at lookup time;
* re-exports resolve by alias-hopping at lookup time
  (``repro.sim.Simulator`` → ``repro.sim.engine.Simulator``);
* calls on arbitrary objects (``runner.run()``) do **not** resolve —
  the analysis is deliberately call-graph-underapproximate rather than
  type-inferring, and the fixtures pin exactly what it sees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

from repro.analysis.core import ModuleContext
from repro.analysis.rules.rng import classify_rng_call
from repro.analysis.rules.wallclock import WALL_CLOCK_NAMES

#: Dotted names under which the sweep engine's cell type is imported.
CELL_CONSTRUCTOR_NAMES = frozenset({"repro.exec.Cell", "repro.exec.cells.Cell"})

#: Dotted names of the explicit cell-registration marker.
ENGINE_CELL_MARKER_NAMES = frozenset(
    {"repro.exec.engine_cell", "repro.exec.cells.engine_cell"}
)

#: Constructors whose instances must never be captured in a cell's
#: kwargs: live simulation state (a cell must *build* its machine from
#: specs, not close over one), OS handles, and thread primitives — all
#: either unpicklable or pickled-by-value into divergent copies.
BANNED_CAPTURE_NAMES = frozenset(
    {
        "repro.hypervisor.machine.Machine",
        "repro.hypervisor.Machine",
        "repro.sim.engine.Simulator",
        "repro.sim.Simulator",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "open",
    }
)

#: Host-environment / ordering sources (SIM008's third family): none of
#: these is covered by a per-module rule, so direct uses in sim domains
#: are flagged by the whole-program pass itself.
ORDERING_SOURCE_NAMES = frozenset(
    {
        "os.getenv",
        "os.getpid",
        "os.getppid",
        "os.urandom",
        "os.listdir",
        "os.scandir",
        "os.walk",
        "os.cpu_count",
        "glob.glob",
        "glob.iglob",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Prefix-matched ordering sources (``os.environ.get`` and friends).
ORDERING_SOURCE_PREFIXES = ("os.environ",)


def classify_source(resolved: str, node: ast.Call) -> Optional[tuple[str, str]]:
    """``(kind, reason)`` when the call is a determinism source, else None."""
    if resolved in WALL_CLOCK_NAMES:
        return "wall-clock", f"wall-clock read {resolved}()"
    rng_reason = classify_rng_call(resolved, node)
    if rng_reason is not None:
        return "rng", f"nondeterministic randomness {resolved}()"
    if resolved in ORDERING_SOURCE_NAMES or resolved.startswith(
        ORDERING_SOURCE_PREFIXES
    ):
        return (
            "ordering",
            f"{resolved}() depends on the host environment / iteration order",
        )
    return None


# ----------------------------------------------------------------------
# summary data model (JSON-round-trippable for the incremental cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CallSite:
    """One resolved outgoing call from a function."""

    target: str
    line: int
    col: int


@dataclass(frozen=True, slots=True)
class TaintSource:
    """One determinism source occurrence inside a function."""

    call: str
    kind: str  # "wall-clock" | "rng" | "ordering"
    reason: str
    line: int
    col: int
    #: True when the source line carries ``# simlint: disable=SIM008``
    #: (or ``all``) — a suppressed source never contributes taint.
    suppressed: bool


@dataclass(frozen=True, slots=True)
class GlobalWrite:
    """An assignment to a ``global``-declared name inside a function."""

    name: str
    line: int
    col: int


@dataclass(frozen=True, slots=True)
class CellCapture:
    """One suspicious binding at a ``Cell(...)`` construction site."""

    kind: str  # "lambda-fn" | "nested-fn" | "capture"
    detail: str
    keyword: str
    line: int
    col: int


@dataclass(frozen=True, slots=True)
class CellSite:
    """One ``Cell(fn, kwargs)`` literal discovered in a module."""

    line: int
    col: int
    #: Resolved dotted name of the submitted function (None when the
    #: expression is not statically resolvable, e.g. a parameter).
    target: Optional[str]
    captures: tuple[CellCapture, ...]


@dataclass(frozen=True, slots=True)
class FunctionInfo:
    """Everything the whole-program passes need about one function."""

    qualname: str
    line: int
    col: int
    is_engine_cell: bool
    calls: tuple[CallSite, ...]
    sources: tuple[TaintSource, ...]
    global_writes: tuple[GlobalWrite, ...]


@dataclass(frozen=True, slots=True)
class ModuleSummary:
    """The per-file slice of the project index."""

    module: str
    path: str
    imports: Mapping[str, str]
    functions: tuple[FunctionInfo, ...]
    cell_sites: tuple[CellSite, ...]
    suppressions: Mapping[int, frozenset[str]] = field(default_factory=dict)

    def suppressed_at(self, line: int, rule_id: str) -> bool:
        active = self.suppressions.get(line)
        return bool(active) and ("all" in active or rule_id in active)

    # -- JSON (incremental cache) --------------------------------------
    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "functions": [
                {
                    "qualname": fn.qualname,
                    "line": fn.line,
                    "col": fn.col,
                    "is_engine_cell": fn.is_engine_cell,
                    "calls": [[c.target, c.line, c.col] for c in fn.calls],
                    "sources": [
                        [s.call, s.kind, s.reason, s.line, s.col, s.suppressed]
                        for s in fn.sources
                    ],
                    "global_writes": [
                        [w.name, w.line, w.col] for w in fn.global_writes
                    ],
                }
                for fn in self.functions
            ],
            "cell_sites": [
                {
                    "line": site.line,
                    "col": site.col,
                    "target": site.target,
                    "captures": [
                        [c.kind, c.detail, c.keyword, c.line, c.col]
                        for c in site.captures
                    ],
                }
                for site in self.cell_sites
            ],
            "suppressions": {
                str(line): sorted(ids) for line, ids in self.suppressions.items()
            },
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, object]) -> "ModuleSummary":
        functions = tuple(
            FunctionInfo(
                qualname=str(fn["qualname"]),
                line=int(fn["line"]),
                col=int(fn["col"]),
                is_engine_cell=bool(fn["is_engine_cell"]),
                calls=tuple(
                    CallSite(str(t), int(ln), int(co)) for t, ln, co in fn["calls"]
                ),
                sources=tuple(
                    TaintSource(
                        str(call), str(kind), str(reason),
                        int(ln), int(co), bool(supp),
                    )
                    for call, kind, reason, ln, co, supp in fn["sources"]
                ),
                global_writes=tuple(
                    GlobalWrite(str(n), int(ln), int(co))
                    for n, ln, co in fn["global_writes"]
                ),
            )
            for fn in doc["functions"]  # type: ignore[union-attr]
        )
        cell_sites = tuple(
            CellSite(
                line=int(site["line"]),
                col=int(site["col"]),
                target=None if site["target"] is None else str(site["target"]),
                captures=tuple(
                    CellCapture(str(k), str(d), str(kw), int(ln), int(co))
                    for k, d, kw, ln, co in site["captures"]
                ),
            )
            for site in doc["cell_sites"]  # type: ignore[union-attr]
        )
        suppressions = {
            int(line): frozenset(str(rid) for rid in ids)
            for line, ids in doc["suppressions"].items()  # type: ignore[union-attr]
        }
        return cls(
            module=str(doc["module"]),
            path=str(doc["path"]),
            imports={
                str(k): str(v)
                for k, v in doc["imports"].items()  # type: ignore[union-attr]
            },
            functions=functions,
            cell_sites=cell_sites,
            suppressions=suppressions,
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested def/class.

    Lambda bodies *are* descended into: they execute in the enclosing
    function's dynamic extent often enough (sort keys, callbacks) that
    attributing their sources to the enclosing function is the
    conservative choice.
    """
    for child in ast.iter_child_nodes(node):
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield from _shallow_walk(child)


def _collect_defs(
    tree: ast.Module,
) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function in the module with its dotted qualname."""
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []

    def descend(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child))
                descend(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                descend(child, f"{prefix}{child.name}.")
            else:
                descend(child, prefix)

    descend(tree, "")
    return out


def _enclosing_class(qualname: str) -> Optional[str]:
    """``A.B.method`` → ``A.B`` when the qualname has a parent path."""
    if "." not in qualname:
        return None
    return qualname.rsplit(".", 1)[0]


class _FunctionExtractor:
    """Extracts one FunctionInfo from a function's shallow body."""

    def __init__(
        self,
        ctx: ModuleContext,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        module_defs: Mapping[str, list[str]],
        class_methods: Mapping[str, set[str]],
    ) -> None:
        self.ctx = ctx
        self.qualname = qualname
        self.node = node
        self.module_defs = module_defs  # bare name → qualnames in module
        self.class_methods = class_methods  # class path → method names

    # -- resolution ----------------------------------------------------
    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        module = self.ctx.module
        if isinstance(func, ast.Name):
            name = func.id
            quals = self.module_defs.get(name, [])
            if quals:
                # prefer a module-level def, else the unique candidate
                if name in quals:
                    return f"{module}.{name}"
                if len(quals) == 1:
                    return f"{module}.{quals[0]}"
            if name in self.ctx.imports:
                return self.ctx.imports[name]
            return None
        if isinstance(func, ast.Attribute):
            # self.x() / cls.x() → method on the enclosing class
            root = func.value
            if isinstance(root, ast.Name) and root.id in ("self", "cls"):
                cls_path = _enclosing_class(self.qualname)
                if cls_path is not None and func.attr in self.class_methods.get(
                    cls_path, set()
                ):
                    return f"{module}.{cls_path}.{func.attr}"
                return None
            return self.ctx.resolve(func)
        return None

    # -- extraction ----------------------------------------------------
    def extract(self) -> tuple[FunctionInfo, list[CellSite]]:
        calls: list[CallSite] = []
        sources: list[TaintSource] = []
        writes: list[GlobalWrite] = []
        cells: list[CellSite] = []
        global_names: set[str] = set()
        local_ctors: dict[str, str] = {}  # local var → resolved ctor name

        body_nodes = list(_shallow_walk(self.node))
        for sub in body_nodes:
            if isinstance(sub, ast.Global):
                global_names.update(sub.names)

        for sub in body_nodes:
            if isinstance(sub, ast.Assign):
                if (
                    len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)
                ):
                    ctor = self.ctx.resolve(sub.value.func)
                    if ctor is not None:
                        local_ctors[sub.targets[0].id] = ctor
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id in global_names:
                        writes.append(
                            GlobalWrite(target.id, sub.lineno, sub.col_offset)
                        )
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(sub, ast.AnnAssign) and sub.value is None:
                    continue
                target = sub.target
                if isinstance(target, ast.Name) and target.id in global_names:
                    writes.append(
                        GlobalWrite(target.id, sub.lineno, sub.col_offset)
                    )
            elif isinstance(sub, ast.Call):
                resolved = self.ctx.resolve(sub.func)
                if resolved is not None and resolved in CELL_CONSTRUCTOR_NAMES:
                    cells.append(self._cell_site(sub, local_ctors))
                    continue
                if resolved is not None:
                    source = classify_source(resolved, sub)
                    if source is not None:
                        kind, reason = source
                        sources.append(
                            TaintSource(
                                call=resolved,
                                kind=kind,
                                reason=reason,
                                line=sub.lineno,
                                col=sub.col_offset,
                                suppressed=self._source_suppressed(sub.lineno),
                            )
                        )
                        continue
                target_name = self.resolve_call_target(sub.func)
                if target_name is not None:
                    calls.append(
                        CallSite(target_name, sub.lineno, sub.col_offset)
                    )

        info = FunctionInfo(
            qualname=self.qualname,
            line=self.node.lineno,
            col=self.node.col_offset,
            is_engine_cell=self._is_engine_cell(),
            calls=tuple(calls),
            sources=tuple(sources),
            global_writes=tuple(writes),
        )
        return info, cells

    def _source_suppressed(self, line: int) -> bool:
        active = self.ctx.suppressions.get(line)
        return bool(active) and ("all" in active or "SIM008" in active)

    def _is_engine_cell(self) -> bool:
        for decorator in self.node.decorator_list:
            expr = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = self.ctx.resolve(expr)
            if resolved in ENGINE_CELL_MARKER_NAMES:
                return True
        return False

    # -- Cell(...) sites -----------------------------------------------
    def _cell_site(
        self, node: ast.Call, local_ctors: Mapping[str, str]
    ) -> CellSite:
        captures: list[CellCapture] = []
        fn_expr: Optional[ast.expr] = node.args[0] if node.args else None
        kwargs_expr: Optional[ast.expr] = node.args[1] if len(node.args) > 1 else None
        for kw in node.keywords:
            if kw.arg == "fn":
                fn_expr = kw.value
            elif kw.arg == "kwargs":
                kwargs_expr = kw.value

        target: Optional[str] = None
        if isinstance(fn_expr, ast.Lambda):
            captures.append(
                CellCapture(
                    "lambda-fn", "lambda", "fn",
                    fn_expr.lineno, fn_expr.col_offset,
                )
            )
        elif isinstance(fn_expr, ast.Name):
            quals = self.module_defs.get(fn_expr.id, [])
            nested = f"{self.qualname}.{fn_expr.id}"
            if nested in quals:
                captures.append(
                    CellCapture(
                        "nested-fn", fn_expr.id, "fn",
                        fn_expr.lineno, fn_expr.col_offset,
                    )
                )
            else:
                target = self.resolve_call_target(fn_expr)
        elif isinstance(fn_expr, ast.Attribute):
            target = self.ctx.resolve(fn_expr)

        for keyword, value in self._cell_kwargs(kwargs_expr):
            if isinstance(value, ast.Lambda):
                captures.append(
                    CellCapture(
                        "capture", "lambda", keyword,
                        value.lineno, value.col_offset,
                    )
                )
            elif isinstance(value, ast.Call):
                ctor = self.ctx.resolve(value.func)
                if ctor in BANNED_CAPTURE_NAMES:
                    captures.append(
                        CellCapture(
                            "capture", ctor, keyword,
                            value.lineno, value.col_offset,
                        )
                    )
            elif isinstance(value, ast.Name):
                ctor_name = local_ctors.get(value.id)
                if ctor_name in BANNED_CAPTURE_NAMES:
                    assert ctor_name is not None
                    captures.append(
                        CellCapture(
                            "capture", ctor_name, keyword,
                            value.lineno, value.col_offset,
                        )
                    )

        return CellSite(
            line=node.lineno,
            col=node.col_offset,
            target=target,
            captures=tuple(captures),
        )

    @staticmethod
    def _cell_kwargs(
        kwargs_expr: Optional[ast.expr],
    ) -> list[tuple[str, ast.expr]]:
        pairs: list[tuple[str, ast.expr]] = []
        if isinstance(kwargs_expr, ast.Call):
            func = kwargs_expr.func
            if isinstance(func, ast.Name) and func.id == "dict":
                pairs.extend(
                    (kw.arg, kw.value)
                    for kw in kwargs_expr.keywords
                    if kw.arg is not None
                )
        elif isinstance(kwargs_expr, ast.Dict):
            for key, value in zip(kwargs_expr.keys, kwargs_expr.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    pairs.append((key.value, value))
        return pairs


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Build the whole-program summary for one parsed module."""
    defs = _collect_defs(ctx.tree)
    module_defs: dict[str, list[str]] = {}
    class_methods: dict[str, set[str]] = {}
    for qualname, _node in defs:
        bare = qualname.rsplit(".", 1)[-1]
        module_defs.setdefault(bare, []).append(qualname)
        parent = _enclosing_class(qualname)
        if parent is not None:
            class_methods.setdefault(parent, set()).add(bare)

    functions: list[FunctionInfo] = []
    cell_sites: list[CellSite] = []
    for qualname, node in defs:
        extractor = _FunctionExtractor(
            ctx, qualname, node, module_defs, class_methods
        )
        info, cells = extractor.extract()
        functions.append(info)
        cell_sites.extend(cells)

    return ModuleSummary(
        module=ctx.module,
        path=str(ctx.path),
        imports=dict(ctx.imports),
        functions=tuple(functions),
        cell_sites=tuple(cell_sites),
        suppressions=dict(ctx.suppressions),
    )


# ----------------------------------------------------------------------
# the cross-module index
# ----------------------------------------------------------------------
#: (owning summary, function) pair — the unit the passes traverse.
FunctionEntry = tuple[ModuleSummary, FunctionInfo]

#: Alias-hop budget when resolving re-export chains.
_MAX_ALIAS_HOPS = 8


class ProjectIndex:
    """Module summaries stitched into a resolvable whole-program view."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: tuple[ModuleSummary, ...] = tuple(summaries)
        #: module name → summaries (fixtures may impersonate the same
        #: module from several files; all candidates are kept).
        self.modules: dict[str, list[ModuleSummary]] = {}
        #: fully-qualified function ref → entries.
        self.functions: dict[str, list[FunctionEntry]] = {}
        for summary in self.summaries:
            self.modules.setdefault(summary.module, []).append(summary)
            for fn in summary.functions:
                ref = f"{summary.module}.{fn.qualname}"
                self.functions.setdefault(ref, []).append((summary, fn))

    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[tuple[str, FunctionEntry]]:
        for ref in sorted(self.functions):
            for entry in self.functions[ref]:
                yield ref, entry

    def function_ref(self, summary: ModuleSummary, fn: FunctionInfo) -> str:
        return f"{summary.module}.{fn.qualname}"

    # ------------------------------------------------------------------
    def resolve_callable(self, target: str) -> tuple[str, list[FunctionEntry]]:
        """Resolve a dotted call target to known functions.

        Returns ``(canonical_ref, entries)``; entries is empty when the
        target leaves the analyzed program.  Handles class instantiation
        (``X`` → ``X.__init__``) and re-export alias hops.
        """
        seen: set[str] = set()
        current = target
        for _hop in range(_MAX_ALIAS_HOPS):
            if current in self.functions:
                return current, self.functions[current]
            init_ref = f"{current}.__init__"
            if init_ref in self.functions:
                return init_ref, self.functions[init_ref]
            hopped = self._alias_hop(current)
            if hopped is None or hopped in seen:
                return current, []
            seen.add(hopped)
            current = hopped
        return current, []

    def _alias_hop(self, target: str) -> Optional[str]:
        """Rewrite ``module.name.rest`` through ``module``'s import map."""
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            candidates = self.modules.get(module)
            if not candidates:
                continue
            head = parts[cut]
            rest = parts[cut + 1:]
            for summary in candidates:
                alias = summary.imports.get(head)
                if alias is not None and alias != target:
                    return ".".join([alias, *rest]) if rest else alias
            return None
        return None

    # ------------------------------------------------------------------
    def relative_path(self, summary: ModuleSummary) -> str:
        """Repo-relative posix path for reporting, best effort."""
        path = Path(summary.path)
        try:
            return path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()


__all__ = [
    "BANNED_CAPTURE_NAMES",
    "CELL_CONSTRUCTOR_NAMES",
    "CallSite",
    "CellCapture",
    "CellSite",
    "ENGINE_CELL_MARKER_NAMES",
    "FunctionEntry",
    "FunctionInfo",
    "GlobalWrite",
    "ModuleSummary",
    "ORDERING_SOURCE_NAMES",
    "ORDERING_SOURCE_PREFIXES",
    "ProjectIndex",
    "TaintSource",
    "classify_source",
    "summarize_module",
]
