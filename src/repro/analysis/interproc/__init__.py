"""``repro.analysis.interproc`` — the whole-program simlint layer.

The per-module rules (SIM001–SIM007) see one file at a time, so a
determinism violation laundered through a helper function — a
sim-domain scheduler calling ``repro.perf``'s wall-clock probe two
modules away — is invisible to them.  This package builds a
project-wide view and proves two properties over it:

* **SIM008, determinism taint** (``taint.py``): wall-clock reads,
  unseeded RNG and host-ordering sources seed taint wherever they
  occur; taint propagates along the alias-resolved call graph
  (``callgraph.py``); any sim-domain function that can reach a source
  is flagged at the offending call site, with the full path recorded.
* **SIM009, engine-cell purity** (``purity.py``): every function
  submitted to ``repro.exec`` — ``Cell(...)`` literals and
  ``@engine_cell``-marked functions — is proven taint-free, free of
  module-global mutation, and free of unpicklable captures, turning
  the engine's crash-resume assumption into a checked contract.

``baseline.py`` adds the ratchet: findings are fingerprinted
(line-number independent) against a committed baseline so CI fails
only on *new* findings.  The :class:`WholeProgramAnalyzer` below is
the façade the CLI, the self-check test and the Hypothesis properties
drive.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple

from repro.analysis.core import (
    Analyzer,
    ModuleContext,
    Violation,
    build_context,
    iter_python_files,
)
from repro.analysis.interproc.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.interproc.callgraph import (
    CellSite,
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
    summarize_module,
)
from repro.analysis.interproc.purity import purity_violations
from repro.analysis.interproc.taint import TaintAnalysis, taint_violations

#: ``(path, source, module-override)`` triples accepted by
#: :meth:`WholeProgramAnalyzer.analyze_sources`; module may be None to
#: derive from the path / ``# simlint: module=`` directive.
SourceSpec = Tuple[Path, str, Optional[str]]


def interprocedural_violations(
    index: ProjectIndex, rule_ids: Optional[Iterable[str]] = None
) -> list[Violation]:
    """Run both whole-program passes over a built index."""
    wanted = None if rule_ids is None else {rid.upper() for rid in rule_ids}
    taint = TaintAnalysis(index)
    found: list[Violation] = []
    if wanted is None or "SIM008" in wanted:
        found.extend(taint_violations(index, taint))
    if wanted is None or "SIM009" in wanted:
        found.extend(purity_violations(index, taint))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return found


class WholeProgramAnalyzer:
    """Per-module battery plus the interprocedural passes, one parse each.

    Every file is parsed once; the resulting :class:`ModuleContext`
    feeds both the per-module rules and the call-graph summary the
    whole-program passes consume.
    """

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self.rule_ids = frozenset(rule.rule_id for rule in self.analyzer.rules)

    # ------------------------------------------------------------------
    def analyze_sources(self, specs: Sequence[SourceSpec]) -> list[Violation]:
        """Analyze in-memory sources (the Hypothesis properties' entry)."""
        violations: list[Violation] = []
        summaries: list[ModuleSummary] = []
        for path, source, module in specs:
            ctx, parse_error = build_context(source, path, module)
            if ctx is None:
                assert parse_error is not None
                violations.append(parse_error)
                continue
            violations.extend(self.analyzer.analyze_context(ctx))
            summaries.append(summarize_module(ctx))
        violations.extend(self.project_violations(summaries))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return violations

    def analyze_paths(self, paths: Iterable[Path]) -> list[Violation]:
        specs: list[SourceSpec] = [
            (path, path.read_text(encoding="utf-8"), None)
            for path in iter_python_files(paths)
        ]
        return self.analyze_sources(specs)

    def project_violations(
        self, summaries: Sequence[ModuleSummary]
    ) -> list[Violation]:
        """The interprocedural findings for pre-built module summaries."""
        index = ProjectIndex(summaries)
        return interprocedural_violations(index, self.rule_ids)


__all__ = [
    "CellSite",
    "FunctionInfo",
    "ModuleContext",
    "ModuleSummary",
    "ProjectIndex",
    "SourceSpec",
    "TaintAnalysis",
    "WholeProgramAnalyzer",
    "apply_baseline",
    "finding_fingerprint",
    "interprocedural_violations",
    "load_baseline",
    "purity_violations",
    "summarize_module",
    "taint_violations",
    "write_baseline",
]
