"""The findings baseline: CI fails only on *new* findings.

A whole-program analysis over third-party policy code will land with
pre-existing findings; the baseline turns the gate into a ratchet —
everything fingerprinted in the committed ``simlint-baseline.json`` is
tolerated (and reported as baselined), anything new fails the build,
and fixing a baselined finding is a one-line ``--write-baseline``
refresh away.

Fingerprints are **line-number independent** (rule id, repo-relative
path, message) so pure code motion above a finding does not churn the
baseline; identical findings in one file are disambiguated by count —
a file holding two baselined ``SIM002`` findings may keep two, and the
third is new.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.core import Violation

BASELINE_SCHEMA = 1

#: Default committed baseline location, relative to the working dir.
DEFAULT_BASELINE = "simlint-baseline.json"


def _normalize_path(path: str) -> str:
    """Repo-relative posix form so fingerprints survive checkout moves."""
    p = Path(path)
    try:
        p = p.relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def finding_fingerprint(violation: Violation) -> str:
    """Stable, line-insensitive identity of one finding."""
    basis = "|".join(
        (violation.rule_id, _normalize_path(violation.path), violation.message)
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def write_baseline(path: Path, violations: Sequence[Violation]) -> int:
    """Write the baseline document for the current findings; returns count."""
    counts: Counter[str] = Counter()
    rows: dict[str, dict[str, object]] = {}
    for violation in violations:
        fp = finding_fingerprint(violation)
        counts[fp] += 1
        rows.setdefault(
            fp,
            {
                "rule": violation.rule_id,
                "path": _normalize_path(violation.path),
                "message": violation.message,
            },
        )
    for fp, row in rows.items():
        row["count"] = counts[fp]
    document = {
        "schema": BASELINE_SCHEMA,
        "findings": {fp: rows[fp] for fp in sorted(rows)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(violations)


def load_baseline(path: Path) -> Mapping[str, int]:
    """Fingerprint → tolerated count.  Raises ValueError on bad schema."""
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {document.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA} (regenerate with --write-baseline)"
        )
    findings = document.get("findings", {})
    return {
        str(fp): int(row.get("count", 1)) for fp, row in findings.items()
    }


def apply_baseline(
    violations: Sequence[Violation], tolerated: Mapping[str, int]
) -> tuple[list[Violation], int]:
    """Split findings into (new, baselined-count).

    The first ``tolerated[fp]`` occurrences of each fingerprint are
    baselined; any excess — and any unknown fingerprint — is new.
    """
    seen: Counter[str] = Counter()
    fresh: list[Violation] = []
    baselined = 0
    for violation in violations:
        fp = finding_fingerprint(violation)
        seen[fp] += 1
        if seen[fp] <= tolerated.get(fp, 0):
            baselined += 1
        else:
            fresh.append(violation)
    return fresh, baselined


__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE",
    "apply_baseline",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
]
