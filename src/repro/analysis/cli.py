"""The simlint command line.

    python -m repro.analysis [paths ...] [--format text|json]
                             [--rule SIM001 ...] [--list-rules]

With no paths, audits the default surface (``src/repro`` and
``benchmarks`` relative to the working directory, whichever exist).
Exit status: 0 clean, 1 violations, 2 usage error — the same contract
``make lint``, the pre-commit hook and the CI job rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.core import Analyzer, iter_python_files
from repro.analysis.report import exit_code, render_json, render_text
from repro.analysis.rules import describe_rules, get_rules

#: Audited when the CLI is invoked without path arguments.
DEFAULT_SURFACE = ("src/repro", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & hot-path static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to audit (default: src/repro benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="SIMnnn",
        help="audit only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        rules = get_rules(args.rules)
    except KeyError as exc:
        print(f"simlint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        for row in describe_rules(rules):
            print(f"{row['rule']}  [{row['severity']}]  {row['description']}")
        return 0

    paths = list(args.paths)
    if not paths:
        paths = [Path(entry) for entry in DEFAULT_SURFACE if Path(entry).exists()]
        if not paths:
            print(
                "simlint: no paths given and no default surface found "
                f"(looked for {', '.join(DEFAULT_SURFACE)})",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(
            f"simlint: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    files = list(iter_python_files(paths))
    analyzer = Analyzer(rules)
    violations = []
    for path in files:
        violations.extend(analyzer.analyze_file(path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))

    if args.format == "json":
        print(render_json(violations, files=len(files), rules=rules))
    else:
        print(render_text(violations, files=len(files)))
    return exit_code(violations)


__all__ = ["DEFAULT_SURFACE", "build_parser", "main"]
