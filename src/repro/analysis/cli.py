"""The simlint command line.

    python -m repro.analysis [paths ...] [--format text|json|sarif]
                             [--rule SIM001 ...] [--list-rules]
                             [--whole-program] [--explain SIMnnn]
                             [--baseline FILE] [--write-baseline]
                             [--changed-only] [--cache-dir DIR]

With no paths, audits the default surface (``src/repro`` and
``benchmarks`` relative to the working directory, whichever exist).
Exit status: 0 clean, 1 violations, 2 usage error — the same contract
``make lint``, the pre-commit hook and the CI job rely on.

Whole-program mode (``--whole-program``, implied by selecting SIM008 or
SIM009 with ``--rule``) parses every file once, feeds the per-module
battery and the call-graph summaries from the same parse, then runs the
interprocedural passes over the combined index.  ``--baseline`` filters
findings against a committed ratchet so only *new* findings affect the
exit code; ``--changed-only`` reuses cached per-file results for files
whose content hash is unchanged; ``--explain SIMnnn`` prints each
finding's witness path edge by edge.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.cache import (
    DEFAULT_CACHE_DIR,
    FindingsCache,
    content_hash,
    engine_salt,
)
from repro.analysis.core import (
    Analyzer,
    Violation,
    build_context,
    iter_python_files,
)
from repro.analysis.interproc import interprocedural_violations
from repro.analysis.interproc.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.interproc.callgraph import (
    ModuleSummary,
    ProjectIndex,
    summarize_module,
)
from repro.analysis.report import (
    exit_code,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    RULE_INDEX,
    WHOLE_PROGRAM_RULE_IDS,
    describe_rules,
    get_rules,
)

#: Audited when the CLI is invoked without path arguments.
DEFAULT_SURFACE = ("src/repro", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & hot-path static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to audit (default: src/repro benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="SIMnnn",
        help="audit only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "also run the interprocedural passes (SIM008/SIM009) over the "
            "project-wide call graph; implied by --rule SIM008/SIM009"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="SIMnnn",
        help="print each finding's witness path edge by edge after the report",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=(
            "filter findings against this committed baseline; only new "
            f"findings affect the exit code (default file: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "reuse cached per-file results for files whose content hash is "
            "unchanged (whole-program passes always re-run over the index)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(DEFAULT_CACHE_DIR),
        metavar="DIR",
        help=f"--changed-only cache location (default: {DEFAULT_CACHE_DIR})",
    )
    return parser


def _print_explanations(violations: Sequence[Violation], rule_id: str) -> None:
    explained = [v for v in violations if v.rule_id == rule_id and v.trace]
    if not explained:
        print(f"simlint: no {rule_id} findings with a recorded path")
        return
    for violation in explained:
        print(f"\n{violation.path}:{violation.line}: {rule_id} witness path:")
        for depth, hop in enumerate(violation.trace):
            indent = "  " * depth
            arrow = "" if depth == 0 else "-> "
            print(f"  {indent}{arrow}{hop}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        rules = get_rules(args.rules)
    except KeyError as exc:
        print(f"simlint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        for row in describe_rules(rules):
            print(f"{row['rule']}  [{row['severity']}]  {row['description']}")
        return 0

    explain = args.explain.upper() if args.explain else None
    if explain is not None and explain not in RULE_INDEX:
        print(f"simlint: unknown rule {explain!r} for --explain", file=sys.stderr)
        return 2

    selected = {rid.upper() for rid in (args.rules or ())}
    whole_program = args.whole_program or bool(
        selected & WHOLE_PROGRAM_RULE_IDS
    )

    paths = list(args.paths)
    if not paths:
        paths = [Path(entry) for entry in DEFAULT_SURFACE if Path(entry).exists()]
        if not paths:
            print(
                "simlint: no paths given and no default surface found "
                f"(looked for {', '.join(DEFAULT_SURFACE)})",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(
            f"simlint: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    baseline_path: Optional[Path] = args.baseline
    if args.write_baseline and baseline_path is None:
        baseline_path = Path(DEFAULT_BASELINE)
    tolerated = None
    if baseline_path is not None and not args.write_baseline:
        if not baseline_path.exists():
            print(
                f"simlint: baseline {baseline_path} not found "
                "(create it with --write-baseline)",
                file=sys.stderr,
            )
            return 2
        try:
            tolerated = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2

    cache: Optional[FindingsCache] = None
    if args.changed_only:
        rule_ids = sorted(rule.rule_id for rule in rules)
        cache = FindingsCache(args.cache_dir, engine_salt(rule_ids))

    files = list(iter_python_files(paths))
    analyzer = Analyzer(rules)
    violations: list[Violation] = []
    summaries: list[ModuleSummary] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        file_hash = content_hash(source)
        if cache is not None:
            hit = cache.lookup(path, file_hash)
            if hit is not None:
                cached_violations, cached_summary = hit
                violations.extend(cached_violations)
                if cached_summary is not None:
                    summaries.append(cached_summary)
                continue
        ctx, parse_error = build_context(source, path)
        summary: Optional[ModuleSummary] = None
        if ctx is None:
            assert parse_error is not None
            file_violations = [parse_error]
        else:
            file_violations = analyzer.analyze_context(ctx)
            summary = summarize_module(ctx)
        violations.extend(file_violations)
        if summary is not None:
            summaries.append(summary)
        if cache is not None:
            cache.store(path, file_hash, file_violations, summary)
    if cache is not None:
        cache.save()
        stats = cache.stats()
        print(
            f"simlint: cache {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es)",
            file=sys.stderr,
        )

    if whole_program:
        index = ProjectIndex(summaries)
        active_ids = frozenset(rule.rule_id for rule in rules)
        violations.extend(interprocedural_violations(index, active_ids))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))

    if args.write_baseline:
        assert baseline_path is not None
        count = write_baseline(baseline_path, violations)
        print(f"simlint: wrote {count} finding(s) to {baseline_path}")
        return 0

    baselined = 0
    if tolerated is not None:
        violations, baselined = apply_baseline(violations, tolerated)

    if args.format == "json":
        print(render_json(violations, files=len(files), rules=rules))
    elif args.format == "sarif":
        print(render_sarif(violations, rules=rules))
    else:
        print(render_text(violations, files=len(files)))
        if baselined:
            print(
                f"simlint: {baselined} baselined finding(s) hidden "
                f"({baseline_path})"
            )
    if explain is not None:
        _print_explanations(violations, explain)
    return exit_code(violations)


__all__ = ["DEFAULT_SURFACE", "build_parser", "main"]
