"""SIM002 — unseeded / global-state randomness.

All stochastic behaviour must flow through the per-component seeded
streams of :class:`repro.sim.rng.RngFactory` (or at minimum an
explicitly seeded ``numpy.random.default_rng(seed)``): the stdlib
``random`` module and the legacy ``numpy.random.*`` functions share
hidden global state, so two components drawing from them entangle
their streams and any reordering — a new event, a parallel worker —
silently changes every number downstream.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Violation
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: ``numpy.random`` attributes that *construct* seeded generators —
#: the modern, reproducible API — rather than draw from global state.
SEEDED_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class UnseededRngRule(Rule):
    rule_id = "SIM002"
    description = (
        "global-state randomness (random.* / legacy numpy.random.*); "
        "use the seeded sim.rng streams"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random" or resolved.startswith("random."):
            yield self.violation(
                ctx,
                node,
                f"{resolved}() draws from the stdlib's hidden global RNG; "
                "derive a stream from RngFactory (repro.sim.rng) instead",
            )
            return
        if resolved.startswith("numpy.random."):
            tail = resolved.rsplit(".", 1)[-1]
            if tail not in SEEDED_CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved}() uses numpy's legacy global RNG; construct "
                    "a seeded Generator (RngFactory.stream / default_rng(seed))",
                )
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; pass the experiment seed",
                )


__all__ = ["SEEDED_CONSTRUCTORS", "UnseededRngRule"]
