"""SIM002 — unseeded / global-state randomness.

All stochastic behaviour must flow through the per-component seeded
streams of :class:`repro.sim.rng.RngFactory` (or at minimum an
explicitly seeded ``numpy.random.default_rng(seed)`` /
``random.Random(seed)``): the stdlib ``random`` module's free functions
and the legacy ``numpy.random.*`` functions share hidden global state,
so two components drawing from them entangle their streams and any
reordering — a new event, a parallel worker — silently changes every
number downstream.  Instance constructors are judged by their seed
argument: ``random.Random(seed)`` and ``default_rng(seed)`` are
deterministic and pass, while the zero-argument forms are
entropy-seeded and flagged (``random.SystemRandom`` is OS entropy by
construction and always flagged).

:func:`classify_rng_call` is the single classifier both this rule and
the interprocedural taint pass (:mod:`repro.analysis.interproc.taint`)
share, so "what counts as nondeterministic randomness" cannot drift
between the per-module and whole-program layers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Optional

from repro.analysis.core import Violation
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: ``numpy.random`` attributes that *construct* seeded generators —
#: the modern, reproducible API — rather than draw from global state.
SEEDED_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def classify_rng_call(resolved: str, node: ast.Call) -> Optional[str]:
    """Reason string when the call is nondeterministic randomness, else None.

    ``resolved`` is the alias-resolved dotted name of ``node.func``.
    """
    if resolved == "random.SystemRandom":
        return (
            "random.SystemRandom() draws OS entropy and can never be "
            "seeded; derive a stream from RngFactory (repro.sim.rng)"
        )
    if resolved == "random.Random":
        if not node.args and not node.keywords:
            return (
                "random.Random() without a seed argument is entropy-seeded "
                "and unreproducible; pass a derived seed"
            )
        return None  # random.Random(seed) is an explicitly seeded instance
    if resolved == "random" or resolved.startswith("random."):
        return (
            f"{resolved}() draws from the stdlib's hidden global RNG; "
            "derive a stream from RngFactory (repro.sim.rng) instead"
        )
    if resolved.startswith("numpy.random."):
        tail = resolved.rsplit(".", 1)[-1]
        if tail not in SEEDED_CONSTRUCTORS:
            return (
                f"{resolved}() uses numpy's legacy global RNG; construct "
                "a seeded Generator (RngFactory.stream / default_rng(seed))"
            )
        if tail == "default_rng" and not node.args and not node.keywords:
            return (
                "default_rng() without a seed is entropy-seeded and "
                "unreproducible; pass the experiment seed"
            )
    return None


class UnseededRngRule(Rule):
    rule_id = "SIM002"
    description = (
        "global-state or entropy-seeded randomness (random.* draws, "
        "unseeded Random()/default_rng(), legacy numpy.random.*); "
        "use the seeded sim.rng streams"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        reason = classify_rng_call(resolved, node)
        if reason is not None:
            yield self.violation(ctx, node, reason)


__all__ = ["SEEDED_CONSTRUCTORS", "UnseededRngRule", "classify_rng_call"]
