"""SIM008 / SIM009 — the whole-program rules.

Unlike SIM001–SIM007 these are not per-module AST visitors: they need
the project-wide call graph that :mod:`repro.analysis.interproc` builds
from every analyzed file at once, so the classes here are *descriptors*
— they carry the rule id, severity, description and scope tables that
``--list-rules``, ``--rule`` selection, the JSON/SARIF reports and the
suppression machinery all key on, while the actual analysis lives in
``interproc/taint.py`` and ``interproc/purity.py``.  Running them
requires ``--whole-program`` (selecting one with ``--rule`` enables it
implicitly); under the plain per-module engine they match no AST nodes
and stay silent.

SIM008 — **interprocedural determinism taint.**  Wall-clock reads,
unseeded RNG and ordering sources (``os.environ``, pids, directory
listings) seed taint wherever they occur — including modules SIM001
exempts, because the allowlist is *lifted to the sink*: ``repro.perf``
may read the clock, but a sim-domain function calling a ``repro.perf``
helper two modules away is exactly the laundering the per-module rule
cannot see.

SIM009 — **engine-cell purity proofs.**  Every function submitted to
``repro.exec`` (``Cell(...)`` literals and ``@engine_cell``-marked
functions) must have a transitive closure free of taint, module-global
mutation and unpicklable captures — the static contract behind the
engine's crash-resume guarantee that re-executing a cell is harmless.
"""

from __future__ import annotations

from repro.analysis.rules.base import SIM_DOMAINS, Rule
from repro.analysis.rules.wallclock import WallClockRule


class WholeProgramRule(Rule):
    """Marker base: analysis happens in ``repro.analysis.interproc``."""

    #: Distinguishes descriptor rules from per-module visitors; the CLI
    #: auto-enables ``--whole-program`` when one is selected explicitly.
    whole_program: bool = True


class DeterminismTaintRule(WholeProgramRule):
    rule_id = "SIM008"
    description = (
        "interprocedural determinism taint: sim-domain code reaches a "
        "wall-clock/RNG/ordering source through helper calls "
        "(whole-program; SIM001's allowlist applies to the sink, not "
        "the source)"
    )
    #: Sinks audited: the deterministic core.  The allowlist re-uses
    #: SIM001's — those modules measure wall time *on purpose* and are
    #: legitimate sinks, but still seed taint into their callers.
    domains = SIM_DOMAINS
    allowlist = WallClockRule.allowlist


class EngineCellPurityRule(WholeProgramRule):
    rule_id = "SIM009"
    description = (
        "engine-cell purity: a function submitted to repro.exec "
        "(Cell(...) / @engine_cell) must be taint-free, mutate no "
        "module globals, and capture nothing unpicklable (whole-program)"
    )
    # Cells may be defined anywhere (experiments, fuzz, fleet,
    # third-party policy modules), so the sink scope is every module.
    domains = ()
    allowlist = ()


__all__ = ["DeterminismTaintRule", "EngineCellPurityRule", "WholeProgramRule"]
