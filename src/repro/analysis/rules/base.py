"""Rule base class and the domain tables every rule scopes itself by.

A rule is a small visitor: it declares the AST node types it wants
(``interests``) and the dotted-module prefixes it audits (``domains``),
and yields :class:`~repro.analysis.core.Violation` objects from
``visit``.  The :class:`~repro.analysis.core.Analyzer` walks each tree
once and fans nodes out to every interested rule, so adding a rule
never adds another pass over the source.

Domain tables
-------------

``SIM_DOMAINS``
    Packages whose code runs *inside* a simulation: everything here
    must be a pure function of the seed and the virtual clock.

``DECISION_DOMAINS``
    The subset whose iteration order feeds scheduling, placement or
    clustering decisions — where container-order nondeterminism
    silently changes results instead of merely reordering logs.

``HOT_PATH_MODULES``
    Modules whose classes are instantiated per-entity at scale (per
    event, per thread, per phase, per cache segment) and are therefore
    required to declare ``__slots__`` (SIM005).  Deliberately *not*
    listed: ``repro.hypervisor.machine`` — ``Machine`` is a
    one-per-scenario orchestrator whose instance-dict overhead is
    immaterial and whose dynamic attribute surface is part of its
    extension contract (``PCpuContext``, the per-pCPU class in that
    module, is slotted voluntarily).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.core import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

SIM_DOMAINS: tuple[str, ...] = (
    "repro.sim",
    "repro.hypervisor",
    "repro.dynamics",
    "repro.core",
    "repro.guest",
    "repro.hardware",
    "repro.workloads",
    "repro.baselines",
    "repro.metrics",
    "repro.telemetry",
    "repro.fleet",
)

DECISION_DOMAINS: tuple[str, ...] = (
    "repro.core",
    "repro.hypervisor",
    "repro.baselines",
    "repro.dynamics",
    "repro.sim",
    "repro.guest",
    "repro.fleet",
)

HOT_PATH_MODULES: tuple[str, ...] = (
    "repro.sim.engine",
    "repro.guest.thread",
    "repro.guest.phases",
    "repro.hardware.pmu",
    "repro.hardware.cache",
    "repro.hypervisor.credit",
    "repro.telemetry.registry",
    "repro.telemetry.spans",
)


def module_in(module: str, prefixes: Sequence[str]) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested inside one."""
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


class Rule:
    """One auditable invariant.  Subclass and register in ``rules/__init__``."""

    #: Stable identifier, ``SIMnnn``; what suppressions refer to.
    rule_id: str = "SIM000"
    #: ``error`` fails the run; ``warning`` is report-only.
    severity: str = "error"
    #: One-line summary shown by ``--list-rules``.
    description: str = ""
    #: AST node types routed to :meth:`visit`.
    interests: tuple[type, ...] = ()
    #: Dotted-module prefixes audited; empty tuple means every module.
    domains: tuple[str, ...] = ()
    #: Dotted-module prefixes exempted even inside ``domains``.  Every
    #: entry must be justified in the rule's source.
    allowlist: tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if self.allowlist and module_in(module, self.allowlist):
            return False
        if not self.domains:
            return True
        return module_in(module, self.domains)

    def start_module(self, ctx: "ModuleContext") -> None:
        """Per-module setup hook (import-map peeks, counters)."""

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        return ()

    def finish_module(self, ctx: "ModuleContext") -> Iterable[Violation]:
        """Per-module teardown hook for rules that aggregate."""
        return ()

    # ------------------------------------------------------------------
    def violation(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


def name_tokens(node: ast.AST) -> set[str]:
    """Lower-cased identifier fragments mentioned anywhere in ``node``.

    ``spacing_ns`` contributes ``{"spacing", "ns"}`` — the fragments are
    what the time-hint heuristics in SIM004 match against.
    """
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        elif isinstance(sub, ast.arg):
            ident = sub.arg
        else:
            continue
        tokens.update(part for part in ident.lower().split("_") if part)
    return tokens


__all__ = [
    "DECISION_DOMAINS",
    "HOT_PATH_MODULES",
    "Rule",
    "SIM_DOMAINS",
    "module_in",
    "name_tokens",
]
