"""SIM003 — order-nondeterministic iteration on decision paths.

Set iteration order depends on insertion history *and* on hash
randomization / pointer values for non-scalar elements, so a scheduling
or clustering loop driven by a ``set`` can pick a different winner on
an identical run.  The rule flags ``for``-loops and comprehensions
whose iterable is:

* a ``set``/``frozenset`` literal, set comprehension, or call;
* an order-*sensitive* builtin (``list``, ``tuple``, ``iter``,
  ``enumerate``, ``reversed``) wrapped around one of the above —
  ``list(set(...))`` launders the nondeterminism, it does not fix it;
* an explicit ``.keys()`` call — dict views are insertion-ordered, but
  a decision loop spelled ``for k in d.keys()`` is usually inheriting
  whatever order the dict was *built* in; spell the intended order out
  (``sorted(d)`` or a list maintained in decision order).

``sorted(set(...))``, ``min``/``max``/``sum``/``len``/``any``/``all``
over a set are order-insensitive and pass.  Limitation (DESIGN.md §10):
iteration over a *variable* that holds a set is invisible without type
inference; the rule catches the construction sites, the equivalence
suites catch the rest dynamically.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Optional

from repro.analysis.core import Violation
from repro.analysis.rules.base import DECISION_DOMAINS, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Builtins that preserve (hence propagate) their argument's order.
ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


def _unordered_reason(node: ast.expr, ctx: "ModuleContext") -> Optional[str]:
    """Why iterating ``node`` is order-nondeterministic, or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        if resolved in ("set", "frozenset"):
            return f"a {resolved}()"
        if resolved in ORDER_SENSITIVE_WRAPPERS and node.args:
            inner = _unordered_reason(node.args[0], ctx)
            if inner:
                return f"{resolved}() over {inner}"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        ):
            return "an explicit .keys() view"
    return None


class UnorderedIterationRule(Rule):
    rule_id = "SIM003"
    description = (
        "iteration over a set/.keys() view on a decision path; "
        "sort explicitly or keep an ordered structure"
    )
    interests = (ast.For, ast.comprehension)
    domains = DECISION_DOMAINS

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        iterable = node.iter  # type: ignore[attr-defined]  # For | comprehension
        reason = _unordered_reason(iterable, ctx)
        if reason:
            anchor = node if isinstance(node, ast.For) else iterable
            yield self.violation(
                ctx,
                anchor,
                f"iterating {reason} feeds container order into a decision; "
                "wrap in sorted(...) or maintain an ordered structure",
            )


__all__ = ["ORDER_SENSITIVE_WRAPPERS", "UnorderedIterationRule"]
