"""SIM006 — broad handlers that can swallow ``SimulationError``.

:class:`repro.sim.engine.SimulationError` marks *impossible* states —
a clock running backwards, an event scheduled in the past.  It exists
to crash the run: a handler that catches it (directly, or via
``Exception``/``RuntimeError``/bare ``except``) and carries on converts
a hard invariant failure into silently-wrong published numbers, which
is strictly worse.  Broad handlers pass only when their body re-raises
(any ``raise`` statement — cleanup-and-propagate is the one legitimate
shape, e.g. the atomic-publish unwind in ``repro.exec.cache``).

A deliberate broad catch around code that cannot raise
``SimulationError`` (e.g. unpickling a cache entry, where *any*
exception must degrade to a miss) takes a line-level
``# simlint: disable=SIM006`` with a justification comment.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Violation
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Exception-name tails that (can) match SimulationError.
BROAD_NAMES = frozenset({"Exception", "BaseException", "RuntimeError", "SimulationError"})


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return ["<bare except>"]
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for expr in exprs:
        if isinstance(expr, ast.Attribute):
            names.append(expr.attr)
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))


class SwallowedSimulationErrorRule(Rule):
    rule_id = "SIM006"
    description = (
        "broad except can swallow SimulationError; catch specific "
        "exceptions or re-raise"
    )
    interests = (ast.Try,)

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        assert isinstance(node, ast.Try)
        for handler in node.handlers:
            names = _handler_names(handler)
            broad = [
                name
                for name in names
                if name == "<bare except>" or name in BROAD_NAMES
            ]
            if broad and not _reraises(handler):
                yield self.violation(
                    ctx,
                    handler,
                    f"handler for {', '.join(broad)} swallows engine-invariant "
                    "failures (SimulationError); narrow the except or re-raise",
                )


__all__ = ["BROAD_NAMES", "SwallowedSimulationErrorRule"]
