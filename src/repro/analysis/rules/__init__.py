"""The simlint rule battery.

Adding a rule (DESIGN.md §10 walks through a full example):

1. create ``rules/<name>.py`` with a :class:`~repro.analysis.rules.base.Rule`
   subclass — pick the next free ``SIMnnn`` id, scope it with
   ``domains``/``allowlist`` (justify every allowlist entry in the
   rule's docstring);
2. register the class in :data:`RULE_CLASSES` below;
3. add fixture snippets (positive, negative, suppressed) under
   ``tests/analysis_fixtures/`` — the fixture-driven test picks them up
   by filename, no test code needed;
4. run the self-check (``make lint``); fix or justify whatever the new
   rule finds in the existing tree.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.rules.base import Rule
from repro.analysis.rules.exceptions import SwallowedSimulationErrorRule
from repro.analysis.rules.interproc import (
    DeterminismTaintRule,
    EngineCellPurityRule,
    WholeProgramRule,
)
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.procpool import ProcessPoolRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.simtime import SimTimeFloatRule
from repro.analysis.rules.slots import MissingSlotsRule
from repro.analysis.rules.wallclock import WallClockRule

#: Every registered rule, in rule-id order.  SIM008/SIM009 are
#: whole-program descriptors (see ``rules/interproc.py``): listed,
#: selectable and suppressible like any rule, but their analysis runs
#: in ``repro.analysis.interproc`` under ``--whole-program``.
RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRngRule,
    UnorderedIterationRule,
    SimTimeFloatRule,
    MissingSlotsRule,
    SwallowedSimulationErrorRule,
    ProcessPoolRule,
    DeterminismTaintRule,
    EngineCellPurityRule,
)

RULE_INDEX: dict[str, type[Rule]] = {cls.rule_id: cls for cls in RULE_CLASSES}

#: Rule ids whose findings only the whole-program pass can produce.
WHOLE_PROGRAM_RULE_IDS: frozenset[str] = frozenset(
    cls.rule_id for cls in RULE_CLASSES if issubclass(cls, WholeProgramRule)
)


def default_rules() -> list[Rule]:
    """Fresh instances of the full battery."""
    return [cls() for cls in RULE_CLASSES]


def get_rules(rule_ids: Optional[Iterable[str]] = None) -> list[Rule]:
    """Instantiate ``rule_ids`` (or the full battery when None)."""
    if rule_ids is None:
        return default_rules()
    selected: list[Rule] = []
    unknown: list[str] = []
    for rule_id in rule_ids:
        cls = RULE_INDEX.get(rule_id.upper())
        if cls is None:
            unknown.append(rule_id)
        else:
            selected.append(cls())
    if unknown:
        known = ", ".join(sorted(RULE_INDEX))
        raise KeyError(f"unknown rule id(s) {unknown!r}; known rules: {known}")
    return selected


def describe_rules(rules: Optional[Sequence[Rule]] = None) -> list[dict[str, str]]:
    """Catalogue rows for ``--list-rules`` and the JSON report."""
    if rules is None:
        rules = default_rules()
    return [
        {
            "rule": rule.rule_id,
            "severity": rule.severity,
            "description": rule.description,
        }
        for rule in rules
    ]


__all__ = [
    "RULE_CLASSES",
    "RULE_INDEX",
    "Rule",
    "WHOLE_PROGRAM_RULE_IDS",
    "WholeProgramRule",
    "default_rules",
    "describe_rules",
    "get_rules",
]
