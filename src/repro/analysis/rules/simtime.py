"""SIM004 — float hazards on simulated-time arithmetic.

The virtual clock is integer nanoseconds precisely so that time
arithmetic is exact.  Two constructs smuggle floats back in:

* ``int(x / y)`` — true division produces a float, and above 2**53 ns
  (~104 virtual days, easily reached by cumulative counters) doubles
  can no longer represent every integer, so the truncation is off by
  whole nanoseconds *and* rounds toward zero rather than flooring.
  This is the exact bug class PR 3 fixed in ``Simulator.after``.  Use
  floor division on integers (``//``) or an explicit ``round()``.
* ``t == 0.5`` — equality against a non-integral float constant on a
  time-named operand; fractional nanoseconds do not exist, so the
  comparison is either always false or hiding a unit error.

Both checks fire only when the expression mentions a time-hinted
identifier fragment (``TIME_HINT_TOKENS``) — the rule has no type
information, and the hint keeps it away from genuinely unitless
arithmetic (ratios, weights, credit fractions).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Violation
from repro.analysis.rules.base import SIM_DOMAINS, Rule, name_tokens

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Identifier fragments that mark an expression as time-valued.
#: ``spacing_ns`` hits via ``ns``; ``quantum`` and ``deadline`` appear
#: whole.  Deliberately excludes bare single letters (``t``) — too many
#: false positives in generic numeric code.
TIME_HINT_TOKENS = frozenset(
    {
        "ns",
        "time",
        "now",
        "deadline",
        "expiry",
        "quantum",
        "delay",
        "tick",
        "period",
        "start",
        "end",
        "elapsed",
        "horizon",
        "slot",
        "vtime",
        "latency",
        "timeout",
    }
)

#: Truncating call targets the rule audits.
TRUNCATING_CALLS = frozenset({"int", "math.floor", "math.trunc"})


def _mentions_time(node: ast.AST) -> bool:
    return bool(name_tokens(node) & TIME_HINT_TOKENS)


def _contains_true_division(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
        for sub in ast.walk(node)
    )


def _is_fractional_float(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and not node.value.is_integer()
    )


class SimTimeFloatRule(Rule):
    rule_id = "SIM004"
    description = (
        "float truncation / float equality on simulated time; "
        "keep the clock integral (// or round)"
    )
    interests = (ast.Call, ast.Compare)
    domains = SIM_DOMAINS

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        if isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if (
                resolved in TRUNCATING_CALLS
                and len(node.args) == 1
                and _contains_true_division(node.args[0])
                and _mentions_time(node.args[0])
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved}() of a true-division result truncates a "
                    "float time (doubles lose ns precision past 2**53); use "
                    "integer floor division // or an explicit round()",
                )
        elif isinstance(node, ast.Compare):
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                return
            operands = [node.left, *node.comparators]
            fractional = [op for op in operands if _is_fractional_float(op)]
            if fractional and any(
                _mentions_time(op) for op in operands if not _is_fractional_float(op)
            ):
                yield self.violation(
                    ctx,
                    node,
                    "equality against a non-integral float on a time value; "
                    "the clock is integer nanoseconds — compare integers",
                )


__all__ = ["TIME_HINT_TOKENS", "TRUNCATING_CALLS", "SimTimeFloatRule"]
