"""SIM005 — missing ``__slots__`` in designated hot-path modules.

The PR 3 profile showed per-instance ``__dict__`` allocation as a
measurable cost for classes created per event, per guest thread, per
phase and per cache segment; those modules (``HOT_PATH_MODULES`` in
``rules/base.py``, rationale there) are required to slot every class.

Passes:

* plain classes with a ``__slots__`` assignment in the body (inherited
  slots do not help — any un-slotted class in the chain re-grows the
  dict, so each class must declare its own, possibly empty, tuple);
* ``@dataclass(slots=True)`` in any decorator spelling;
* exception classes (``raise`` sites are never hot, and BaseException
  requires a dict), enums, Protocols, NamedTuples, TypedDicts, ABCs.

A deliberately dict-backed class in a designated module takes a
line-level ``# simlint: disable=SIM005`` with a justification comment
(suppression policy: DESIGN.md §10).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Optional

from repro.analysis.core import Violation
from repro.analysis.rules.base import HOT_PATH_MODULES, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Base-class name tails that exempt a class from the slots requirement.
EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Protocol",
        "NamedTuple",
        "TypedDict",
        "ABC",
        "Generic",
    }
)


def _tail(expr: ast.expr) -> str:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Subscript):  # Generic[T], Protocol[T]
        return _tail(expr.value)
    return ""


def _is_exempt(node: ast.ClassDef) -> bool:
    if node.name.endswith(("Error", "Exception")):
        return True
    for base in node.bases:
        tail = _tail(base)
        if tail in EXEMPT_BASES or tail.endswith(("Error", "Exception")):
            return True
    return False


def _dataclass_decorator(
    node: ast.ClassDef, ctx: "ModuleContext"
) -> Optional[ast.expr]:
    """The ``dataclass`` decorator node, bare or called, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, (ast.Name, ast.Attribute)):
            resolved = ctx.resolve(target)
            if resolved in ("dataclasses.dataclass", "dataclass"):
                return decorator
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class MissingSlotsRule(Rule):
    rule_id = "SIM005"
    description = "hot-path class without __slots__ (per-instance dict churn)"
    interests = (ast.ClassDef,)
    domains = HOT_PATH_MODULES

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        assert isinstance(node, ast.ClassDef)
        if _is_exempt(node):
            return
        decorator = _dataclass_decorator(node, ctx)
        if decorator is not None:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return
            yield self.violation(
                ctx,
                node,
                f"hot-path dataclass {node.name!r} allocates a __dict__ per "
                "instance; declare @dataclass(slots=True)",
            )
            return
        if not _declares_slots(node):
            yield self.violation(
                ctx,
                node,
                f"hot-path class {node.name!r} allocates a __dict__ per "
                "instance; declare __slots__",
            )


__all__ = ["EXEMPT_BASES", "MissingSlotsRule"]
