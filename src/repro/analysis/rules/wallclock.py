"""SIM001 — wall-clock reads inside simulation code.

A single ``time.time()`` (or friend) on a decision path makes a run a
function of the host machine's load instead of the seed: serial and
parallel sweeps diverge, cache replay stops being byte-identical, and
the heap≡wheel differential suite loses its meaning.  Simulation code
must read the virtual clock (``Simulator.now``) exclusively.

Allowlist — every entry measures *real* wall time on purpose and is
therefore outside the deterministic core:

``repro.perf``
    The profiling subsystem.  Capturing wall-clock cost of the
    simulator is its entire job; it never runs inside a simulation.
``benchmarks``
    The benchmark harness (``benchmarks/run_bench.py`` and the
    pytest-benchmark scenarios).  It times the simulator from the
    outside to maintain ``BENCH_sim.json``; the simulated work it
    drives stays on the virtual clock.
``repro.exec.queue``
    The engine's work-stealing pool stamps each cell with its wall
    duration (``timed_call``), its CPU/RSS resource profile
    (``profiled_call``: ``os.times`` / ``resource.getrusage``) and
    worker heartbeat timestamps — progress reporting, event-stream
    metadata and the ops plane's liveness ledger.  None of it ever
    feeds back into any result — the event-stream golden test
    normalises all of it to zero precisely because it is
    presentation-only.
``repro.experiments.overhead``
    Reproduces the paper's overhead table, whose whole point is
    comparing *real* recognition cost against the oracle — the one
    experiment where wall time is the measured quantity.
``repro.experiments.__main__``
    CLI progress output ("[fig5 took 12.3s]"); presentation only.
``repro.telemetry.exposition``
    The telemetry *export* layer stamps artifacts (Prometheus text,
    JSONL) with the wall-clock moment they were written — host-side
    provenance, recorded after the simulation finished, never an input
    to it.  The recording layers (``repro.telemetry.registry``/
    ``spans``/``audit``) stay on the virtual clock and remain fully
    audited; the fixture ``sim001_telemetry_flagged.py`` proves an
    unguarded wall-clock read there still fails.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Violation
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Canonical dotted names of wall-clock reads (import aliases are
#: resolved before matching, so ``from time import time; time()`` and
#: ``np_time()`` under ``as`` renames are all caught).
WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.times",
        "resource.getrusage",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    rule_id = "SIM001"
    description = (
        "wall-clock read in simulation code; use the virtual clock "
        "(Simulator.now) — wall timing belongs in repro.perf/benchmarks"
    )
    interests = (ast.Call,)
    allowlist = (
        "repro.perf",
        "benchmarks",
        "repro.exec.queue",
        "repro.experiments.overhead",
        "repro.experiments.__main__",
        "repro.telemetry.exposition",
    )

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_NAMES:
            yield self.violation(
                ctx,
                node,
                f"wall-clock read {resolved}() makes the run depend on host "
                "load, not the seed; read the simulator clock instead",
            )


__all__ = ["WALL_CLOCK_NAMES", "WallClockRule"]
