"""SIM007 — process pools outside the sanctioned engine entry point.

Every process pool in the tree must be the work-stealing pool in
``repro.exec.queue``: cells that fan out through the engine get
content-addressed caching, checkpoint journalling, the typed event
stream and crash-consistent resume for free.  An ad-hoc
``multiprocessing`` pool (or a ``ProcessPoolExecutor``) bypasses all
of it — its results are invisible to ``--resume``, its workers strand
temp files on Ctrl-C, and its interleavings are pinned by no
determinism property.  Plan :class:`repro.exec.Cell` lists instead.

Thread pools are *not* flagged: they share the interpreter, cannot
bypass the cache, and the tree does not use them on result paths.

Allowlist — the one sanctioned entry point:

``repro.exec.queue``
    The engine's own work-stealing pool.  Everything the rule exists
    to protect (checkpointing, event narration, teardown on interrupt)
    is implemented *here*, so this module is definitionally exempt.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Violation
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleContext

#: Dotted names that construct a process pool no matter how imported.
POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.Process",
    }
)

_ADVICE = (
    "bypasses the engine's caching, checkpointing and event stream; "
    "plan repro.exec Cells and run them through SweepRunner/Engine"
)


def _from_target(node: ast.ImportFrom, alias: ast.alias) -> str:
    base = node.module or ""
    return f"{base}.{alias.name}" if base else alias.name


class ProcessPoolRule(Rule):
    rule_id = "SIM007"
    description = (
        "process-pool use outside repro.exec.queue; plan cells through "
        "the sweep engine instead of forking ad-hoc workers"
    )
    interests = (ast.Import, ast.ImportFrom, ast.Call)
    allowlist = ("repro.exec.queue",)

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> Iterable[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "multiprocessing":
                    yield self.violation(
                        ctx, node,
                        f"import of {alias.name!r} {_ADVICE}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: stays inside this package
                return
            root = (node.module or "").split(".")[0]
            if root == "multiprocessing":
                yield self.violation(
                    ctx, node,
                    f"import from {node.module!r} {_ADVICE}",
                )
            elif root == "concurrent":
                for alias in node.names:
                    target = _from_target(node, alias)
                    if target in POOL_CONSTRUCTORS or alias.name.startswith(
                        "ProcessPool"
                    ):
                        yield self.violation(
                            ctx, node,
                            f"import of {target!r} {_ADVICE}",
                        )
        else:
            assert isinstance(node, ast.Call)
            resolved = ctx.resolve(node.func)
            if resolved in POOL_CONSTRUCTORS:
                yield self.violation(
                    ctx, node,
                    f"{resolved}() {_ADVICE}",
                )


__all__ = ["POOL_CONSTRUCTORS", "ProcessPoolRule"]
