"""Violation reporters: compiler-style text, machine JSON, and SARIF.

The JSON document is the CI contract (the ``static-analysis`` job and
the seeded-violation acceptance test both parse it), so its shape is
versioned::

    {
      "schema": 1,
      "violations": [{"rule", "path", "line", "col", "severity", "message"}],
      "counts": {"SIM001": 2, ...},        # only rules that fired
      "checked_rules": [{"rule", "severity", "description"}],
      "files": 42,
      "exit": 1
    }

The SARIF reporter emits a minimal SARIF 2.1.0 log (one run, tool
``simlint``, full rule catalogue, one result per violation with a
physical location) so findings render natively in code-scanning UIs;
interprocedural witness paths are carried as ``codeFlows``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.core import Violation
from repro.analysis.rules import Rule, describe_rules

REPORT_SCHEMA = 1


def exit_code(violations: Sequence[Violation]) -> int:
    """Non-zero iff any *error*-severity violation survived suppression."""
    return 1 if any(v.severity == "error" for v in violations) else 0


def render_text(violations: Sequence[Violation], files: int) -> str:
    lines = [violation.render() for violation in violations]
    if violations:
        counts = Counter(v.rule_id for v in violations)
        summary = ", ".join(f"{rule}×{n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"simlint: {len(violations)} violation(s) in {files} file(s) [{summary}]"
        )
    else:
        lines.append(f"simlint: clean ({files} file(s) checked)")
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    files: int,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    document = {
        "schema": REPORT_SCHEMA,
        "violations": [v.as_dict() for v in violations],
        "counts": dict(sorted(Counter(v.rule_id for v in violations).items())),
        "checked_rules": describe_rules(rules),
        "files": files,
        "exit": exit_code(violations),
    }
    return json.dumps(document, indent=2, sort_keys=False)


SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_location(violation: Violation) -> dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": Path(violation.path).as_posix()},
            "region": {
                "startLine": violation.line,
                "startColumn": violation.col + 1,
            },
        }
    }


def _sarif_result(violation: Violation) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": violation.rule_id,
        "level": _SARIF_LEVELS.get(violation.severity, "warning"),
        "message": {"text": violation.message},
        "locations": [_sarif_location(violation)],
    }
    if violation.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {"location": {"message": {"text": hop}}}
                            for hop in violation.trace
                        ]
                    }
                ]
            }
        ]
    return result


def render_sarif(
    violations: Sequence[Violation],
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """SARIF 2.1.0 log for code-scanning upload."""
    catalogue = [
        {
            "id": row["rule"],
            "shortDescription": {"text": row["description"]},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(row["severity"], "warning")
            },
        }
        for row in describe_rules(rules)
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": catalogue,
                    }
                },
                "results": [_sarif_result(v) for v in violations],
            }
        ],
    }
    return json.dumps(document, indent=2)


__all__ = [
    "REPORT_SCHEMA",
    "SARIF_VERSION",
    "exit_code",
    "render_json",
    "render_sarif",
    "render_text",
]
