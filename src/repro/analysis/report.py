"""Violation reporters: compiler-style text and machine-readable JSON.

The JSON document is the CI contract (the ``static-analysis`` job and
the seeded-violation acceptance test both parse it), so its shape is
versioned::

    {
      "schema": 1,
      "violations": [{"rule", "path", "line", "col", "severity", "message"}],
      "counts": {"SIM001": 2, ...},        # only rules that fired
      "checked_rules": [{"rule", "severity", "description"}],
      "files": 42,
      "exit": 1
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Optional, Sequence

from repro.analysis.core import Violation
from repro.analysis.rules import Rule, describe_rules

REPORT_SCHEMA = 1


def exit_code(violations: Sequence[Violation]) -> int:
    """Non-zero iff any *error*-severity violation survived suppression."""
    return 1 if any(v.severity == "error" for v in violations) else 0


def render_text(violations: Sequence[Violation], files: int) -> str:
    lines = [violation.render() for violation in violations]
    if violations:
        counts = Counter(v.rule_id for v in violations)
        summary = ", ".join(f"{rule}×{n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"simlint: {len(violations)} violation(s) in {files} file(s) [{summary}]"
        )
    else:
        lines.append(f"simlint: clean ({files} file(s) checked)")
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    files: int,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    document = {
        "schema": REPORT_SCHEMA,
        "violations": [v.as_dict() for v in violations],
        "counts": dict(sorted(Counter(v.rule_id for v in violations).items())),
        "checked_rules": describe_rules(rules),
        "files": files,
        "exit": exit_code(violations),
    }
    return json.dumps(document, indent=2, sort_keys=False)


__all__ = ["REPORT_SCHEMA", "exit_code", "render_json", "render_text"]
