"""Reproduction of *Application-specific quantum for multi-core platform
scheduler* (Teabe, Tchana, Hagimont — EuroSys 2016).

The paper's AQL_Sched prototype was built inside Xen; this library
reproduces the whole system on a discrete-event simulator:

* :mod:`repro.sim` — the event engine;
* :mod:`repro.hardware` — sockets/cores, shared-LLC contention model,
  PMU counters, PLE spin detection;
* :mod:`repro.hypervisor` — VMs/vCPUs, event channels, CPU pools and
  the Credit scheduler (weights, caps, BOOST, 30 ms quantum);
* :mod:`repro.guest` — guest threads, ticket spin locks, spin barriers;
* :mod:`repro.workloads` — synthetic SPEC CPU2006 / PARSEC /
  SPECweb2009 / SPECmail2009 analogues;
* :mod:`repro.core` — the contribution: vTRS cursors (eqs. 1-5),
  quantum calibration, two-level clustering, the AQL manager;
* :mod:`repro.baselines` — vTurbo, vSlicer, Microsliced, native Xen;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import Machine, AqlScheduler, make_app
    from repro.sim.units import MS, SEC

    machine = Machine()                      # an i7-3770-like box
    pool = machine.create_pool("apps", machine.topology.pcpus[:2], 30 * MS)
    vm = machine.new_vm("web", vcpus=1, pool=pool)
    app = make_app("specweb2009", machine.spec).install(machine, vm)
    AqlScheduler(machine, pcpus=pool.pcpus).attach()
    machine.run(2 * SEC)
    app.begin_measurement()
    machine.run(4 * SEC)
    print(app.result())
"""

from repro.core.aql import AqlScheduler
from repro.core.calibration import PAPER_BEST_QUANTA, run_calibration
from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.hardware.specs import i7_3770, xeon_e5_4603
from repro.hypervisor.machine import Machine
from repro.workloads.suites import APP_CATALOG, make_app

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "AqlScheduler",
    "VTRS",
    "VCpuType",
    "PAPER_BEST_QUANTA",
    "run_calibration",
    "APP_CATALOG",
    "make_app",
    "i7_3770",
    "xeon_e5_4603",
    "__version__",
]
