"""Result handling: normalisation and paper-style tables."""

from repro.metrics.stats import MachineStats, StatsCollector
from repro.metrics.tables import ResultTable, format_quantum, normalize_map

__all__ = [
    "ResultTable",
    "normalize_map",
    "format_quantum",
    "MachineStats",
    "StatsCollector",
]
