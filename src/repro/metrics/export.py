"""CSV export for experiment results.

Every experiment returns plain dataclasses; these helpers flatten them
into rows so results can leave the library for plotting (the paper's
figures are line/bar charts over exactly these series).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.calibration import CalibrationResult
    from repro.experiments.runner import ScenarioRun

Row = Mapping[str, object]


def write_csv(path: Union[str, Path], rows: Iterable[Row]) -> Path:
    """Write dict-rows to ``path``; the header is the union of keys."""
    rows = list(rows)
    if not rows:
        raise ValueError("nothing to export")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def calibration_rows(result: "CalibrationResult") -> list[dict]:
    """Fig. 2 as rows: one per (kind, quantum, consolidation)."""
    rows = []
    for (kind, quantum_ms, vcpus_per_pcpu), value in sorted(result.raw.items()):
        rows.append(
            {
                "kind": kind,
                "quantum_ms": quantum_ms,
                "vcpus_per_pcpu": vcpus_per_pcpu,
                "raw": value,
                "normalized": result.normalized[
                    (kind, quantum_ms, vcpus_per_pcpu)
                ],
            }
        )
    for quantum_ms, duration in sorted(result.lock_duration_ns.items()):
        rows.append(
            {
                "kind": "lock_duration",
                "quantum_ms": quantum_ms,
                "raw": duration,
            }
        )
    return rows


def scenario_rows(run: "ScenarioRun") -> list[dict]:
    """A scenario run as rows: one per measured application."""
    rows = []
    for name, result in sorted(run.results.items()):
        row = {
            "scenario": run.scenario,
            "policy": run.policy,
            "application": name,
            "metric": result.metric,
            "value": result.value,
        }
        row.update({f"detail_{k}": v for k, v in result.details})
        rows.append(row)
    return rows


__all__ = ["write_csv", "calibration_rows", "scenario_rows"]
