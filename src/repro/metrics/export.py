"""CSV export for experiment results.

Every experiment returns plain dataclasses; these helpers flatten them
into rows so results can leave the library for plotting (the paper's
figures are line/bar charts over exactly these series).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.calibration import CalibrationResult
    from repro.experiments.runner import ScenarioRun

Row = Mapping[str, object]


def write_csv(
    path: Union[str, Path],
    rows: Iterable[Row],
    fieldnames: Optional[Sequence[str]] = None,
) -> Path:
    """Write dict-rows to ``path``; the header is the union of keys.

    An empty row set is representable only when ``fieldnames`` pins the
    header (a sweep that filtered everything out still produces a valid
    header-only file downstream tools can load); with neither rows nor
    fieldnames there is no schema to write, so it stays an error.
    """
    rows = list(rows)
    if fieldnames is None:
        if not rows:
            raise ValueError("nothing to export")
        fieldnames = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def calibration_rows(result: "CalibrationResult") -> list[dict]:
    """Fig. 2 as rows: one per (kind, quantum, consolidation)."""
    rows = []
    for (kind, quantum_ms, vcpus_per_pcpu), value in sorted(result.raw.items()):
        rows.append(
            {
                "kind": kind,
                "quantum_ms": quantum_ms,
                "vcpus_per_pcpu": vcpus_per_pcpu,
                "raw": value,
                "normalized": result.normalized[
                    (kind, quantum_ms, vcpus_per_pcpu)
                ],
            }
        )
    for quantum_ms, duration in sorted(result.lock_duration_ns.items()):
        rows.append(
            {
                "kind": "lock_duration",
                "quantum_ms": quantum_ms,
                "raw": duration,
            }
        )
    return rows


def scenario_rows(run: "ScenarioRun") -> list[dict]:
    """A scenario run as rows: one per measured application."""
    rows = []
    for name, result in sorted(run.results.items()):
        row = {
            "scenario": run.scenario,
            "policy": run.policy,
            "application": name,
            "metric": result.metric,
            "value": result.value,
        }
        row.update({f"detail_{k}": v for k, v in result.details})
        rows.append(row)
    return rows


def telemetry_rows(run: "ScenarioRun") -> list[dict]:
    """A run's telemetry summary as rows: one per qualified counter.

    Empty when the run was not instrumented (``telemetry=False``) —
    pair with ``write_csv(..., fieldnames=...)`` to still emit a valid
    header-only file in that case.
    """
    return [
        {
            "scenario": run.scenario,
            "policy": run.policy,
            "counter": key,
            "value": value,
        }
        for key, value in sorted(run.telemetry_summary.items())
    ]


TELEMETRY_FIELDNAMES = ("scenario", "policy", "counter", "value")

__all__ = [
    "TELEMETRY_FIELDNAMES",
    "write_csv",
    "calibration_rows",
    "scenario_rows",
    "telemetry_rows",
]
