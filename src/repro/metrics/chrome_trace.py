"""Export a :class:`TraceRecorder` to Chrome's ``trace_event`` format.

The output loads in ``chrome://tracing`` / https://ui.perfetto.dev:
one track per pCPU (tid), vCPU occupancy as complete ("X") slices
reconstructed by :func:`repro.metrics.timeline.build_timeline`, and
the churn/scheduler milestones — pool-plan installs, VM shutdowns,
pCPU faults and every churn event — as global instant ("i") events,
so adaptation lag is literally visible as the gap between the instant
marker and the layout change on the tracks.

Telemetry spans (:class:`repro.telemetry.SpanTracer`) render as a
second process: one tid per span track (``pcpu0..N``, ``aql``,
``engine``, ``machine``, ``churn``), begin/end spans as complete
("X") slices and zero-duration markers as thread-scoped instants, so
quantum slices line up under the vTRS periods and AQL decisions that
produced them.

All timestamps are microseconds (the trace_event unit); the simulator
runs in integer nanoseconds, so slices keep sub-µs precision via
fractional ``ts``/``dur``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional, Union

from repro.metrics.timeline import TIMELINE_KINDS, build_timeline
from repro.sim.tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import SpanTracer

#: pid of the telemetry-span process in the exported document (the
#: machine timeline owns pid 0)
TELEMETRY_PID = 1

#: trace kinds rendered as instant markers
INSTANT_KINDS = (
    "churn",
    "pool-plan",
    "vm-shutdown",
    "pcpu-offline",
    "pcpu-online",
)

#: everything the exporter consumes — pass to ``TraceRecorder(kinds=...)``
CHROME_KINDS = tuple(sorted(TIMELINE_KINDS)) + INSTANT_KINDS


def chrome_trace_events(
    trace: TraceRecorder, end_time: int
) -> list[dict]:
    """The ``traceEvents`` list for one recorded run."""
    timeline = build_timeline(trace, end_time)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "machine"},
        }
    ]
    for pcpu in sorted({i.pcpu for i in timeline.intervals}):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": pcpu,
                "args": {"name": f"pCPU{pcpu}"},
            }
        )
    for interval in timeline.intervals:
        events.append(
            {
                "name": interval.vcpu,
                "cat": "vcpu",
                "ph": "X",
                "ts": interval.start / 1000.0,
                "dur": interval.duration / 1000.0,
                "pid": 0,
                "tid": interval.pcpu,
            }
        )
    for record in trace:
        if record.kind not in INSTANT_KINDS:
            continue
        payload = dict(record.payload)
        name = record.kind
        if record.kind == "churn":
            name = payload.get("detail", "churn")
        events.append(
            {
                "name": name,
                "cat": "churn",
                "ph": "i",
                "s": "g",  # global scope: a full-height marker line
                "ts": record.time / 1000.0,
                "pid": 0,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in payload.items()},
            }
        )
    return events


def _jsonable(value: object) -> Union[str, int, float, bool, None]:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def span_trace_events(tracer: "SpanTracer") -> list[dict]:
    """Telemetry spans as trace events (own process, one tid per track)."""
    tracks = {track: tid for tid, track in enumerate(sorted(tracer.tracks()))}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TELEMETRY_PID,
            "tid": 0,
            "args": {"name": "telemetry"},
        }
    ]
    for track, tid in tracks.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TELEMETRY_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans():
        args = {k: _jsonable(v) for k, v in sorted(span.args.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.category,
            "ts": span.start_ns / 1000.0,
            "pid": TELEMETRY_PID,
            "tid": tracks[span.track],
            "args": args,
        }
        if span.end_ns == span.start_ns:
            event["ph"] = "i"
            event["s"] = "t"  # thread scope: a marker on its own track
        else:
            event["ph"] = "X"
            event["dur"] = span.duration_ns / 1000.0
        events.append(event)
    return events


def to_chrome_trace(
    trace: TraceRecorder,
    end_time: int,
    telemetry: Optional["SpanTracer"] = None,
) -> dict:
    events = chrome_trace_events(trace, end_time)
    if telemetry is not None:
        events.extend(span_trace_events(telemetry))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str,
    trace: TraceRecorder,
    end_time: int,
    telemetry: Optional["SpanTracer"] = None,
) -> int:
    """Write the JSON document; returns the number of trace events."""
    doc = to_chrome_trace(trace, end_time, telemetry=telemetry)
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return len(doc["traceEvents"])


__all__ = [
    "CHROME_KINDS",
    "INSTANT_KINDS",
    "TELEMETRY_PID",
    "chrome_trace_events",
    "span_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]
