"""Machine-level statistics: utilization, fairness, scheduler activity.

A :class:`StatsCollector` snapshots a machine at window start and
produces a :class:`MachineStats` summary at the end — the numbers an
operator would pull from ``xentop``/``xl`` to sanity-check a scheduler:
per-vCPU CPU shares, pool utilization, dispatch/migration counts, IO
and spin totals.

:func:`percentile` / :func:`series_summary` are the shared series
helpers (telemetry ring-buffer series, latency distributions); they
are explicit about the degenerate inputs that bit ad-hoc copies — an
empty series has no percentiles (clear ``ValueError``, not an index
crash) and a single sample *is* every percentile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation between ranks).

    ``q`` runs 0..100.  A single-sample series returns that sample for
    every ``q``; an empty series raises ``ValueError`` (there is no
    value to report, and silently returning 0 would fabricate one).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("empty series has no percentiles")
    if len(data) == 1:
        return data[0]
    position = (len(data) - 1) * (q / 100.0)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return data[lower]
    fraction = position - lower
    return data[lower] * (1.0 - fraction) + data[upper] * fraction


def series_summary(values: Iterable[float]) -> dict[str, float]:
    """count/min/mean/max/p50/p95/p99 of a series; zeros when empty.

    Total (never raises): summarising "no samples yet" is a legitimate
    question — ``count == 0`` marks the other fields as vacuous.
    """
    data = sorted(values)
    if not data:
        return {
            "count": 0.0, "min": 0.0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    return {
        "count": float(len(data)),
        "min": data[0],
        "mean": sum(data) / len(data),
        "max": data[-1],
        "p50": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "p99": percentile(data, 99.0),
    }


@dataclass
class MachineStats:
    """Summary over one observation window."""

    window_ns: int
    #: vcpu name -> fraction of the window it held a pCPU
    cpu_share: dict[str, float] = field(default_factory=dict)
    #: pool name -> busy fraction of its pCPUs
    pool_utilization: dict[str, float] = field(default_factory=dict)
    dispatches: int = 0
    migrations: int = 0
    io_events: float = 0.0
    spin_notifications: float = 0.0
    total_instructions: float = 0.0

    @property
    def machine_utilization(self) -> float:
        """Busy fraction across every pCPU."""
        if not self.pool_utilization:
            return 0.0
        # weight pools equally by reconstructing from shares instead:
        return min(1.0, sum(self.cpu_share.values()) / max(
            1, self._pcpu_count
        ))

    _pcpu_count: int = 0

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-vCPU shares (1.0 = equal)."""
        shares = [s for s in self.cpu_share.values()]
        if not shares:
            return 1.0
        total = sum(shares)
        squares = sum(s * s for s in shares)
        if squares == 0:
            return 1.0
        return (total * total) / (len(shares) * squares)


class StatsCollector:
    """Snapshot-and-diff statistics over a machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._start_ns = 0
        self._run_snapshot: dict[int, float] = {}
        self._dispatch_snapshot: dict[int, int] = {}
        self._migration_snapshot: dict[int, int] = {}
        self._io_snapshot: dict[int, float] = {}
        self._spin_snapshot: dict[int, float] = {}
        self._instr_snapshot: dict[int, float] = {}

    def start(self) -> None:
        """Open the observation window at the machine's current time."""
        self.machine.sync()
        self._start_ns = self.machine.sim.now
        for vcpu in self.machine.all_vcpus:
            self._run_snapshot[vcpu.vcpu_id] = vcpu.run_ns_total
            self._dispatch_snapshot[vcpu.vcpu_id] = vcpu.dispatch_count
            self._migration_snapshot[vcpu.vcpu_id] = vcpu.migrations
            self._io_snapshot[vcpu.vcpu_id] = vcpu.io_events
            self._instr_snapshot[vcpu.vcpu_id] = vcpu.pmu.instructions
        for vm in self.machine.vms:
            self._spin_snapshot[vm.vm_id] = vm.spin_notifications

    def collect(self) -> MachineStats:
        """Close the window and summarise."""
        self.machine.sync()
        window = self.machine.sim.now - self._start_ns
        if window <= 0:
            raise RuntimeError("empty observation window")
        stats = MachineStats(window_ns=window)
        stats._pcpu_count = len(self.machine.topology.pcpus)
        pool_busy: dict[str, float] = {}
        for vcpu in self.machine.all_vcpus:
            run = vcpu.run_ns_total - self._run_snapshot.get(vcpu.vcpu_id, 0.0)
            stats.cpu_share[vcpu.name] = run / window
            stats.dispatches += (
                vcpu.dispatch_count
                - self._dispatch_snapshot.get(vcpu.vcpu_id, 0)
            )
            stats.migrations += (
                vcpu.migrations - self._migration_snapshot.get(vcpu.vcpu_id, 0)
            )
            stats.io_events += (
                vcpu.io_events - self._io_snapshot.get(vcpu.vcpu_id, 0.0)
            )
            stats.total_instructions += (
                vcpu.pmu.instructions
                - self._instr_snapshot.get(vcpu.vcpu_id, 0.0)
            )
            if vcpu.pool is not None:
                pool_busy[vcpu.pool.name] = pool_busy.get(
                    vcpu.pool.name, 0.0
                ) + run
        for vm in self.machine.vms:
            stats.spin_notifications += (
                vm.spin_notifications - self._spin_snapshot.get(vm.vm_id, 0.0)
            )
        for pool in self.machine.pools:
            if pool.pcpus:
                busy = pool_busy.get(pool.name, 0.0)
                stats.pool_utilization[pool.name] = busy / (
                    window * len(pool.pcpus)
                )
        return stats


__all__ = [
    "MachineStats",
    "StatsCollector",
    "percentile",
    "series_summary",
]
