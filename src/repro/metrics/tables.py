"""Plain-text result tables in the style of the paper's figures.

The benchmark harness prints one table per reproduced figure; the
values are normalised exactly like the paper normalises ("over the
performance with the default Xen scheduler", lower is better).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.sim.units import MS
from repro.workloads.base import PerfResult


def normalize_map(
    results: Mapping[str, PerfResult], baseline: Mapping[str, PerfResult]
) -> dict[str, float]:
    """Per-app normalised performance (value / baseline value)."""
    normalized = {}
    for name, result in results.items():
        if name not in baseline:
            raise KeyError(f"no baseline measurement for {name!r}")
        normalized[name] = result.normalized_to(baseline[name])
    return normalized


def format_quantum(quantum_ns: Optional[int]) -> str:
    if quantum_ns is None:
        return "agnostic"
    return f"{quantum_ns // MS}ms"


class ResultTable:
    """A small aligned-text table builder."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


__all__ = ["ResultTable", "normalize_map", "format_quantum"]
