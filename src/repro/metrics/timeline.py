"""Schedule-timeline analysis from the machine's trace.

With tracing enabled (``Machine(trace=TraceRecorder(enabled=True))``),
the dispatcher emits ``dispatch``/``preempt``/``block``/``wake``
records.  :func:`build_timeline` reconstructs per-vCPU run intervals,
from which :func:`scheduling_delays` extracts the wake-to-dispatch
latencies (the quantity the paper's IO analysis is about) and
:func:`render_gantt` draws a terminal Gantt chart of who held each
pCPU when — invaluable when debugging scheduler changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.tracing import TraceRecorder

#: the trace kinds the timeline needs (pass to TraceRecorder(kinds=...))
TIMELINE_KINDS = {"dispatch", "desched", "preempt", "block", "wake"}


@dataclass(frozen=True)
class RunInterval:
    """One continuous stretch of a vCPU holding a pCPU."""

    vcpu: str
    pcpu: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Timeline:
    intervals: list[RunInterval] = field(default_factory=list)
    #: vcpu -> list of (wake time, following dispatch time)
    wake_to_dispatch: dict[str, list[tuple[int, int]]] = field(
        default_factory=dict
    )
    end_time: int = 0

    def intervals_of(self, vcpu: str) -> list[RunInterval]:
        return [i for i in self.intervals if i.vcpu == vcpu]

    def busy_fraction(self, pcpu: int) -> float:
        if self.end_time <= 0:
            return 0.0
        busy = sum(i.duration for i in self.intervals if i.pcpu == pcpu)
        return busy / self.end_time


def build_timeline(trace: TraceRecorder, end_time: int) -> Timeline:
    """Reconstruct run intervals and wake latencies from a trace."""
    timeline = Timeline(end_time=end_time)
    open_interval: dict[str, tuple[int, int]] = {}  # vcpu -> (pcpu, start)
    pending_wake: dict[str, int] = {}
    for record in trace:
        kind = record.kind
        vcpu = record.payload.get("vcpu")
        if vcpu is None:
            continue
        if kind == "dispatch":
            # an unfinished previous interval means we missed its end
            # (e.g. a pool-plan deschedule); close it at this instant
            if vcpu in open_interval:
                pcpu, start = open_interval.pop(vcpu)
                timeline.intervals.append(
                    RunInterval(vcpu, pcpu, start, record.time)
                )
            open_interval[vcpu] = (record.payload["pcpu"], record.time)
            if vcpu in pending_wake:
                timeline.wake_to_dispatch.setdefault(vcpu, []).append(
                    (pending_wake.pop(vcpu), record.time)
                )
        elif kind in ("desched", "preempt", "block"):
            if vcpu in open_interval:
                pcpu, start = open_interval.pop(vcpu)
                timeline.intervals.append(
                    RunInterval(vcpu, pcpu, start, record.time)
                )
        elif kind == "wake":
            pending_wake[vcpu] = record.time
    for vcpu, (pcpu, start) in open_interval.items():
        timeline.intervals.append(RunInterval(vcpu, pcpu, start, end_time))
    timeline.intervals.sort(key=lambda i: (i.start, i.pcpu))
    return timeline


def scheduling_delays(timeline: Timeline, vcpu: str) -> list[int]:
    """Wake-to-dispatch latencies for one vCPU (ns)."""
    return [
        dispatch - wake
        for wake, dispatch in timeline.wake_to_dispatch.get(vcpu, [])
    ]


def render_gantt(
    timeline: Timeline,
    start: int = 0,
    end: Optional[int] = None,
    width: int = 72,
) -> str:
    """A terminal Gantt chart: one row per pCPU, one glyph per slot.

    Each vCPU gets a stable letter; '.' is idle.  Slots with several
    occupants (finer-grained switching than the resolution) show the
    one holding the slot longest.
    """
    if end is None:
        end = timeline.end_time
    if end <= start:
        raise ValueError("empty window")
    pcpus = sorted({i.pcpu for i in timeline.intervals})
    vcpus = sorted({i.vcpu for i in timeline.intervals})
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    glyph = {name: alphabet[i % len(alphabet)] for i, name in enumerate(vcpus)}
    span = end - start
    slot = span / width
    lines = []
    for pcpu in pcpus:
        per_slot: list[dict[str, float]] = [dict() for _ in range(width)]
        for interval in timeline.intervals:
            if interval.pcpu != pcpu or interval.end <= start or interval.start >= end:
                continue
            # exact integer slot indices: times are integer ns, and the
            # float path (int(t / slot)) both truncates toward zero and
            # loses whole nanoseconds once t exceeds 2**53
            first = max(0, (interval.start - start) * width // span)
            last = min(width - 1, (interval.end - start - 1) * width // span)
            for index in range(first, last + 1):
                slot_start = start + index * slot
                slot_end = slot_start + slot
                overlap = min(interval.end, slot_end) - max(
                    interval.start, slot_start
                )
                if overlap > 0:
                    per_slot[index][interval.vcpu] = (
                        per_slot[index].get(interval.vcpu, 0.0) + overlap
                    )
        row = []
        for index in range(width):
            if per_slot[index]:
                best = max(per_slot[index], key=per_slot[index].get)
                row.append(glyph[best])
            else:
                row.append(".")
        lines.append(f"pCPU{pcpu:<3d} |{''.join(row)}|")
    legend = "  ".join(f"{glyph[name]}={name}" for name in vcpus)
    return "\n".join(lines) + "\n" + legend


__all__ = [
    "TIMELINE_KINDS",
    "RunInterval",
    "Timeline",
    "build_timeline",
    "scheduling_delays",
    "render_gantt",
]
