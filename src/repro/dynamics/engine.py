"""The churn engine: arms a timeline and applies events to a machine.

The engine owns the *mechanism* of churn: each event on the timeline
is scheduled at its absolute virtual time; when it fires, the engine
snapshots the world for the adaptation tracker (``on_event`` runs
*before* the event is applied, so the probe sees the pre-event state
at the event boundary), then mutates the machine — boots or tears down
VMs, swaps workload modes, spikes IO load, fails or revives pCPUs —
and records what it did.

Booted VMs are placed in the least-loaded pool that still overlaps the
scenario's confinement (``allowed_pcpus``), so hot-adds never escape
onto cores the experiment reserved — the policy's next re-clustering
re-places them anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.dynamics.events import (
    ChurnEvent,
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    VmBoot,
    VmShutdown,
)
from repro.dynamics.workload import SwitchableWorkload
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.topology import PCpu
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.pools import CpuPool
    from repro.hypervisor.vm import VM


@dataclass(frozen=True)
class AppliedEvent:
    """One event the engine actually executed, with its fire time."""

    time_ns: int
    event: ChurnEvent


class ChurnEngine:
    """Inject a :class:`ChurnTimeline` into a running machine."""

    def __init__(
        self,
        machine: "Machine",
        timeline: ChurnTimeline,
        workloads: dict[str, Workload],
        allowed_pcpus: Optional[Sequence["PCpu"]] = None,
        on_event: Optional[Callable[[ChurnEvent], None]] = None,
        clients: int = 8,
    ):
        self.machine = machine
        self.timeline = timeline
        #: name -> workload; shared with the caller and extended as
        #: VMs boot (shut-down VMs stay registered so post-mortem
        #: metrics still reach their counters)
        self.workloads = workloads
        self.allowed_pcpus = (
            list(allowed_pcpus) if allowed_pcpus is not None else None
        )
        self.on_event = on_event
        self.clients = clients
        self.applied: list[AppliedEvent] = []
        self._spike_base: dict[str, int] = {}
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, origin_ns: Optional[int] = None) -> None:
        """Schedule every timeline event at ``origin + at_ns``.

        Events are scheduled in tuple order, and the simulator fires
        same-instant events in scheduling order, so events sharing a
        timestamp fire in tuple order — the documented tie-break
        :class:`~repro.dynamics.events.ChurnTimeline` promises.
        """
        if self._armed:
            raise RuntimeError("timeline already armed")
        self._armed = True
        origin = self.machine.sim.now if origin_ns is None else origin_ns
        for event in self.timeline.events:
            self.machine.sim.at(
                origin + event.at_ns,
                lambda e=event: self._fire(e),
                f"churn:{event.kind}",
            )

    def _fire(self, event: ChurnEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)  # pre-event boundary snapshot
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)
        self.applied.append(AppliedEvent(self.machine.sim.now, event))
        self.machine.trace.emit(
            self.machine.sim.now,
            "churn",
            event=event.kind,
            detail=event.describe(),
        )
        telemetry = self.machine.telemetry
        if telemetry.enabled:
            telemetry.registry.counter("churn_events", kind=event.kind).inc()
            telemetry.tracer.instant(
                self.machine.sim.now,
                f"churn:{event.kind}",
                track="churn",
                detail=event.describe(),
            )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _apply_vm_boot(self, event: VmBoot) -> None:
        if event.name in self.workloads:
            raise ValueError(f"a VM named {event.name!r} already exists")
        pool = self._placement_pool()
        vm = self.machine.new_vm(event.name, event.vcpus, pool=pool)
        workload = SwitchableWorkload(
            event.name, mode=event.mode, clients=self.clients
        )
        workload.install(self.machine, vm)
        workload.begin_measurement()
        self.workloads[event.name] = workload
        self.machine.boot_vm(vm)

    def _apply_vm_shutdown(self, event: VmShutdown) -> None:
        self.machine.shutdown_vm(self._find_vm(event.name))

    def _apply_phase_change(self, event: PhaseChange) -> None:
        workload = self.workloads[event.name]
        set_mode = getattr(workload, "set_mode", None)
        if set_mode is None:
            raise TypeError(
                f"{event.name}: {type(workload).__name__} cannot change phase"
            )
        set_mode(event.mode)

    def _apply_load_spike(self, event: LoadSpike) -> None:
        workload = self.workloads[event.name]
        if not hasattr(workload, "think_ns"):
            raise TypeError(
                f"{event.name}: {type(workload).__name__} has no arrival rate"
            )
        if event.name not in self._spike_base:
            self._spike_base[event.name] = workload.think_ns
        workload.think_ns = max(
            1, int(self._spike_base[event.name] / event.factor)
        )
        self.machine.sim.after(
            event.duration_ns,
            lambda name=event.name: self._end_spike(name),
            "churn:spike-end",
        )

    def _end_spike(self, name: str) -> None:
        # overlapping spikes on one workload: the first expiry restores
        base = self._spike_base.pop(name, None)
        if base is None:
            return
        workload = self.workloads.get(name)
        if workload is not None:
            workload.think_ns = base

    def _apply_pcpu_offline(self, event: PcpuOffline) -> None:
        self.machine.offline_pcpu(self._pcpu(event.cpu_id))

    def _apply_pcpu_online(self, event: PcpuOnline) -> None:
        self.machine.online_pcpu(self._pcpu(event.cpu_id))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _find_vm(self, name: str) -> "VM":
        for vm in self.machine.vms:
            if vm.name == name:
                return vm
        raise ValueError(f"no live VM named {name!r}")

    def _pcpu(self, cpu_id: int) -> "PCpu":
        for pcpu in self.machine.topology.pcpus:
            if pcpu.cpu_id == cpu_id:
                return pcpu
        raise ValueError(f"no pCPU with id {cpu_id}")

    def _placement_pool(self) -> "CpuPool":
        allowed = (
            set(self.allowed_pcpus) if self.allowed_pcpus is not None else None
        )
        candidates = [
            pool
            for pool in self.machine.pools
            if pool.pcpus
            and (allowed is None or any(p in allowed for p in pool.pcpus))
        ]
        if not candidates:
            candidates = [p for p in self.machine.pools if p.pcpus]
        if not candidates:
            raise RuntimeError("no pool with an online pCPU to boot into")
        return min(candidates, key=lambda p: (p.load, p.pool_id))


__all__ = ["AppliedEvent", "ChurnEngine"]
