"""repro.dynamics — the churn engine.

Everything the static scenarios lack: VM arrival and departure,
mid-run phase changes, IO load spikes and pCPU fault injection, all
declared as a :class:`~repro.dynamics.events.ChurnTimeline` and
injected into a running :class:`~repro.hypervisor.machine.Machine` by
the :class:`~repro.dynamics.engine.ChurnEngine`.  The
:mod:`~repro.dynamics.adaptation` layer measures how fast AQL_Sched
notices and re-converges after each event.
"""

from repro.dynamics.adaptation import (
    AdaptationRecord,
    AdaptationTracker,
    build_records,
)
from repro.dynamics.engine import AppliedEvent, ChurnEngine
from repro.dynamics.events import (
    ChurnEvent,
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    VmBoot,
    VmShutdown,
    random_timeline,
)
from repro.dynamics.workload import SwitchableWorkload

__all__ = [
    "AdaptationRecord",
    "AdaptationTracker",
    "AppliedEvent",
    "ChurnEngine",
    "ChurnEvent",
    "ChurnTimeline",
    "LoadSpike",
    "PcpuOffline",
    "PcpuOnline",
    "PhaseChange",
    "SwitchableWorkload",
    "VmBoot",
    "VmShutdown",
    "build_records",
    "random_timeline",
]
