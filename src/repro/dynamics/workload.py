"""A workload whose behaviour mode can be swapped at runtime.

:class:`SwitchableWorkload` is the unit the churn engine boots and
phase-changes: one vCPU, one main thread whose body re-reads
``self.mode`` every iteration, so a ``phase_change`` event takes
effect within one work chunk.

Modes:

* ``"llcf"`` / ``"llco"`` / ``"lolcf"`` — compute chunks with the
  canonical memory profile of that type;
* ``"io"`` — a closed-loop request service *plus* a CGI-style burner
  thread, i.e. the paper's heterogeneous (BOOST-defeating) IO flavour:
  the vCPU stays busy, exhausts its quantum, and light-request latency
  is at the mercy of the quantum length — exactly the case AQL's short
  IOInt quantum rescues;
* ``"spin"`` — dense lock activity against a private lock.

Leaving ``"io"`` must not leak stale work: every client chain carries
a generation tag, :meth:`set_mode` bumps the generation, and posts or
handlers that see an old tag drop the chain.  A server thread parked
in ``WaitEvent`` is unblocked with a ``None`` sentinel payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.dynamics.events import MODES
from repro.guest.phases import (
    Acquire,
    Compute,
    Phase,
    Release,
    Sleep,
    WaitEvent,
)
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread
from repro.hardware.cache import MemoryProfile
from repro.sim.units import MS
from repro.workloads.base import PerfResult, Workload
from repro.workloads.profiles import llcf_profile, llco_profile, lolcf_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.event_channel import EventPort
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VM


class SwitchableWorkload(Workload):
    """One vCPU of mode-switchable behaviour (the churn unit)."""

    def __init__(
        self,
        name: str,
        mode: str = "llcf",
        clients: int = 8,
        think_ns: int = 5 * MS,
        service_instructions: float = 100_000.0,
        chunk_instructions: float = 3_000_000.0,
        cgi_instructions: float = 1_000_000.0,
        vcpu_index: int = 0,
    ):
        super().__init__(name)
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        if clients <= 0:
            raise ValueError("need at least one client")
        self.mode = mode
        self.clients = clients
        self.think_ns = think_ns
        self.service_instructions = service_instructions
        self.chunk_instructions = chunk_instructions
        self.cgi_instructions = cgi_instructions
        self.vcpu_index = vcpu_index
        self.port: Optional["EventPort"] = None
        self.thread: Optional[GuestThread] = None
        self.burner: Optional[GuestThread] = None
        #: (time_ns, new mode) — every set_mode that took effect
        self.mode_changes: list[tuple[int, str]] = []
        #: completed work chunks / requests across all modes
        self.units_done = 0
        self.completed = 0
        self.latencies_ns: list[float] = []
        self._generation = 0
        self._lock = SpinLock(f"{name}.lock")
        self._profiles: dict[str, MemoryProfile] = {}
        self._rng = None
        self._window_start_ns: Optional[int] = None
        self._window_start_units = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def _install(self, machine: "Machine", vm: "VM") -> None:
        assert vm.guest is not None
        spec = machine.spec
        self._profiles = {
            "llcf": llcf_profile(spec),
            "llco": llco_profile(spec),
            "lolcf": lolcf_profile(spec),
        }
        vcpu = vm.vcpus[self.vcpu_index]
        self.port = machine.new_port(vcpu, f"{self.name}.port")
        self._rng = machine.rng.stream(f"dyn/{self.name}")
        self.thread = GuestThread(f"{self.name}.t", self._body)
        vm.guest.add_thread(self.thread, vcpu)
        self.burner = GuestThread(f"{self.name}.cgi", self._burner_body)
        vm.guest.add_thread(self.burner, vcpu)
        if self.mode == "io":
            self._kick_clients()

    # ------------------------------------------------------------------
    # closed-loop clients (io mode)
    # ------------------------------------------------------------------
    def _kick_clients(self) -> None:
        assert self.machine is not None and self._rng is not None
        generation = self._generation
        for _ in range(self.clients):
            delay = int(self._rng.exponential(self.think_ns)) + 1
            self.machine.sim.after(
                delay,
                lambda g=generation: self._send(g),
                f"{self.name}.req",
            )

    def _send(self, generation: int) -> None:
        assert self.machine is not None
        if generation != self._generation:
            return  # chain from a previous io phase: let it die
        if self.port is None or self.port.closed:
            return
        self.port.post((generation, self.machine.sim.now))

    def _think_then_send(self, generation: int) -> None:
        assert self.machine is not None and self._rng is not None
        delay = int(self._rng.exponential(self.think_ns)) + 1
        self.machine.sim.after(
            delay, lambda: self._send(generation), f"{self.name}.think"
        )

    # ------------------------------------------------------------------
    # guest-thread bodies
    # ------------------------------------------------------------------
    def _body(self, thread: GuestThread) -> Iterator[Phase]:
        while True:
            mode = self.mode
            if mode in self._profiles:
                yield Compute(
                    self.chunk_instructions, profile=self._profiles[mode]
                )
                self.units_done += 1
            elif mode == "spin":
                yield Compute(150_000)
                yield Acquire(self._lock)
                yield Compute(500)
                yield Release(self._lock)
                self.units_done += 1
            else:  # io
                assert self.port is not None
                wait = WaitEvent(self.port)
                yield wait
                payload = wait.payload
                if not isinstance(payload, tuple):
                    continue  # mode-change sentinel wake-up
                generation, arrival = payload
                if generation != self._generation:
                    continue  # stale request from before a mode change
                if self.service_instructions > 0:
                    yield Compute(self.service_instructions)
                self.latencies_ns.append(float(self.now - arrival))
                self.completed += 1
                self.units_done += 1
                self._think_then_send(generation)

    def _burner_body(self, thread: GuestThread) -> Iterator[Phase]:
        # the CGI component of heterogeneous IO: always ready while in
        # io mode (so the vCPU exhausts its quantum and loses BOOST),
        # dormant otherwise
        while True:
            if self.mode == "io":
                yield Compute(
                    self.cgi_instructions, profile=self._profiles["lolcf"]
                )
            else:
                yield Sleep(5 * MS)

    # ------------------------------------------------------------------
    # the churn hook
    # ------------------------------------------------------------------
    def set_mode(self, mode: str) -> None:
        """Swap behaviour; takes effect within one work chunk."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        if mode == self.mode:
            return
        was_io = self.mode == "io"
        self.mode = mode
        self.mode_changes.append((self.now, mode))
        self._generation += 1
        if mode == "io":
            if self.port is not None:
                self.port.discard_pending()  # requests from a dead phase
            self._kick_clients()
        elif was_io and self.port is not None and not self.port.closed:
            # the server thread may be parked in WaitEvent: sentinel it
            # awake so it notices the new mode
            self.port.post(None)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        self._window_start_ns = self.now
        self._window_start_units = self.units_done

    def result(self) -> PerfResult:
        if self._window_start_ns is None:
            raise RuntimeError(
                f"{self.name}: begin_measurement was never called"
            )
        window = self.now - self._window_start_ns
        units = self.units_done - self._window_start_units
        if units <= 0:
            raise RuntimeError(f"{self.name}: no work completed in window")
        return PerfResult(
            name=self.name,
            metric="ns_per_unit",
            value=window / units,
            details=(
                ("units", units),
                ("mode", self.mode),
                ("requests", self.completed),
            ),
        )


__all__ = ["SwitchableWorkload"]
