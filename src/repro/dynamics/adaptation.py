"""Online-adaptation metrics: how fast does the scheduler catch up?

For every churn event the tracker answers four questions:

* **detection latency** — how long until the manager's vCPU typing
  first differs from what it believed just before the event (vTRS has
  *seen* the change);
* **convergence** — how many decision periods until the pool-plan
  signature stops changing (the layout has *stabilised*), and whether
  a quiet decision was observed after the last change;
* **migration cost** — vCPU pool moves charged during the event's
  window;
* **degraded-window performance** — aggregate instruction throughput
  and mean IO latency between this event and the next.

The tracker snapshots at the measurement start, at every event
boundary (the engine calls :meth:`AdaptationTracker.on_event` *before*
applying the event) and once at the end, so event ``k``'s window is
``snapshot[k+1] .. snapshot[k+2]``.  Counters of shut-down VMs remain
readable: the tracker keeps direct references to thread lists and
latency lists, which outlive their VM's retirement.

For a fixed-quantum baseline (no manager) the scheduler-side metrics
are ``None`` — rendered as ``-`` — while the window performance and
migration counts remain comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.aql import AqlScheduler
    from repro.dynamics.events import ChurnEvent
    from repro.hypervisor.machine import Machine


@dataclass(frozen=True)
class Snapshot:
    """Counter totals at one instant (sorted-by-name tuples)."""

    time_ns: int
    migrations_total: int
    instructions: tuple[tuple[str, float], ...]
    latency_counts: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class AdaptationRecord:
    """Per-event adaptation metrics over the event's window."""

    event: str
    time_ms: float
    window_ms: float
    #: ms from the event to the first decision whose typing differs
    #: from the pre-event typing; None = typing never changed (or no
    #: manager)
    detection_ms: Optional[float]
    #: decision periods until the last plan change in the window;
    #: 0 = the existing plan already fit
    convergence_periods: Optional[int]
    #: True when at least one quiet (unchanged) decision followed the
    #: last plan change inside the window
    stable: Optional[bool]
    migrations: int
    #: aggregate instructions retired per millisecond of window
    throughput_ipms: float
    io_latency_ms: Optional[float]


class AdaptationTracker:
    """Snapshots machine/workload counters around churn events."""

    def __init__(
        self,
        machine: "Machine",
        workloads: dict[str, Workload],
        manager: Optional["AqlScheduler"] = None,
    ):
        self.machine = machine
        self.workloads = workloads
        self.manager = manager
        self.snapshots: list[Snapshot] = []
        self.events: list["ChurnEvent"] = []
        self._threads: dict[str, list] = {}
        self._latencies: dict[str, list[float]] = {}

    def snapshot(self) -> Snapshot:
        """Record counter totals now (with exact integration)."""
        self.machine.sync()
        instructions: list[tuple[str, float]] = []
        latency_counts: list[tuple[str, int]] = []
        for name in sorted(self.workloads):
            workload = self.workloads[name]
            threads = self._threads.get(name)
            if threads is None and workload.vm is not None:
                guest = workload.vm.guest
                if guest is not None:
                    threads = self._threads[name] = guest.threads
            total = (
                float(sum(t.instructions_retired for t in threads))
                if threads
                else 0.0
            )
            instructions.append((name, total))
            latencies = getattr(workload, "latencies_ns", None)
            if latencies is not None:
                self._latencies[name] = latencies
                latency_counts.append((name, len(latencies)))
        snap = Snapshot(
            time_ns=self.machine.sim.now,
            migrations_total=self.machine.migrations_total,
            instructions=tuple(instructions),
            latency_counts=tuple(latency_counts),
        )
        self.snapshots.append(snap)
        return snap

    def on_event(self, event: "ChurnEvent") -> None:
        """ChurnEngine hook: boundary snapshot before the event applies."""
        self.events.append(event)
        self.snapshot()

    # ------------------------------------------------------------------
    # window analysis
    # ------------------------------------------------------------------
    def window_latencies(self, lo: Snapshot, hi: Snapshot) -> list[float]:
        """All IO latencies recorded between two snapshots."""
        lo_counts = dict(lo.latency_counts)
        values: list[float] = []
        for name, hi_count in hi.latency_counts:
            start = lo_counts.get(name, 0)
            values.extend(self._latencies[name][start:hi_count])
        return values


def build_records(tracker: AdaptationTracker) -> list[AdaptationRecord]:
    """One :class:`AdaptationRecord` per fired event.

    Requires the snapshot protocol: one snapshot before arming, one per
    event (via ``on_event``) and one after the run.
    """
    snaps = tracker.snapshots
    events = tracker.events
    if len(snaps) != len(events) + 2:
        raise ValueError(
            f"snapshot protocol violated: {len(events)} events need "
            f"{len(events) + 2} snapshots, got {len(snaps)}"
        )
    log = tracker.manager.decision_log if tracker.manager is not None else None
    records: list[AdaptationRecord] = []
    for k, event in enumerate(events):
        lo, hi = snaps[k + 1], snaps[k + 2]
        window = hi.time_ns - lo.time_ns
        lo_instr = dict(lo.instructions)
        throughput = sum(
            total - lo_instr.get(name, 0.0) for name, total in hi.instructions
        )
        latencies = tracker.window_latencies(lo, hi)
        io_latency_ms = (
            sum(latencies) / len(latencies) / 1e6 if latencies else None
        )

        detection_ms: Optional[float] = None
        convergence: Optional[int] = None
        stable: Optional[bool] = None
        if log is not None:
            in_window = [
                d for d in log if lo.time_ns < d.time_ns <= hi.time_ns
            ]
            baseline: tuple = ()
            for d in log:
                if d.time_ns <= lo.time_ns and d.types:
                    baseline = d.types
            for d in in_window:
                if d.types and d.types != baseline:
                    detection_ms = (d.time_ns - lo.time_ns) / 1e6
                    break
            changed = [i for i, d in enumerate(in_window) if d.changed]
            if changed:
                convergence = changed[-1] + 1
                stable = changed[-1] < len(in_window) - 1
            else:
                convergence = 0
                stable = True

        records.append(
            AdaptationRecord(
                event=event.describe(),
                time_ms=lo.time_ns / 1e6,
                window_ms=window / 1e6,
                detection_ms=detection_ms,
                convergence_periods=convergence,
                stable=stable,
                migrations=hi.migrations_total - lo.migrations_total,
                throughput_ipms=throughput / max(window / 1e6, 1e-9),
                io_latency_ms=io_latency_ms,
            )
        )
    return records


__all__ = [
    "AdaptationRecord",
    "AdaptationTracker",
    "Snapshot",
    "build_records",
]
