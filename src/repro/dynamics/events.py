"""Declarative churn timelines.

A timeline is a tuple of frozen event records, each pinned to a
virtual-time offset.  Events are plain data — primitive fields only —
so a timeline participates in :mod:`repro.exec` cache keys via
:func:`repro.exec.hashing.canonical` and two timelines differing in a
single event time or kind hash to different keys.

:func:`random_timeline` draws a *valid* random story: it tracks which
VMs are alive, which pCPUs are dark and what mode each workload runs,
so a generated sequence never shuts down a VM twice, never offlines
the last core and never "changes" a phase to the mode already running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.sim.units import MS

#: the behaviour modes a dynamic VM can run (see SwitchableWorkload)
MODES = ("llcf", "llco", "lolcf", "io", "spin")


@dataclass(frozen=True)
class ChurnEvent:
    """Something that happens ``at_ns`` after the timeline origin."""

    at_ns: int

    kind = "event"

    def describe(self) -> str:  # pragma: no cover - overridden
        return self.kind


@dataclass(frozen=True)
class VmBoot(ChurnEvent):
    """Hot-add a VM running a SwitchableWorkload in ``mode``."""

    name: str = "dyn"
    mode: str = "llcf"
    vcpus: int = 1

    kind = "vm_boot"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.vcpus <= 0:
            raise ValueError("a VM needs at least one vCPU")

    def describe(self) -> str:
        return f"boot {self.name} ({self.mode})"


@dataclass(frozen=True)
class VmShutdown(ChurnEvent):
    """Tear down the named VM (ports closed, vCPUs withdrawn)."""

    name: str = "dyn"

    kind = "vm_shutdown"

    def describe(self) -> str:
        return f"shutdown {self.name}"


@dataclass(frozen=True)
class PhaseChange(ChurnEvent):
    """Swap the named VM's workload to a different behaviour mode."""

    name: str = "dyn"
    mode: str = "io"

    kind = "phase_change"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}")

    def describe(self) -> str:
        return f"phase {self.name} -> {self.mode}"


@dataclass(frozen=True)
class LoadSpike(ChurnEvent):
    """Multiply an IO workload's arrival rate for a window.

    Implemented by dividing the closed-loop client think time by
    ``factor``; the base rate is restored after ``duration_ns``.
    """

    name: str = "dyn"
    factor: float = 4.0
    duration_ns: int = 300 * MS

    kind = "load_spike"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("spike factor must be positive")
        if self.duration_ns <= 0:
            raise ValueError("spike duration must be positive")

    def describe(self) -> str:
        return f"spike {self.name} x{self.factor:g}"


@dataclass(frozen=True)
class PcpuOffline(ChurnEvent):
    """Fault injection: the pCPU with this id disappears."""

    cpu_id: int = 0

    kind = "pcpu_offline"

    def describe(self) -> str:
        return f"offline pcpu{self.cpu_id}"


@dataclass(frozen=True)
class PcpuOnline(ChurnEvent):
    """Recovery: the previously-failed pCPU returns."""

    cpu_id: int = 0

    kind = "pcpu_online"

    def describe(self) -> str:
        return f"online pcpu{self.cpu_id}"


@dataclass(frozen=True)
class ChurnTimeline:
    """An ordered story of churn events (offsets from the arm time).

    **Fire order is pinned**: events fire in a *stable sort* of the
    tuple by ``at_ns`` — earlier offsets first, and events sharing an
    identical timestamp fire in tuple order.  This follows from two
    guarantees that are part of the public contract (and regression-
    tested in ``tests/test_churn_event_order.py``): the engine's
    :meth:`~repro.dynamics.engine.ChurnEngine.arm` schedules events in
    tuple order, and the simulator breaks same-instant ties by
    scheduling sequence.  Scenario generators may therefore emit
    dependent same-timestamp pairs (boot ``x`` then phase-change
    ``x`` at the same instant) and rely on the tuple order.
    """

    events: tuple[ChurnEvent, ...]

    def __post_init__(self) -> None:
        for event in self.events:
            if event.at_ns < 0:
                raise ValueError(f"{event!r}: negative event time")

    @property
    def duration_ns(self) -> int:
        return max((e.at_ns for e in self.events), default=0)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def random_timeline(
    seed: int,
    n_events: int = 6,
    base_vms: Sequence[tuple[str, str]] = (),
    pcpus: int = 4,
    start_ns: int = 300 * MS,
    spacing_ns: int = 300 * MS,
    modes: Sequence[str] = ("llcf", "llco", "io"),
    max_offline: int = 1,
    min_alive: int = 2,
) -> ChurnTimeline:
    """Draw a valid random churn story.

    ``base_vms`` is the ``(name, mode)`` population that exists before
    the timeline starts; the generator tracks aliveness, modes and dark
    cores so every drawn event is applicable when it fires.
    """
    if pcpus < 2:
        raise ValueError("need at least two pCPUs to inject faults safely")
    rng = np.random.default_rng(seed)
    alive: dict[str, str] = dict(base_vms)
    offline: list[int] = []
    booted = 0
    events: list[ChurnEvent] = []
    t = start_ns
    for _ in range(n_events):
        choices = ["vm_boot"]
        if len(alive) > min_alive:
            choices.append("vm_shutdown")
        if alive and len(set(modes)) > 1:
            choices.append("phase_change")
        if any(mode == "io" for mode in alive.values()):
            choices.append("load_spike")
        if len(offline) < max_offline and pcpus - len(offline) > 2:
            choices.append("pcpu_offline")
        if offline:
            choices.append("pcpu_online")
        kind = choices[int(rng.integers(len(choices)))]
        if kind == "vm_boot":
            name = f"rnd{booted}"
            booted += 1
            mode = modes[int(rng.integers(len(modes)))]
            events.append(VmBoot(t, name=name, mode=mode))
            alive[name] = mode
        elif kind == "vm_shutdown":
            names = sorted(alive)
            name = names[int(rng.integers(len(names)))]
            events.append(VmShutdown(t, name=name))
            del alive[name]
        elif kind == "phase_change":
            names = sorted(alive)
            name = names[int(rng.integers(len(names)))]
            others = [m for m in modes if m != alive[name]]
            mode = others[int(rng.integers(len(others)))]
            events.append(PhaseChange(t, name=name, mode=mode))
            alive[name] = mode
        elif kind == "load_spike":
            names = sorted(n for n, m in alive.items() if m == "io")
            name = names[int(rng.integers(len(names)))]
            events.append(
                LoadSpike(t, name=name, factor=4.0, duration_ns=spacing_ns // 2)
            )
        elif kind == "pcpu_offline":
            online = sorted(set(range(pcpus)) - set(offline))
            cpu_id = online[int(rng.integers(len(online)))]
            events.append(PcpuOffline(t, cpu_id=cpu_id))
            offline.append(cpu_id)
        else:  # pcpu_online
            cpu_id = sorted(offline)[int(rng.integers(len(offline)))]
            events.append(PcpuOnline(t, cpu_id=cpu_id))
            offline.remove(cpu_id)
        t += int(rng.integers(spacing_ns // 2, spacing_ns + 1))
    return ChurnTimeline(tuple(events))


__all__ = [
    "MODES",
    "ChurnEvent",
    "ChurnTimeline",
    "LoadSpike",
    "PcpuOffline",
    "PcpuOnline",
    "PhaseChange",
    "VmBoot",
    "VmShutdown",
    "random_timeline",
]
