"""The online vCPU Type Recognition System (§3.3).

Every *monitoring period* (30 ms) the vTRS:

1. synchronises the machine (integrating running segments so counters
   are exact),
2. reads each vCPU's counter deltas — IO events, spin evidence (PLE
   exits plus the VM's paravirtual spin notifications split across its
   vCPUs), PMU instructions/LLC refs/LLC misses,
3. computes the five cursors (equations 1-5) and pushes them into the
   vCPU's ``n``-entry sliding window.

A vCPU's *type* is the cursor with the highest window average
(:meth:`VTRS.type_of`); ties break by the fixed precedence in
:mod:`repro.core.types`.  The paper sets ``n = 4``: small enough to
track type changes, large enough to avoid migration thrash.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.cursors import CursorLimits, MetricSample, compute_cursors
from repro.core.types import TYPE_PRECEDENCE, VCpuType
from repro.sim.units import MS
from repro.telemetry import TypeFlip

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VCpu


@dataclass
class _VCpuMonitor:
    """Per-vCPU monitoring state: snapshots and the cursor window."""

    pmu_snap: object = None
    ple_snap: float = 0.0
    io_snap: float = 0.0
    vm_spin_snap: float = 0.0
    window: deque = field(default_factory=deque)
    history: list = field(default_factory=list)  # (time, cursors) if recording
    #: the last audited type verdict (telemetry only; None before the
    #: first flip record)
    last_type: Optional[VCpuType] = None


class VTRS:
    """Online type recognition over all vCPUs of a machine."""

    def __init__(
        self,
        machine: "Machine",
        limits: Optional[CursorLimits] = None,
        window: int = 4,
        period_ns: int = 30 * MS,
        record_history: bool = False,
        min_activity_instructions: float = 100_000.0,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.machine = machine
        self.limits = limits or CursorLimits()
        self.window = window
        self.period_ns = period_ns
        self.record_history = record_history
        #: a period with fewer retired instructions and no IO/spin
        #: events carries no evidence (the vCPU was descheduled the
        #: whole period — common at 4 vCPUs/pCPU with a 30 ms quantum);
        #: such periods are skipped rather than mistaken for LoLCF.
        self.min_activity_instructions = min_activity_instructions
        self._monitors: dict[int, _VCpuMonitor] = {}
        self.periods_observed = 0
        self._attached = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "VTRS":
        """Start monitoring: one sampling pass every period."""
        if self._attached:
            return self
        self._attached = True
        self.machine.every(self.period_ns, self.sample_all, "vtrs")
        return self

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_all(self) -> None:
        """One monitoring period: read deltas, push cursors."""
        self.machine.sync()
        self.periods_observed += 1
        now = self.machine.sim.now
        telemetry = self.machine.telemetry
        if telemetry.enabled:
            # the period being closed spans the gap back to the previous
            # sample; recorded retroactively on the control-plane track
            telemetry.tracer.complete(
                max(0, now - self.period_ns),
                now,
                "vtrs_period",
                track="aql",
                category="vtrs",
                period=self.periods_observed,
            )
        for vcpu in self.machine.all_vcpus:
            monitor = self._monitors.get(vcpu.vcpu_id)
            if monitor is None:
                monitor = _VCpuMonitor()
                monitor.window = deque(maxlen=self.window)
                self._monitors[vcpu.vcpu_id] = monitor
                self._snapshot(vcpu, monitor)
                continue
            sample = self._delta(vcpu, monitor)
            self._snapshot(vcpu, monitor)
            cpu_evidence = sample.instructions >= self.min_activity_instructions
            if (
                not cpu_evidence
                and sample.io_events <= 0
                and sample.spin_events <= 0
            ):
                continue  # no evidence this period
            cursors = compute_cursors(sample, self.limits)
            monitor.window.append((cursors, cpu_evidence))
            if self.record_history:
                monitor.history.append((now, cursors))
            if telemetry.enabled:
                self._audit_verdict(vcpu, monitor, now, telemetry)

    def _audit_verdict(self, vcpu, monitor, now, telemetry) -> None:
        """Record a TypeFlip when this period changed the verdict.

        The snapshot carries the *full* sliding window the argmax ran
        over, so the flip is independently re-derivable from the record
        alone (the audit tests recompute it).
        """
        new_type = self.type_of(vcpu)
        if new_type is None or new_type == monitor.last_type:
            return
        averages = self.cursor_averages(vcpu)
        telemetry.audit.record_flip(
            TypeFlip(
                time_ns=now,
                vcpu_id=vcpu.vcpu_id,
                vcpu_name=vcpu.name,
                old_type=(
                    monitor.last_type.name
                    if monitor.last_type is not None
                    else None
                ),
                new_type=new_type.name,
                window=tuple(
                    (
                        tuple(
                            sorted(
                                (t.name, float(value))
                                for t, value in cursors.items()
                            )
                        ),
                        cpu_ok,
                    )
                    for cursors, cpu_ok in monitor.window
                ),
                averages=tuple(
                    sorted((t.name, v) for t, v in averages.items())
                ),
            )
        )
        telemetry.registry.counter("type_flips", vcpu=vcpu.name).inc()
        monitor.last_type = new_type

    def _snapshot(self, vcpu: "VCpu", monitor: _VCpuMonitor) -> None:
        monitor.pmu_snap = vcpu.pmu.snapshot()
        monitor.ple_snap = vcpu.ple.snapshot()
        monitor.io_snap = vcpu.io_events
        monitor.vm_spin_snap = vcpu.vm.spin_notifications

    def _delta(self, vcpu: "VCpu", monitor: _VCpuMonitor) -> MetricSample:
        pmu = vcpu.pmu.delta_since(monitor.pmu_snap)
        ple = vcpu.ple.delta_since(monitor.ple_snap)
        io = vcpu.io_events - monitor.io_snap
        vm_spin = vcpu.vm.spin_notifications - monitor.vm_spin_snap
        # ConSpin_level is "the number of spin-locks performed by its
        # VM" (§3.3): the whole-VM paravirtual count applies to each of
        # the VM's vCPUs, plus this vCPU's own PLE exits.
        spin = ple + vm_spin
        return MetricSample(
            io_events=io,
            spin_events=spin,
            instructions=pmu.instructions,
            llc_refs=pmu.llc_refs,
            llc_misses=pmu.llc_misses,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cursor_averages(self, vcpu: "VCpu") -> dict[VCpuType, float]:
        """Window-average of each cursor (zeros before any sample).

        IO/ConSpin cursors average over every sampled period; the
        CPU-burn trio averages only over periods with compute evidence
        (a period spent entirely spinning or handling events says
        nothing about cache behaviour).
        """
        monitor = self._monitors.get(vcpu.vcpu_id)
        if monitor is None or not monitor.window:
            return {t: 0.0 for t in VCpuType}
        count = len(monitor.window)
        cpu_entries = [c for c, cpu_ok in monitor.window if cpu_ok]
        averages: dict[VCpuType, float] = {}
        for vtype in VCpuType:
            if vtype in (VCpuType.IOINT, VCpuType.CONSPIN):
                averages[vtype] = (
                    sum(c[vtype] for c, _ in monitor.window) / count
                )
            elif cpu_entries:
                averages[vtype] = (
                    sum(c[vtype] for c in cpu_entries) / len(cpu_entries)
                )
            else:
                averages[vtype] = 0.0
        return averages

    def type_of(self, vcpu: "VCpu") -> Optional[VCpuType]:
        """Current type, or None before the first full sample."""
        monitor = self._monitors.get(vcpu.vcpu_id)
        if monitor is None or not monitor.window:
            return None
        averages = self.cursor_averages(vcpu)
        return max(TYPE_PRECEDENCE, key=lambda t: (averages[t], -TYPE_PRECEDENCE.index(t)))

    def history_of(self, vcpu: "VCpu") -> list:
        """Recorded (time, cursors) pairs (requires record_history)."""
        monitor = self._monitors.get(vcpu.vcpu_id)
        return list(monitor.history) if monitor else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VTRS n={self.window} periods={self.periods_observed}>"


__all__ = ["VTRS"]
