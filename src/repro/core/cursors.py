"""Equations 1-5: converting monitored levels to percentage cursors.

Inputs per monitoring period and per vCPU (§3.3):

* ``IOInt_level`` — IO events processed (event-channel count);
* ``ConSpin_level`` — spin evidence (PLE exits + paravirtual spin-lock
  notifications, the VM count split over its vCPUs);
* ``LLC_RR_level`` — LLC references per instruction;
* ``LLC_MR_level`` — LLC miss ratio (misses / references).

Outputs: five cursors in [0, 100].  The CPU-burn trio always sums to
exactly 100 (equation 2); IOInt/ConSpin saturate at their limits
(equation 1).

The limits are platform- and deployment-dependent (the paper calibrates
them per platform); :class:`CursorLimits` defaults match this
simulator's canonical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import VCpuType


@dataclass(frozen=True)
class CursorLimits:
    """Saturation thresholds for the cursor equations."""

    #: IO events per monitoring period above which a vCPU is 100% IOInt.
    io_limit: float = 3.0
    #: spin events (PLE exits + paravirt notifications) per period above
    #: which a vCPU is 100% ConSpin.
    conspin_limit: float = 50.0
    #: LLC references per instruction above which a vCPU is *not* LoLCF
    #: (equation 3's LLC_RR_LIMIT).
    llc_rr_limit: float = 0.004
    #: LLC miss ratio above which a vCPU is trashing (equation 4's
    #: LLC_MR_LIMIT).
    llc_mr_limit: float = 0.75

    def __post_init__(self) -> None:
        for field_name in ("io_limit", "conspin_limit", "llc_rr_limit", "llc_mr_limit"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


@dataclass(frozen=True)
class MetricSample:
    """Raw per-period monitoring deltas for one vCPU."""

    io_events: float = 0.0
    spin_events: float = 0.0
    instructions: float = 0.0
    llc_refs: float = 0.0
    llc_misses: float = 0.0

    @property
    def llc_rr_level(self) -> float:
        """LLC references per instruction."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_refs / self.instructions

    @property
    def llc_mr_level(self) -> float:
        """LLC miss ratio; zero references means no miss evidence."""
        if self.llc_refs <= 0:
            return 0.0
        return self.llc_misses / self.llc_refs


def _saturating_cursor(level: float, limit: float) -> float:
    """Equation 1: linear up to the limit, then saturated at 100."""
    if level >= limit:
        return 100.0
    if level <= 0:
        return 0.0
    return level * 100.0 / limit


def compute_cursors(
    sample: MetricSample, limits: CursorLimits
) -> dict[VCpuType, float]:
    """Equations 1-5: one period's cursors for one vCPU."""
    io_cur = _saturating_cursor(sample.io_events, limits.io_limit)
    conspin_cur = _saturating_cursor(sample.spin_events, limits.conspin_limit)

    # Equation 3: LoLCF — the fewer LLC references, the more LoLCF.
    rr = sample.llc_rr_level
    if rr < limits.llc_rr_limit:
        lolcf_cur = (limits.llc_rr_limit - rr) * 100.0 / limits.llc_rr_limit
    else:
        lolcf_cur = 0.0

    # Equation 4: LLCF — low miss ratio, bounded by what LoLCF left.
    mr = sample.llc_mr_level
    if mr < limits.llc_mr_limit:
        llcf_cur = min(
            100.0 - lolcf_cur,
            (limits.llc_mr_limit - mr) * 100.0 / limits.llc_mr_limit,
        )
    else:
        llcf_cur = 0.0

    # Equation 5: LLCO — the residual (equation 2 holds by construction).
    llco_cur = 100.0 - lolcf_cur - llcf_cur

    return {
        VCpuType.IOINT: io_cur,
        VCpuType.CONSPIN: conspin_cur,
        VCpuType.LOLCF: lolcf_cur,
        VCpuType.LLCF: llcf_cur,
        VCpuType.LLCO: llco_cur,
    }


__all__ = ["CursorLimits", "MetricSample", "compute_cursors"]
