"""AQL_Sched: the paper's contribution.

* :mod:`repro.core.types` — the five vCPU types;
* :mod:`repro.core.cursors` — equations 1-5: metric levels to
  percentage cursors;
* :mod:`repro.core.vtrs` — the online vCPU Type Recognition System
  (30 ms monitoring periods, n-period sliding window, argmax typing);
* :mod:`repro.core.calibration` — the offline best-quantum-per-type
  sweep (paper §3.4);
* :mod:`repro.core.clustering` — the two-level clustering (Algorithms
  1 & 2): socket distribution separating trashing from non-trashing
  vCPUs, then per-socket quantum-length-compatible clusters with fair
  pCPU pools;
* :mod:`repro.core.aql` — the online manager tying it together:
  re-type every n periods, re-cluster, apply the pool plan.
"""

from repro.core.aql import AqlScheduler
from repro.core.calibration import (
    PAPER_BEST_QUANTA,
    CalibrationResult,
    run_calibration,
)
from repro.core.clustering import build_pool_plan
from repro.core.cursors import CursorLimits, MetricSample, compute_cursors
from repro.core.types import VCpuType
from repro.core.vtrs import VTRS

__all__ = [
    "VCpuType",
    "CursorLimits",
    "MetricSample",
    "compute_cursors",
    "VTRS",
    "CalibrationResult",
    "run_calibration",
    "PAPER_BEST_QUANTA",
    "build_pool_plan",
    "AqlScheduler",
]
