"""AQL_Sched: the online adaptive-quantum-length manager.

Wires the pieces together exactly as §3.1 describes: the vTRS samples
every monitoring period (30 ms); every ``n = 4`` periods the manager
re-types all vCPUs, reruns the two-level clustering, and — only when
the resulting layout differs from the installed one — applies the new
pool plan (quantum reconfiguration + vCPU migrations).

Following the paper's implementation trick (§4.3: shared scheduler
data structure across pools), applying a plan costs nothing in virtual
time; vCPU migrations are pointer moves plus the natural cache-refill
penalty the LLC model already charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.core.calibration import PAPER_BEST_QUANTA
from repro.core.clustering import TypedVCpu, build_pool_plan
from repro.core.cursors import CursorLimits
from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.hypervisor.pools import PoolPlan
from repro.sim.units import MS
from repro.telemetry import ClusterDecision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.topology import Socket
    from repro.hypervisor.machine import Machine
    from repro.hypervisor.vm import VCpu


def _plan_signature(plan: PoolPlan) -> tuple:
    """A canonical form for change detection."""
    entries = []
    for name, pcpus, quantum_ns, vcpus in plan.entries:
        entries.append(
            (
                tuple(sorted(p.cpu_id for p in pcpus)),
                quantum_ns,
                tuple(sorted(v.vcpu_id for v in vcpus)),
            )
        )
    return tuple(sorted(entries))


@dataclass(frozen=True)
class DecisionRecord:
    """One :meth:`AqlScheduler.decide` outcome, kept for adaptation metrics.

    ``types`` is the sorted ``(vcpu_id, type-name)`` snapshot the
    decision acted on — empty while the initial delay is still sitting
    out.  The dynamics layer reads these to measure detection latency
    (first decision whose typing reflects a churn event) and
    convergence (last decision in a window that changed the plan).
    """

    time_ns: int
    decision_index: int
    changed: bool
    migrations_total: int
    types: tuple[tuple[int, str], ...]


class AqlScheduler:
    """The adaptable-quantum-length scheduler manager."""

    def __init__(
        self,
        machine: "Machine",
        best_quanta: Optional[Mapping[VCpuType, Optional[int]]] = None,
        limits: Optional[CursorLimits] = None,
        window: int = 4,
        period_ns: int = 30 * MS,
        default_quantum_ns: int = 30 * MS,
        sockets: Optional[Sequence["Socket"]] = None,
        pcpus: Optional[Sequence] = None,
        record_history: bool = False,
        type_oracle: Optional[Mapping[int, VCpuType]] = None,
        uniform_quantum_ns: Optional[int] = None,
        initial_delay_windows: int = 2,
    ):
        self.machine = machine
        self.best_quanta = dict(best_quanta or PAPER_BEST_QUANTA)
        self.default_quantum_ns = default_quantum_ns
        self.sockets = list(sockets) if sockets is not None else None
        #: restrict clustering to these cores (a confined CPU pool);
        #: None manages the whole machine
        self.pcpus = list(pcpus) if pcpus is not None else None
        self.vtrs = VTRS(
            machine,
            limits=limits,
            window=window,
            period_ns=period_ns,
            record_history=record_history,
        )
        #: vcpu_id -> forced type; bypasses vTRS (used by the overhead
        #: ablation to compare online recognition against ground truth).
        self.type_oracle = dict(type_oracle) if type_oracle else None
        #: Fig. 7 ablation ("quantum length customisation discarded"):
        #: clustering still runs, but every pool is forced to this
        #: quantum instead of the calibrated one.
        self.uniform_quantum_ns = uniform_quantum_ns
        #: number of decision windows to sit out before the first
        #: re-clustering: cold caches make freshly-booted LLC-friendly
        #: vCPUs measure as trashing, and acting on that transient
        #: places them with real trashers where they can never re-warm.
        self.initial_delay_windows = initial_delay_windows
        self.decisions = 0
        self.reconfigurations = 0
        self.last_types: dict[int, VCpuType] = {}
        #: every decision ever taken, in order (adaptation metrics
        #: slice this around churn events)
        self.decision_log: list[DecisionRecord] = []
        self._last_signature: Optional[tuple] = None
        self._attached = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "AqlScheduler":
        """Start monitoring and periodic re-clustering."""
        if self._attached:
            return self
        self._attached = True
        self.vtrs.attach()
        decide_period = self.vtrs.window * self.vtrs.period_ns
        self.machine.every(decide_period, self.decide, "aql-decide")
        return self

    # ------------------------------------------------------------------
    # the decision step
    # ------------------------------------------------------------------
    def current_types(self) -> dict["VCpu", VCpuType]:
        """Type of every vCPU (oracle, else vTRS; LoLCF before data)."""
        types: dict["VCpu", VCpuType] = {}
        for vcpu in self.machine.all_vcpus:
            if self.type_oracle is not None:
                vtype: Optional[VCpuType] = self.type_oracle.get(vcpu.vcpu_id)
            else:
                vtype = self.vtrs.type_of(vcpu)
            if vtype is None:
                # no evidence yet: treat as quantum-agnostic filler
                vtype = VCpuType.LOLCF
            types[vcpu] = vtype
        return types

    def decide(self) -> None:
        """Re-type, re-cluster, apply the plan if the layout changed."""
        self.decisions += 1
        telemetry = self.machine.telemetry
        if self.decisions <= self.initial_delay_windows:
            self.decision_log.append(
                DecisionRecord(
                    time_ns=self.machine.sim.now,
                    decision_index=self.decisions,
                    changed=False,
                    migrations_total=self.machine.migrations_total,
                    types=(),
                )
            )
            if telemetry.enabled:
                telemetry.audit.record_decision(
                    ClusterDecision(
                        time_ns=self.machine.sim.now,
                        decision_index=self.decisions,
                        input_types=(),
                        changed=False,
                        pools=(),
                        spills=(),
                        skipped=True,
                    )
                )
            return  # cold-start transient: counters not yet meaningful
        span = None
        if telemetry.enabled:
            span = telemetry.tracer.begin(
                self.machine.sim.now,
                "aql_decide",
                track="aql",
                category="aql",
                decision=self.decisions,
            )
        types = self.current_types()
        typed = [
            TypedVCpu(
                vcpu,
                vtype,
                llco_cur_avg=self.vtrs.cursor_averages(vcpu)[VCpuType.LLCO],
            )
            for vcpu, vtype in types.items()
        ]
        self.last_types = {vcpu.vcpu_id: t for vcpu, t in types.items()}
        plan = build_pool_plan(
            self.machine.topology,
            typed,
            self.best_quanta,
            self.default_quantum_ns,
            sockets=self.sockets,
            pcpus=self.pcpus,
            offline=self.machine.offline_pcpus,
        )
        if self.uniform_quantum_ns is not None:
            plan.entries = [
                (name, pcpus, self.uniform_quantum_ns, vcpus)
                for name, pcpus, _, vcpus in plan.entries
            ]
        signature = _plan_signature(plan)
        changed = signature != self._last_signature
        if changed:
            self.machine.apply_pool_plan(plan)
            self._last_signature = signature
            self.reconfigurations += 1
        self.decision_log.append(
            DecisionRecord(
                time_ns=self.machine.sim.now,
                decision_index=self.decisions,
                changed=changed,
                migrations_total=self.machine.migrations_total,
                types=tuple(
                    sorted(
                        (vid, t.name) for vid, t in self.last_types.items()
                    )
                ),
            )
        )
        if telemetry.enabled:
            telemetry.audit.record_decision(
                ClusterDecision(
                    time_ns=self.machine.sim.now,
                    decision_index=self.decisions,
                    input_types=tuple(
                        sorted(
                            (vid, t.name)
                            for vid, t in self.last_types.items()
                        )
                    ),
                    changed=changed,
                    pools=plan.describe(),
                    spills=tuple(sorted(plan.spills)),
                )
            )
            telemetry.registry.counter("aql_decisions").inc()
            if changed:
                telemetry.registry.counter("aql_reconfigurations").inc()
            if span is not None:
                telemetry.tracer.end(
                    self.machine.sim.now, span, changed=changed
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AqlScheduler decisions={self.decisions} "
            f"reconfigs={self.reconfigurations}>"
        )


__all__ = ["AqlScheduler", "DecisionRecord"]
