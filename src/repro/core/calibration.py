"""Offline quantum-length calibration (§3.4, Fig. 2).

For each application type, a *baseline* VM running that type is
colocated with disturber VMs on a small pCPU pool; the run is repeated
for every candidate quantum length and consolidation ratio (vCPUs per
pCPU).  Values are normalised over the run at Xen's default 30 ms —
below 1.0 means the quantum beats the default.

A type whose best and worst quanta differ by less than
``agnostic_threshold`` is *quantum-length agnostic* (the paper finds
exclusive-IO, LoLCF and LLCO agnostic); its best quantum is ``None``
and clustering uses such vCPUs as filler.

:data:`PAPER_BEST_QUANTA` records the paper's published outcome
(IOInt -> 1 ms, ConSpin -> 1 ms, LLCF -> 90 ms, LoLCF/LLCO agnostic) so
AQL_Sched can run without re-calibrating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.types import VCpuType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.base import Workload
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile, lolcf_profile
from repro.workloads.spin import SpinWorkload

#: The paper's candidate quantum lengths (§3.4.1).
CALIBRATION_QUANTA_MS: tuple[int, ...] = (1, 10, 30, 60, 90)

#: Xen's default quantum, the normalisation reference.
DEFAULT_QUANTUM_MS = 30

#: The six calibrated workload kinds of Fig. 2 (a)-(f).
CALIBRATION_KINDS: tuple[str, ...] = (
    "io_exclusive",
    "io_hetero",
    "conspin",
    "llcf",
    "lolcf",
    "llco",
)

#: Which Fig. 2 panel drives which type's best quantum.
KIND_FOR_TYPE: dict[VCpuType, str] = {
    VCpuType.IOINT: "io_hetero",  # the exclusive panel is agnostic
    VCpuType.CONSPIN: "conspin",
    VCpuType.LLCF: "llcf",
    VCpuType.LOLCF: "lolcf",
    VCpuType.LLCO: "llco",
}

#: The paper's published calibration outcome; None = agnostic.
PAPER_BEST_QUANTA: dict[VCpuType, Optional[int]] = {
    VCpuType.IOINT: 1 * MS,
    VCpuType.CONSPIN: 1 * MS,
    VCpuType.LLCF: 90 * MS,
    VCpuType.LOLCF: None,
    VCpuType.LLCO: None,
}


@dataclass
class CalibrationResult:
    """The full Fig. 2 table plus the derived best quanta."""

    #: (kind, quantum_ms, vcpus_per_pcpu) -> raw metric value
    raw: dict[tuple[str, int, int], float] = field(default_factory=dict)
    #: (kind, quantum_ms, vcpus_per_pcpu) -> value / value@30ms
    normalized: dict[tuple[str, int, int], float] = field(default_factory=dict)
    #: quantum_ms -> mean lock duration (Fig. 2 rightmost inset)
    lock_duration_ns: dict[int, float] = field(default_factory=dict)
    #: VCpuType -> best quantum in ns, or None when agnostic
    best_quanta: dict[VCpuType, Optional[int]] = field(default_factory=dict)

    def normalized_series(self, kind: str, vcpus_per_pcpu: int) -> dict[int, float]:
        """quantum_ms -> normalized perf for one Fig. 2 panel column."""
        return {
            q: self.normalized[(kind, q, vcpus_per_pcpu)]
            for (k, q, v) in self.normalized
            if k == kind and v == vcpus_per_pcpu
        }


def _build_calibration_machine(
    kind: str,
    quantum_ms: int,
    vcpus_per_pcpu: int,
    spec: MachineSpec,
    seed: int,
) -> tuple[Machine, Workload, Optional[SpinWorkload]]:
    """One calibration cell: baseline workload + disturbers on a pool.

    CPU/IO kinds use a single pCPU (the paper's unit experiment); the
    ConSpin kind uses a 4-thread indicator VM over two pCPUs so that
    lock holders and waiters can overlap, as in kernbench runs.
    """
    machine = Machine(
        spec, seed=seed, default_quantum_ns=quantum_ms * MS
    )
    if kind == "conspin":
        pool_pcpus = machine.topology.pcpus[:2]
    else:
        pool_pcpus = machine.topology.pcpus[:1]
    pool = machine.create_pool("calib", pool_pcpus, quantum_ms * MS)

    def place(vm) -> None:
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)

    spin: Optional[SpinWorkload] = None
    if kind == "io_exclusive":
        vm = machine.new_vm("baseline", 1)
        place(vm)
        baseline: Workload = IoWorkload.exclusive("io-excl").install(machine, vm)
        disturbers = vcpus_per_pcpu - 1
    elif kind == "io_hetero":
        vm = machine.new_vm("baseline", 1)
        place(vm)
        baseline = IoWorkload.heterogeneous("io-hetero", spec).install(machine, vm)
        disturbers = vcpus_per_pcpu - 1
    elif kind == "conspin":
        vm = machine.new_vm("baseline", 4)
        place(vm)
        spin = SpinWorkload("conspin", threads=4)
        baseline = spin.install(machine, vm)
        disturbers = vcpus_per_pcpu * len(pool_pcpus) - 4
    elif kind == "llcf":
        vm = machine.new_vm("baseline", 1)
        place(vm)
        baseline = CpuBurnWorkload("llcf", llcf_profile(spec)).install(machine, vm)
        disturbers = vcpus_per_pcpu - 1
    elif kind == "lolcf":
        vm = machine.new_vm("baseline", 1)
        place(vm)
        baseline = CpuBurnWorkload("lolcf", lolcf_profile(spec)).install(machine, vm)
        disturbers = vcpus_per_pcpu - 1
    elif kind == "llco":
        vm = machine.new_vm("baseline", 1)
        place(vm)
        baseline = CpuBurnWorkload("llco", llco_profile(spec)).install(machine, vm)
        disturbers = vcpus_per_pcpu - 1
    else:
        raise ValueError(f"unknown calibration kind {kind!r}")

    # Disturber VMs: trashing CPU hogs, the paper's worst-case
    # colocation (they pollute the LLC and always want the CPU).
    for i in range(max(0, disturbers)):
        dvm = machine.new_vm(f"disturber{i}", 1)
        place(dvm)
        CpuBurnWorkload(f"disturber{i}", llco_profile(spec)).install(machine, dvm)
    return machine, baseline, spin


def _measure_lock_duration(
    spec: MachineSpec,
    quantum_ms: int,
    warmup_ns: int,
    measure_ns: int,
    seed: int,
) -> float:
    """Fig. 2 rightmost inset: mean lock duration versus quantum.

    Uses the dense-locking configuration (no barrier, short work
    chunks) over two pCPUs with the indicator VM's four vCPUs doubly
    consolidated, where lock-holder preemption dominates: the longer
    the quantum, the longer a preempted holder keeps everyone spinning.
    """
    machine = Machine(spec, seed=seed, default_quantum_ns=quantum_ms * MS)
    pool = machine.create_pool(
        "inset", machine.topology.pcpus[:2], quantum_ms * MS
    )
    vm = machine.new_vm("indicator", 4)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    dense = SpinWorkload(
        "dense-lock",
        threads=4,
        work_instructions=150_000.0,
        cs_instructions=30_000.0,
        use_barrier=False,
    )
    dense.install(machine, vm)
    machine.run(warmup_ns)
    start = dense.lock.stats
    base_acq = start.acquisitions
    base_wait = start.total_wait_ns
    base_hold = start.total_hold_ns
    machine.run(measure_ns)
    machine.sync()
    acquisitions = dense.lock.stats.acquisitions - base_acq
    if acquisitions <= 0:
        return 0.0
    total = (
        dense.lock.stats.total_wait_ns
        - base_wait
        + dense.lock.stats.total_hold_ns
        - base_hold
    )
    return total / acquisitions


def measure_calibration_cell(
    kind: str,
    quantum_ms: int,
    vcpus_per_pcpu: int,
    spec: MachineSpec,
    warmup_ns: int,
    measure_ns: int,
    seed: int,
) -> float:
    """One independent Fig. 2 cell — the sweep's unit of work.

    Module-level and pure-by-parameters so :class:`repro.exec.SweepRunner`
    can ship it to a worker process and cache its result.
    """
    machine, baseline, _ = _build_calibration_machine(
        kind, quantum_ms, vcpus_per_pcpu, spec, seed
    )
    machine.run(warmup_ns)
    baseline.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    return baseline.result().value


def run_calibration(
    spec: Optional[MachineSpec] = None,
    quanta_ms: tuple[int, ...] = CALIBRATION_QUANTA_MS,
    consolidations: tuple[int, ...] = (2, 4),
    kinds: tuple[str, ...] = CALIBRATION_KINDS,
    warmup_ns: int = 1 * SEC,
    measure_ns: int = 3 * SEC,
    seed: int = 0,
    agnostic_threshold: float = 0.25,
    runner: Optional["SweepRunner"] = None,
) -> CalibrationResult:
    """Run the full §3.4 calibration sweep on the simulator."""
    from repro.exec import Cell, SweepRunner

    spec = spec or i7_3770()
    if DEFAULT_QUANTUM_MS not in quanta_ms:
        raise ValueError("the sweep must include the 30 ms reference")
    runner = runner or SweepRunner()
    result = CalibrationResult()

    grid = [
        (kind, k, quantum_ms)
        for kind in kinds
        for k in consolidations
        for quantum_ms in quanta_ms
    ]
    cells = [
        Cell(
            measure_calibration_cell,
            dict(
                kind=kind, quantum_ms=quantum_ms, vcpus_per_pcpu=k,
                spec=spec, warmup_ns=warmup_ns, measure_ns=measure_ns,
                seed=seed,
            ),
            label=f"fig2:{kind}:{quantum_ms}ms:x{k}",
        )
        for kind, k, quantum_ms in grid
    ]
    lock_quanta = list(quanta_ms) if "conspin" in kinds else []
    cells.extend(
        Cell(
            _measure_lock_duration,
            dict(
                spec=spec, quantum_ms=quantum_ms, warmup_ns=warmup_ns,
                measure_ns=measure_ns, seed=seed,
            ),
            label=f"fig2:lock-inset:{quantum_ms}ms",
        )
        for quantum_ms in lock_quanta
    )
    values = runner.run(cells)

    for (kind, k, quantum_ms), value in zip(grid, values):
        result.raw[(kind, quantum_ms, k)] = value
    for kind in kinds:
        for k in consolidations:
            reference = result.raw[(kind, DEFAULT_QUANTUM_MS, k)]
            for quantum_ms in quanta_ms:
                result.normalized[(kind, quantum_ms, k)] = (
                    result.raw[(kind, quantum_ms, k)] / reference
                )
    for quantum_ms, value in zip(lock_quanta, values[len(grid):]):
        result.lock_duration_ns[quantum_ms] = value

    # derive best quanta from the highest consolidation (the paper's
    # "most common case", 4 vCPUs per pCPU)
    k_ref = max(consolidations)
    for vtype, kind in KIND_FOR_TYPE.items():
        if kind not in kinds:
            continue
        series = {
            q: result.raw[(kind, q, k_ref)] for q in quanta_ms
        }
        values = list(series.values())
        spread = (max(values) - min(values)) / min(values)
        if spread < agnostic_threshold:
            result.best_quanta[vtype] = None
        else:
            best_ms = min(series, key=series.get)
            result.best_quanta[vtype] = best_ms * MS
    return result


__all__ = [
    "CALIBRATION_QUANTA_MS",
    "CALIBRATION_KINDS",
    "DEFAULT_QUANTUM_MS",
    "KIND_FOR_TYPE",
    "PAPER_BEST_QUANTA",
    "CalibrationResult",
    "measure_calibration_cell",
    "run_calibration",
]
