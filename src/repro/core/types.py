"""The five vCPU types of §3.2.

The enum order doubles as the tie-break precedence when two cursors
have exactly the same window average (the paper notes ties are
unlikely; a deterministic precedence keeps runs reproducible).  IO and
spin evidence is direct (event counts), so those types win a tie
against the CPU-burn trio whose cursors are residual percentages.
"""

from __future__ import annotations

import enum


class VCpuType(enum.Enum):
    IOINT = "IOInt"
    CONSPIN = "ConSpin"
    LLCF = "LLCF"
    LLCO = "LLCO"
    LOLCF = "LoLCF"

    def __str__(self) -> str:
        return self.value


#: Tie-break precedence: first listed wins an exact cursor tie.
TYPE_PRECEDENCE: tuple[VCpuType, ...] = (
    VCpuType.IOINT,
    VCpuType.CONSPIN,
    VCpuType.LLCF,
    VCpuType.LLCO,
    VCpuType.LOLCF,
)

#: The CPU-burn sub-types whose cursors must sum to 100 (equation 2).
CPU_BURN_TYPES: tuple[VCpuType, ...] = (
    VCpuType.LOLCF,
    VCpuType.LLCF,
    VCpuType.LLCO,
)

__all__ = ["VCpuType", "TYPE_PRECEDENCE", "CPU_BURN_TYPES"]
