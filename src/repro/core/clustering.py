"""The two-level clustering of §3.5 (Algorithms 1 and 2).

**Level 1** distributes vCPUs over sockets: trashing vCPUs (LLCO, plus
IOInt/ConSpin whose LLCO cursor exceeds 50 % — the paper's IOInt+ /
ConSpin+) are packed onto as few sockets as possible, away from the
cache-sensitive ones; vCPUs of the same VM stay adjacent (NUMA), and
LoLCF vCPUs head the non-trashing list so they — not LLCF — absorb any
colocation with trashers on the boundary socket.

Note: Algorithm 1 as printed in the paper sends vCPUs whose max
CPU-burn cursor is *LLCF* to the trashing list, contradicting the
surrounding prose (trashing = LLCO + IOInt+/ConSpin+).  We implement
the prose semantics; see DESIGN.md.

**Level 2** runs per socket: vCPUs are grouped into quantum-length-
compatible (QLC) clusters using the calibrated best quantum of their
type; quantum-agnostic vCPUs (LoLCF, LLCO) pad clusters up to multiples
of the fairness ratio ``k = ceil(vcpus / pcpus)``; pCPUs are then dealt
``k`` vCPUs each, and any pCPU whose ``k`` vCPUs would span two
clusters becomes part of the *default* cluster running the default
quantum (30 ms) — exactly the spill rule of Algorithm 2 (lines 17-24).

The output is a :class:`~repro.hypervisor.pools.PoolPlan` mapping every
pCPU and every vCPU to a pool with a quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro.core.types import VCpuType
from repro.hypervisor.pools import PoolPlan
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.topology import Socket, Topology
    from repro.hypervisor.vm import VCpu

#: LLCO-cursor threshold above which an IOInt/ConSpin vCPU counts as a
#: disturber (IOInt+/ConSpin+ in the paper).
TRASHING_CURSOR_THRESHOLD = 50.0


@dataclass(frozen=True)
class TypedVCpu:
    """Clustering input: a vCPU with its vTRS verdict."""

    vcpu: "VCpu"
    vtype: VCpuType
    llco_cur_avg: float = 0.0

    @property
    def trashing(self) -> bool:
        """Does this vCPU pollute the LLC (Algorithm 1's split)?"""
        if self.vtype == VCpuType.LLCO:
            return True
        if self.vtype in (VCpuType.IOINT, VCpuType.CONSPIN):
            return self.llco_cur_avg > TRASHING_CURSOR_THRESHOLD
        return False

    @property
    def quantum_agnostic_hint(self) -> bool:
        """LoLCF/LLCO are used as cluster filler (Algorithm 2 line 10)."""
        return self.vtype in (VCpuType.LOLCF, VCpuType.LLCO)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# Algorithm 1: socket-level distribution
# ----------------------------------------------------------------------
def distribute_over_sockets(
    typed: Sequence[TypedVCpu], sockets: Sequence["Socket"]
) -> dict[int, list[TypedVCpu]]:
    """Fairly spread vCPUs over sockets, trashers first and packed.

    Returns socket_id -> assigned vCPUs.  Each socket receives at most
    ``ceil(total / sockets)`` vCPUs; trashers are consumed before
    non-trashers so they concentrate on the fewest sockets, and the
    non-trashing list starts with LoLCF so those land on the boundary
    socket shared with the last trashers.
    """
    if not sockets:
        raise ValueError("no sockets to distribute over")
    # line 3: keep vCPUs of the same VM adjacent
    ordered = sorted(typed, key=lambda tv: (tv.vcpu.vm.vm_id, tv.vcpu.index))
    trashing = [tv for tv in ordered if tv.trashing]
    non_trashing = [tv for tv in ordered if not tv.trashing]
    # line 11: LoLCF first among non-trashers
    non_trashing.sort(
        key=lambda tv: 0 if tv.vtype == VCpuType.LOLCF else 1
    )
    sequence = trashing + non_trashing
    per_socket = _ceil_div(len(sequence), len(sockets)) if sequence else 0
    assignment: dict[int, list[TypedVCpu]] = {s.socket_id: [] for s in sockets}
    cursor = 0
    for socket in sockets:
        chunk = sequence[cursor:cursor + per_socket]
        assignment[socket.socket_id] = chunk
        cursor += len(chunk)
    return assignment


# ----------------------------------------------------------------------
# Algorithm 2: per-socket QLC clusters and pCPU pools
# ----------------------------------------------------------------------
@dataclass
class SocketClusters:
    """Algorithm 2's result for one socket."""

    #: parallel lists: cluster quantum, its vCPUs, its pCPUs
    clusters: list[tuple[int, list[TypedVCpu], list]]
    #: (vcpu_id, reason) for every vCPU placed in the default-quantum
    #: cluster instead of its type's calibrated one — the decision
    #: audit surfaces these as the "why is this vCPU at 30 ms?" answers
    spills: list[tuple[int, str]] = field(default_factory=list)


def cluster_socket(
    members: Sequence[TypedVCpu],
    pcpus: Sequence,
    best_quanta: Mapping[VCpuType, Optional[int]],
    default_quantum_ns: int = 30 * MS,
    filler_policy: str = "safe",
) -> SocketClusters:
    """Group one socket's vCPUs into QLC clusters with fair pCPU pools.

    ``filler_policy`` controls where agnostic vCPUs beyond the deficit
    padding go: ``"paper"`` reproduces Fig. 3's layout (they join the
    existing clusters, largest quantum first, wrapping round-robin) and
    ``"safe"`` — the online default — never puts them in a
    short-quantum cluster (see the comment below).
    """
    if filler_policy not in ("paper", "safe"):
        raise ValueError(f"unknown filler policy {filler_policy!r}")
    if not pcpus:
        if members:
            raise ValueError("vCPUs assigned to a socket with no pCPUs")
        return SocketClusters(clusters=[])
    if not members:
        return SocketClusters(
            clusters=[(default_quantum_ns, [], list(pcpus))]
        )

    # lines 2-7: one cluster per calibrated quantum, agnostic vCPUs kept
    # aside as filler
    quanta: list[int] = []
    for tv in members:
        quantum = best_quanta.get(tv.vtype)
        if quantum is not None and not tv.quantum_agnostic_hint:
            if quantum not in quanta:
                quanta.append(quantum)
    quanta.sort()
    clusters: dict[int, list[TypedVCpu]] = {q: [] for q in quanta}
    filler: list[TypedVCpu] = []
    for tv in members:
        quantum = best_quanta.get(tv.vtype)
        if tv.quantum_agnostic_hint or quantum is None:
            filler.append(tv)
        else:
            clusters[quantum].append(tv)

    k = _ceil_div(len(members), len(pcpus))

    # line 10: balance clusters with the agnostic vCPUs — first pad
    # each cluster to a multiple of k, then spread the remainder
    # round-robin in k-sized groups (Table 5's layouts: filler joins
    # the typed clusters rather than forming its own).  Padding starts
    # from the LARGEST quantum: agnostic vCPUs don't care, and an
    # LLC-friendly vCPU mistyped as LLCO during a cold phase lands in a
    # long-quantum pool where it can re-warm and be re-typed correctly.
    padding_order = sorted(quanta, reverse=True)
    for quantum in padding_order:
        deficit = (-len(clusters[quantum])) % k
        while deficit > 0 and filler:
            clusters[quantum].append(filler.pop(0))
            deficit -= 1
    if filler and filler_policy == "paper" and quanta:
        # Fig. 3's balancing: the remainder joins existing clusters,
        # largest quantum first
        index = 0
        while filler:
            target = padding_order[index % len(padding_order)]
            for _ in range(min(k, len(filler))):
                clusters[target].append(filler.pop(0))
            index += 1
    elif filler:
        # "safe": agnostic vCPUs beyond the deficit padding never join
        # a short-quantum cluster — they go to the largest >= default
        # quantum cluster, or form their own default-quantum cluster.
        # Besides fairness this is the self-correction path: a vCPU
        # mistyped as LLCO during a cold phase gets a quantum long
        # enough to re-warm and be re-typed.
        big = max(
            (q for q in quanta if q >= default_quantum_ns), default=None
        )
        target = big if big is not None else default_quantum_ns
        clusters.setdefault(target, [])
        clusters[target].extend(filler)
        filler = []
        if target not in quanta:
            quanta.append(target)

    # lines 11-30: deal k vCPUs to each pCPU; a pCPU whose share spans
    # clusters goes to the default cluster
    flat: list[tuple[int, TypedVCpu]] = []
    for quantum in quanta:
        flat.extend((quantum, tv) for tv in clusters[quantum])

    pools: dict[int, list] = {}  # quantum -> pcpus
    pool_vcpus: dict[int, list[TypedVCpu]] = {q: [] for q in quanta}
    default_vcpus: list[TypedVCpu] = []
    default_pcpus: list = []
    spills: list[tuple[int, str]] = []

    index = 0
    for pcpu in pcpus:
        share = flat[index:index + k]
        index += len(share)
        if not share:
            # surplus pCPU: attach to the default cluster
            default_pcpus.append(pcpu)
            continue
        share_quanta = {q for q, _ in share}
        if len(share_quanta) == 1:
            quantum = share[0][0]
            pools.setdefault(quantum, []).append(pcpu)
            pool_vcpus.setdefault(quantum, []).extend(tv for _, tv in share)
        else:
            # Algorithm 2 lines 20-23: mixed share -> default cluster
            default_pcpus.append(pcpu)
            default_vcpus.extend(tv for _, tv in share)
            mixed = "/".join(f"{q // MS}ms" for q in sorted(share_quanta))
            spills.extend(
                (
                    tv.vcpu.vcpu_id,
                    f"pCPU share mixes quanta {mixed}: cluster spans a "
                    f"pool boundary, so the share runs at the default "
                    f"{default_quantum_ns // MS}ms (Alg. 2 lines 20-23)",
                )
                for q, tv in share
                if q != default_quantum_ns
            )

    result: list[tuple[int, list[TypedVCpu], list]] = []
    for quantum in sorted(pools):
        result.append((quantum, pool_vcpus.get(quantum, []), pools[quantum]))
    if default_pcpus or default_vcpus:
        # merge with an existing default-quantum cluster if one exists
        merged = False
        for i, (quantum, vcpus, cluster_pcpus) in enumerate(result):
            if quantum == default_quantum_ns:
                result[i] = (
                    quantum,
                    vcpus + default_vcpus,
                    cluster_pcpus + default_pcpus,
                )
                merged = True
                break
        if not merged:
            result.append((default_quantum_ns, default_vcpus, default_pcpus))
    return SocketClusters(clusters=result, spills=spills)


# ----------------------------------------------------------------------
# machine-wide plan
# ----------------------------------------------------------------------
def build_pool_plan(
    topology: "Topology",
    typed: Sequence[TypedVCpu],
    best_quanta: Mapping[VCpuType, Optional[int]],
    default_quantum_ns: int = 30 * MS,
    sockets: Optional[Sequence["Socket"]] = None,
    pcpus: Optional[Sequence] = None,
    filler_policy: str = "safe",
    offline: Optional[Iterable] = None,
) -> PoolPlan:
    """Run both levels and emit a machine-wide pool plan.

    ``sockets`` restricts clustering to a subset (the paper dedicates
    one socket to dom0); ``pcpus`` further restricts to specific cores
    (a confined CPU pool) — preserving the deployment's consolidation
    ratio matters because clustering onto *more* cores than the vCPUs
    were confined to raises LLC concurrency.  Unlisted sockets/cores
    get reserved default pools so the plan still covers every pCPU.
    ``offline`` cores (fault injection) are outside the plan entirely:
    never clustered, never reserved — the machine validates plans
    against its online set only.
    """
    dark = set(offline) if offline else set()
    usable = list(sockets) if sockets is not None else list(topology.sockets)
    allowed = set(pcpus) if pcpus is not None else None
    if dark:
        # a socket whose every schedulable core failed can't host
        # anyone; drop it so distribution targets live sockets only
        usable = [
            s
            for s in usable
            if any(
                p not in dark and (allowed is None or p in allowed)
                for p in s.pcpus
            )
        ]
        if not usable:
            raise ValueError("every schedulable pCPU is offline")
    assignment = distribute_over_sockets(typed, usable)
    plan = PoolPlan()
    counter = 0
    reserved: list = []
    for socket in usable:
        members = assignment[socket.socket_id]
        socket_pcpus = [
            p
            for p in socket.pcpus
            if p not in dark and (allowed is None or p in allowed)
        ]
        reserved.extend(
            p
            for p in socket.pcpus
            if p not in dark and allowed is not None and p not in allowed
        )
        socket_result = cluster_socket(
            members,
            socket_pcpus,
            best_quanta,
            default_quantum_ns,
            filler_policy=filler_policy,
        )
        for quantum, vcpus, cluster_pcpus in socket_result.clusters:
            counter += 1
            label = f"s{socket.socket_id}.C{counter}.q{quantum // MS}ms"
            plan.add(label, cluster_pcpus, quantum, [tv.vcpu for tv in vcpus])
        plan.spills.extend(socket_result.spills)
    unused = [s for s in topology.sockets if s not in usable]
    for socket in unused:
        reserved.extend(p for p in socket.pcpus if p not in dark)
    if reserved:
        counter += 1
        plan.add("reserved", reserved, default_quantum_ns, [])
    return plan


__all__ = [
    "TypedVCpu",
    "SocketClusters",
    "TRASHING_CURSOR_THRESHOLD",
    "distribute_over_sockets",
    "cluster_socket",
    "build_pool_plan",
]
