"""Fig. 2: the quantum-length calibration panels (a)-(f) + lock inset.

Reproduces §3.4: for each of the six calibrated kinds, normalised
performance across quantum lengths {1, 10, 30, 60, 90} ms and
consolidation ratios {2, 4}, plus the mean-lock-duration-vs-quantum
inset and the derived best quantum per type.

Shape targets (see EXPERIMENTS.md): exclusive IO / LoLCF / LLCO flat;
heterogeneous IO and ConSpin best at 1 ms; LLCF best at 90 ms; lock
duration monotonically increasing with the quantum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.calibration import (
    CALIBRATION_QUANTA_MS,
    CalibrationResult,
    run_calibration,
)
from repro.hardware.specs import MachineSpec
from repro.metrics.tables import ResultTable, format_quantum
from repro.sim.units import SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

PANELS = (
    ("io_exclusive", "(a) Excl. IOInt"),
    ("io_hetero", "(b) Hetero. IOInt"),
    ("conspin", "(c) ConSpin"),
    ("llcf", "(d) LLCF"),
    ("lolcf", "(e) LoLCF"),
    ("llco", "(f) LLCO"),
)


def run_fig2(
    spec: Optional[MachineSpec] = None,
    warmup_ns: int = 1 * SEC,
    measure_ns: int = 3 * SEC,
    seed: int = 3,
    runner: Optional["SweepRunner"] = None,
) -> CalibrationResult:
    return run_calibration(
        spec=spec, warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
        runner=runner,
    )


def render_fig2(result: CalibrationResult) -> str:
    """The same series the paper plots, as text tables."""
    sections = []
    for kind, title in PANELS:
        table = ResultTable(
            f"Fig. 2 {title} — normalised perf (lower is better, 30ms = 1.0)",
            ["quantum"] + [f"{k} vCPUs/pCPU" for k in (2, 4)],
        )
        for quantum_ms in CALIBRATION_QUANTA_MS:
            table.add_row(
                f"{quantum_ms}ms",
                result.normalized[(kind, quantum_ms, 2)],
                result.normalized[(kind, quantum_ms, 4)],
            )
        sections.append(table.render())

    inset = ResultTable(
        "Fig. 2 (rightmost) — mean lock duration vs quantum",
        ["quantum", "lock duration (us)"],
    )
    for quantum_ms in sorted(result.lock_duration_ns):
        inset.add_row(
            f"{quantum_ms}ms", result.lock_duration_ns[quantum_ms] / 1000.0
        )
    sections.append(inset.render())

    best = ResultTable(
        "Derived best quantum per type (paper: IOInt/ConSpin 1ms, LLCF 90ms,"
        " LoLCF/LLCO agnostic)",
        ["type", "best quantum"],
    )
    for vtype, quantum in result.best_quanta.items():
        best.add_row(vtype.value, format_quantum(quantum))
    sections.append(best.render())
    return "\n\n".join(sections)


__all__ = ["run_fig2", "render_fig2", "PANELS"]
