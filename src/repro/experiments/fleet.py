"""The fleet experiment family: placement policies at datacenter scale.

Runs every diurnal story under every placement policy on the same
fleet and compares them — the paper's per-host scheduling insight
(each vTRS type wants its own quantum, hence its own cpupool)
re-applied one level up as a placement signal: an AQL-aware placer
that co-locates VMs by detected type against first-fit/best-fit
bin packers that ignore behaviour entirely.

``REPRO_FLEET_STORY`` (env) restricts the sweep to one story — the CI
smoke job uses it to keep the tiny run tiny.  Everything else follows
the family conventions: results go through the shared
:class:`~repro.exec.SweepRunner`, stdout is byte-identical across
serial/parallel/cached runs, and ``--telemetry-out`` exports the
fleet-level control-plane record.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.fleet import (
    STORIES,
    FleetRun,
    FleetSimulation,
    FleetSpec,
    make_placer,
)
from repro.metrics.tables import ResultTable
from repro.sim.units import MS
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

#: placement policies the family compares, in report order
FLEET_PLACERS = ("first_fit", "best_fit", "aql_aware")

#: environment variable restricting the sweep to one story (CI smoke)
ENV_STORY = "REPRO_FLEET_STORY"


def fleet_spec(fast: bool = False) -> FleetSpec:
    """The family's fleet shape: tiny for ``--fast``, datacenter else.

    The full spec is the acceptance configuration: 64 hosts x 8 slots
    = 512 VM slots, and the ``weekday`` story peaks at 99% of that —
    a >500-VM fleet at the top of the diurnal curve.
    """
    if fast:
        return FleetSpec(
            hosts=6,
            epochs=2,
            warmup_ns=80 * MS,
            epoch_ns=200 * MS,
            migration_lag_ns=30 * MS,
            migration_budget=4,
        )
    return FleetSpec(
        hosts=64,
        epochs=3,
        warmup_ns=120 * MS,
        epoch_ns=320 * MS,
        migration_lag_ns=40 * MS,
        migration_budget=16,
    )


@dataclass
class FleetReport:
    """The family's result plus its exportable telemetry record."""

    #: story -> placer -> folded run
    runs: dict[str, dict[str, FleetRun]]
    telemetry: Telemetry
    end_time_ns: int


def run_fleet(
    fast: bool = False,
    seed: int = 0,
    runner: Optional["SweepRunner"] = None,
) -> FleetReport:
    """Every (story, placer) pair on the family's fleet."""
    from repro.exec import SweepRunner

    runner = runner or SweepRunner()
    spec = fleet_spec(fast)
    telemetry = Telemetry(enabled=True)
    only = os.environ.get(ENV_STORY, "").strip()
    names = [n for n in sorted(STORIES) if not only or n == only]
    if not names:
        raise ValueError(
            f"{ENV_STORY}={only!r} matches no story; "
            f"choose from {sorted(STORIES)}"
        )
    runs: dict[str, dict[str, FleetRun]] = {}
    for story_name in names:
        runs[story_name] = {}
        for placer_name in FLEET_PLACERS:
            runs[story_name][placer_name] = FleetSimulation(
                spec,
                STORIES[story_name],
                make_placer(placer_name),
                seed=seed,
                runner=runner,
                telemetry=telemetry,
            ).run()
    return FleetReport(
        runs=runs,
        telemetry=telemetry,
        end_time_ns=spec.epochs * (spec.warmup_ns + spec.epoch_ns),
    )


def render_fleet(report: FleetReport) -> str:
    """Per-story epoch tables plus the placement comparison summary."""
    sections: list[str] = []
    for story_name in sorted(report.runs):
        table = ResultTable(
            f"fleet story {story_name!r} — per-epoch metrics by placer",
            [
                "placer",
                "epoch",
                "vms",
                "hosts",
                "arr",
                "dep",
                "migr",
                "p99_ms",
                "util",
                "spread",
            ],
        )
        for placer_name in FLEET_PLACERS:
            run = report.runs[story_name][placer_name]
            for metrics in run.epochs:
                table.add_row(
                    placer_name,
                    metrics.epoch,
                    metrics.vms,
                    metrics.active_hosts,
                    metrics.arrivals,
                    metrics.departures,
                    metrics.migrations,
                    metrics.p99_ms,
                    metrics.mean_util,
                    metrics.util_spread,
                )
        sections.append(table.render())

    summary = ResultTable(
        "fleet — placement policy comparison"
        " (p99 request latency; lower is better)",
        [
            "story",
            "placer",
            "peak_vms",
            "p99_ms",
            "consol",
            "migr",
            "churn",
            "units",
        ],
    )
    for story_name in sorted(report.runs):
        for placer_name in FLEET_PLACERS:
            run = report.runs[story_name][placer_name]
            summary.add_row(
                story_name,
                placer_name,
                run.peak_vms,
                run.p99_ms,
                run.consolidation,
                run.total_migrations,
                run.migration_churn,
                run.units,
            )
    sections.append(summary.render())
    return "\n\n".join(sections)


__all__ = [
    "ENV_STORY",
    "FLEET_PLACERS",
    "FleetReport",
    "fleet_spec",
    "render_fleet",
    "run_fleet",
]
