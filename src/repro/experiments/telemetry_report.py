"""The ``telemetry`` report: why the scheduler did what it did.

Runs one fig6 cell (a Table-4 scenario under AQL_Sched) with the full
telemetry stack on — counter registry, span tracer, decision audit —
and renders the audit as operator-facing tables:

* the per-vCPU **"why" table**: every vTRS type flip with the window
  averages the argmax ran over, so each verdict is justified by the
  numbers that produced it;
* the **decision log**: every Algorithm 1/2 run with its input type
  census, the planned clusters, and any spill-to-default reasons;
* the **pool-change ledger**: every pool-layout mutation with its
  migration cost;
* the aggregate counter summary.

The same run backs the CLI's ``--telemetry-out`` (JSONL exposition)
and ``--trace-out`` (chrome trace with the span tracks), so one
simulation yields the report and both artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import AqlPolicy
from repro.experiments.scenarios import SCENARIOS, build_scenario
from repro.metrics.tables import ResultTable
from repro.sim.tracing import TraceRecorder
from repro.sim.units import MS, SEC
from repro.telemetry import Telemetry

#: the fig6 cell the report runs (S2: IO server + CPU burners + LLC
#: streamer — every cursor family shows up in the flip table)
DEFAULT_SCENARIO = "S2"

#: counters worth surfacing in the aggregate table (prefix match)
SUMMARY_PREFIXES = (
    "audit_",
    "aql_",
    "type_flips",
    "dispatches",
    "preempts",
    "migrations_total",
    "pool_plans_applied",
    "spans_recorded",
)


@dataclass
class TelemetryReport:
    """One instrumented scenario run plus its live recorders."""

    scenario: str
    policy: str
    end_time_ns: int
    telemetry: Telemetry
    trace: Optional[TraceRecorder] = None
    summary: dict[str, float] = field(default_factory=dict)


def run_telemetry_report(
    scenario_name: str = DEFAULT_SCENARIO,
    warmup_ns: int = 1 * SEC,
    measure_ns: int = 2 * SEC,
    seed: int = 1,
    with_trace: bool = False,
) -> TelemetryReport:
    """Run the fig6 cell with telemetry on; keep the recorders live.

    Mirrors :func:`repro.experiments.runner.run_scenario`'s protocol
    (same seed discipline, same warm-up/measure split) but holds on to
    the recorder objects — the report needs the full audit records, not
    just the flat summary a sweep result carries.
    """
    scenario = SCENARIOS[scenario_name]
    telemetry = Telemetry(enabled=True)
    trace = None
    if with_trace:
        from repro.metrics.chrome_trace import CHROME_KINDS

        trace = TraceRecorder(enabled=True, kinds=set(CHROME_KINDS))
    built = build_scenario(
        scenario, seed=seed, telemetry=telemetry, trace=trace
    )
    policy = AqlPolicy()
    policy.setup(built.machine, built.ctx)
    built.machine.run(warmup_ns)
    for workload in built.workloads.values():
        workload.begin_measurement()
    built.machine.run(measure_ns)
    built.machine.sync()
    telemetry.tracer.close_all(built.machine.sim.now)
    return TelemetryReport(
        scenario=scenario.name,
        policy=policy.name,
        end_time_ns=built.machine.sim.now,
        telemetry=telemetry,
        trace=trace,
        summary=telemetry.summary(),
    )


def _type_census(input_types) -> str:
    """(vcpu, type) pairs -> 'CONSPIN:5 IOINT:4 ...' (sorted by count)."""
    counts: dict[str, int] = {}
    for _vcpu_id, type_name in input_types:
        counts[type_name] = counts.get(type_name, 0) + 1
    return " ".join(
        f"{name}:{count}"
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    )


def render_telemetry_report(report: TelemetryReport) -> str:
    audit = report.telemetry.audit
    sections = []

    cursor_names = sorted(
        {name for flip in audit.flips for name, _ in flip.averages}
    )
    why = ResultTable(
        f"vTRS type flips — {report.scenario} under {report.policy} "
        "(window averages the argmax ran over; * marks the winner)",
        ["t(ms)", "vCPU", "flip"] + cursor_names,
    )
    for flip in audit.flips:
        averages = dict(flip.averages)
        cells: list[object] = [
            flip.time_ns // MS,
            flip.vcpu_name,
            f"{flip.old_type or '-'}>{flip.new_type}",
        ]
        for name in cursor_names:
            value = averages.get(name, 0.0)
            mark = "*" if name == flip.new_type else " "
            cells.append(f"{value:.3f}{mark}")
        why.add_row(*cells)
    sections.append(why.render())

    decisions = ResultTable(
        "AQL decision log — Algorithm 1/2 runs "
        "(census = input types, clusters = planned pools)",
        ["t(ms)", "#", "census", "clusters", "spills", "changed"],
    )
    for decision in audit.decisions:
        if decision.skipped:
            decisions.add_row(
                decision.time_ns // MS, decision.decision_index,
                "(cold-start delay)", "-", 0, "no",
            )
            continue
        clusters = " ".join(
            f"{name}(q={quantum_ns // MS}ms,{len(pcpus)}p,{len(vcpus)}v)"
            for name, quantum_ns, pcpus, vcpus in decision.pools
        )
        decisions.add_row(
            decision.time_ns // MS,
            decision.decision_index,
            _type_census(decision.input_types),
            clusters or "-",
            len(decision.spills),
            "yes" if decision.changed else "no",
        )
    sections.append(decisions.render())

    spill_reasons = sorted(
        {reason for d in audit.decisions for _vid, reason in d.spills}
    )
    if spill_reasons:
        sections.append(
            "spill-to-default reasons:\n" + "\n".join(
                f"  - {reason}" for reason in spill_reasons
            )
        )

    ledger = ResultTable(
        "Pool-change ledger (migrations = machine total after the change)",
        ["t(ms)", "kind", "detail", "migrations"],
    )
    for change in audit.ledger:
        ledger.add_row(
            change.time_ns // MS, change.kind, change.detail,
            change.migrations_total,
        )
    sections.append(ledger.render())

    aggregate = ResultTable(
        "Aggregate telemetry (selected counters)", ["counter", "value"]
    )
    for key, value in sorted(report.summary.items()):
        if key.startswith(SUMMARY_PREFIXES):
            aggregate.add_row(key, f"{value:g}")
    sections.append(aggregate.render())
    return "\n\n".join(sections)


def report_jsonable(report: TelemetryReport) -> dict:
    """The report as a plain-JSON dict (the golden snapshot's shape).

    Floats round to 6 places — far inside the simulator's determinism,
    wide enough that a re-run on any platform reproduces the file
    byte-for-byte.
    """
    audit = report.telemetry.audit
    return {
        "scenario": report.scenario,
        "policy": report.policy,
        "flips": [
            {
                "time_ms": flip.time_ns // MS,
                "vcpu": flip.vcpu_name,
                "old": flip.old_type,
                "new": flip.new_type,
                "averages": {
                    name: round(value, 6) for name, value in flip.averages
                },
            }
            for flip in audit.flips
        ],
        "decisions": [
            {
                "time_ms": decision.time_ns // MS,
                "index": decision.decision_index,
                "census": _type_census(decision.input_types),
                "clusters": [
                    [name, quantum_ns // MS, len(pcpus), len(vcpus)]
                    for name, quantum_ns, pcpus, vcpus in decision.pools
                ],
                "spills": len(decision.spills),
                "changed": decision.changed,
                "skipped": decision.skipped,
            }
            for decision in audit.decisions
        ],
        "ledger": [
            {
                "time_ms": change.time_ns // MS,
                "kind": change.kind,
                "migrations": change.migrations_total,
            }
            for change in audit.ledger
        ],
        "summary": {
            key: round(value, 6)
            for key, value in sorted(report.summary.items())
            if key.startswith(("audit_", "aql_", "type_flips"))
        },
    }


__all__ = [
    "DEFAULT_SCENARIO",
    "TelemetryReport",
    "render_telemetry_report",
    "report_jsonable",
    "run_telemetry_report",
]
