"""The churn experiment family: AQL vs fixed-Xen under dynamism.

Every other experiment in this repo freezes the VM population at t=0;
here the population *moves*.  Four scripted stories run the same churn
timeline under native Xen (fixed 30 ms) and under AQL_Sched:

* ``arrivals`` — VMs boot mid-run (one heterogeneous-IO, one LLC
  streamer) and one of the original VMs shuts down;
* ``phases``   — a compute VM turns into an IO server and back, with
  an IO load spike in between (the §3.3 "no fixed type" claim);
* ``faults``   — a pCPU fails mid-run and later recovers;
* ``random``   — a seeded random timeline drawn by
  :func:`repro.dynamics.events.random_timeline`.

Per event we report the adaptation metrics (detection latency,
re-cluster convergence, migrations, degraded-window throughput and IO
latency) plus the final per-workload performance.  Everything runs
through :mod:`repro.exec` cells, so churn sweeps parallelise and cache
like the static figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines import AqlPolicy, XenCredit
from repro.baselines.base import PolicyContext
from repro.dynamics import (
    AdaptationRecord,
    AdaptationTracker,
    ChurnEngine,
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    SwitchableWorkload,
    VmBoot,
    VmShutdown,
    build_records,
    random_timeline,
)
from repro.hypervisor.hostspec import HostSpec
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner
    from repro.sim.tracing import TraceRecorder
    from repro.telemetry import Telemetry

POLICIES = ("xen", "aql")


@dataclass(frozen=True)
class ChurnSpec:
    """One member of the base (pre-churn) population."""

    name: str
    mode: str


@dataclass(frozen=True)
class ChurnStory:
    """A named churn experiment: base population + timeline."""

    name: str
    base: tuple[ChurnSpec, ...]
    timeline: ChurnTimeline
    #: machine size; the base population is confined to these cores
    pcpus: int = 2
    #: closed-loop clients per io-mode workload
    clients: int = 8


#: the shared base population: 4 single-vCPU VMs on 2 pCPUs (2:1
#: consolidation), one of them a heterogeneous IO server — enough
#: contention that quantum choices matter, small enough to stay fast
BASE = (
    ChurnSpec("cpu0", "llcf"),
    ChurnSpec("cpu1", "llcf"),
    ChurnSpec("mem0", "llco"),
    ChurnSpec("io0", "io"),
)


def make_stories(fast: bool = False) -> list[ChurnStory]:
    """The four scripted stories, spaced by ~2x the AQL decide period."""
    s = 400 * MS if fast else 600 * MS
    arrivals = ChurnStory(
        "arrivals",
        BASE,
        ChurnTimeline(
            (
                VmBoot(1 * s, name="dyn0", mode="io"),
                VmBoot(2 * s, name="dyn1", mode="llco"),
                VmShutdown(3 * s, name="mem0"),
            )
        ),
    )
    phases = ChurnStory(
        "phases",
        BASE,
        ChurnTimeline(
            (
                PhaseChange(1 * s, name="cpu1", mode="io"),
                LoadSpike(2 * s, name="io0", factor=4.0, duration_ns=s // 2),
                PhaseChange(3 * s, name="cpu1", mode="llcf"),
            )
        ),
    )
    faults = ChurnStory(
        "faults",
        BASE,
        ChurnTimeline(
            (
                PcpuOffline(1 * s, cpu_id=1),
                PcpuOnline(2 * s, cpu_id=1),
            )
        ),
    )
    rand = ChurnStory(
        "random",
        BASE,
        random_timeline(
            seed=11,
            n_events=4 if fast else 6,
            base_vms=tuple((member.name, member.mode) for member in BASE),
            pcpus=2,
            start_ns=s,
            spacing_ns=s,
        ),
    )
    return [arrivals, phases, faults, rand]


@dataclass
class ChurnRun:
    """Everything one story x policy churn run produced (picklable)."""

    story: str
    policy: str
    records: list[AdaptationRecord] = field(default_factory=list)
    #: final lower-is-better value per workload still alive at the end
    final: dict[str, float] = field(default_factory=dict)
    final_modes: dict[str, str] = field(default_factory=dict)
    events_applied: int = 0
    decisions: int = 0
    reconfigurations: int = 0
    migrations_total: int = 0


def _run_churn(
    story: ChurnStory,
    policy_name: str,
    warmup_ns: int,
    measure_ns: int,
    seed: int = 0,
    trace: Optional["TraceRecorder"] = None,
    telemetry: Optional["Telemetry"] = None,
) -> tuple[ChurnRun, Machine]:
    """Build the base population, arm the timeline, run, measure."""
    if policy_name not in POLICIES:
        raise ValueError(f"unknown policy {policy_name!r}")
    if measure_ns <= story.timeline.duration_ns:
        raise ValueError("measurement window ends before the last event")
    machine = HostSpec(pcpus=story.pcpus).build(
        seed=seed, trace=trace, telemetry=telemetry
    )
    pool = machine.create_pool(
        "scenario", machine.topology.pcpus, 30 * MS
    )
    ctx = PolicyContext(pool=pool)
    workloads: dict[str, SwitchableWorkload] = {}
    for member in story.base:
        vm = machine.new_vm(member.name, 1)
        vcpu = vm.vcpus[0]
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
        workload = SwitchableWorkload(
            member.name, mode=member.mode, clients=story.clients
        )
        workload.install(machine, vm)
        workloads[member.name] = workload

    policy = XenCredit() if policy_name == "xen" else AqlPolicy()
    policy.setup(machine, ctx)
    machine.run(warmup_ns)
    for workload in workloads.values():
        workload.begin_measurement()

    manager = getattr(policy, "manager", None)
    tracker = AdaptationTracker(machine, workloads, manager=manager)
    engine = ChurnEngine(
        machine,
        story.timeline,
        workloads=workloads,
        allowed_pcpus=pool.pcpus,
        on_event=tracker.on_event,
        clients=story.clients,
    )
    tracker.snapshot()  # start of the measured window
    engine.arm()
    machine.run(measure_ns)
    tracker.snapshot()  # end of the measured window

    run = ChurnRun(story=story.name, policy=policy.name)
    run.records = build_records(tracker)
    for name, workload in sorted(workloads.items()):
        if workload.vm is not None and workload.vm.alive:
            run.final[name] = workload.result().value
            run.final_modes[name] = workload.mode
    run.events_applied = len(engine.applied)
    if manager is not None:
        run.decisions = manager.decisions
        run.reconfigurations = manager.reconfigurations
    run.migrations_total = machine.migrations_total
    return run, machine


def run_churn_cell(
    story: ChurnStory,
    policy_name: str,
    warmup_ns: int,
    measure_ns: int,
    seed: int = 0,
) -> ChurnRun:
    """The repro.exec cell: one story under one policy."""
    run, _machine = _run_churn(
        story, policy_name, warmup_ns, measure_ns, seed=seed
    )
    return run


def _durations(fast: bool) -> tuple[int, int]:
    warmup = 600 * MS if fast else 1 * SEC
    tail = 800 * MS if fast else 1200 * MS
    return warmup, tail


def churn_cells(stories, warmup_ns, tail_ns, seed):
    from repro.exec import Cell

    cells = []
    for story in stories:
        measure = story.timeline.duration_ns + tail_ns
        for policy_name in POLICIES:
            cells.append(
                Cell(
                    run_churn_cell,
                    dict(
                        story=story,
                        policy_name=policy_name,
                        warmup_ns=warmup_ns,
                        measure_ns=measure,
                        seed=seed,
                    ),
                    label=f"churn:{story.name}:{policy_name}",
                )
            )
    return cells


def run_churn(
    fast: bool = False,
    seed: int = 0,
    runner: Optional["SweepRunner"] = None,
) -> dict[str, dict[str, ChurnRun]]:
    """All stories under both policies: story -> policy -> ChurnRun."""
    from repro.exec import SweepRunner

    runner = runner or SweepRunner()
    stories = make_stories(fast)
    warmup, tail = _durations(fast)
    runs = runner.run(churn_cells(stories, warmup, tail, seed))
    return {
        story.name: {
            POLICIES[0]: runs[2 * i],
            POLICIES[1]: runs[2 * i + 1],
        }
        for i, story in enumerate(stories)
    }


def _opt(value, fmt: str = "{:.1f}") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return fmt.format(value)


def render_churn(result: dict[str, dict[str, ChurnRun]]) -> str:
    sections = []
    for story_name, runs in result.items():
        table = ResultTable(
            f"churn story {story_name!r} — per-event adaptation"
            " (AQL vs fixed-30ms Xen)",
            [
                "policy",
                "event",
                "t_ms",
                "win_ms",
                "detect_ms",
                "converge",
                "stable",
                "migr",
                "thpt i/ns",
                "io_lat_ms",
            ],
        )
        for policy_name in POLICIES:
            for record in runs[policy_name].records:
                table.add_row(
                    policy_name,
                    record.event,
                    f"{record.time_ms:.0f}",
                    f"{record.window_ms:.0f}",
                    _opt(record.detection_ms),
                    _opt(record.convergence_periods, "{:d}"),
                    _opt(record.stable),
                    record.migrations,
                    record.throughput_ipms / 1e6,
                    _opt(record.io_latency_ms, "{:.3f}"),
                )
        sections.append(table.render())

    summary = ResultTable(
        "churn — final per-workload performance"
        " (lower is better; ratio < 1 means AQL wins)",
        ["story", "workload", "mode", "xen", "aql", "aql/xen"],
    )
    for story_name, runs in result.items():
        xen, aql = runs["xen"], runs["aql"]
        for name in sorted(xen.final):
            if name not in aql.final:
                continue
            summary.add_row(
                story_name,
                name,
                aql.final_modes.get(name, "?"),
                xen.final[name],
                aql.final[name],
                aql.final[name] / xen.final[name],
            )
    sections.append(summary.render())
    return "\n\n".join(sections)


def export_churn_trace(
    path: str,
    fast: bool = False,
    story_name: str = "phases",
    policy_name: str = "aql",
    seed: int = 0,
) -> int:
    """Run one traced churn story and write a chrome://tracing JSON.

    The machine records both the raw scheduling trace (pCPU occupancy
    tracks) and the telemetry span layer (quantum slices, vTRS periods,
    AQL decisions, churn markers), so the exported document shows the
    control plane above the timeline it reshaped.
    """
    from repro.metrics.chrome_trace import CHROME_KINDS, write_chrome_trace
    from repro.sim.tracing import TraceRecorder
    from repro.telemetry import Telemetry

    stories = {story.name: story for story in make_stories(fast)}
    story = stories[story_name]
    warmup, tail = _durations(fast)
    trace = TraceRecorder(enabled=True, kinds=set(CHROME_KINDS))
    telemetry = Telemetry(enabled=True)
    _run, machine = _run_churn(
        story,
        policy_name,
        warmup,
        story.timeline.duration_ns + tail,
        seed=seed,
        trace=trace,
        telemetry=telemetry,
    )
    telemetry.tracer.close_all(machine.sim.now)
    return write_chrome_trace(
        path, trace, end_time=machine.sim.now, telemetry=telemetry.tracer
    )


__all__ = [
    "BASE",
    "POLICIES",
    "ChurnRun",
    "ChurnSpec",
    "ChurnStory",
    "churn_cells",
    "export_churn_trace",
    "make_stories",
    "render_churn",
    "run_churn",
    "run_churn_cell",
]
