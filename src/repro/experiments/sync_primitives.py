"""Sync-primitive ablation: spin locks vs blocking semaphores.

§3.2 of the paper explains why ConSpin applications are hurt by long
quanta: spinning waiters burn CPU whenever a lock holder's vCPU is
descheduled, while semaphore waiters release the processor.  This
experiment runs the same synchronised loop with both primitives across
quantum lengths, on the same consolidated setup: the spin variant
should degrade with the quantum while the blocking variant remains
comparatively flat (its waiters never spin and BOOST covers wake-ups).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.specs import i7_3770
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC
from repro.workloads.blocking import BlockingSyncWorkload
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.profiles import lolcf_profile
from repro.workloads.spin import SpinWorkload


@dataclass
class SyncPrimitiveResult:
    #: (primitive, quantum_ms) -> ns per job
    ns_per_job: dict[tuple[str, int], float] = field(default_factory=dict)
    #: (primitive, quantum_ms) -> mean lock/semaphore duration (ns)
    duration_ns: dict[tuple[str, int], float] = field(default_factory=dict)

    def degradation(self, primitive: str, low_ms: int = 1, high_ms: int = 90):
        """perf at the large quantum / perf at the small quantum."""
        return (
            self.ns_per_job[(primitive, high_ms)]
            / self.ns_per_job[(primitive, low_ms)]
        )


def _run_cell(
    primitive: str, quantum_ms: int, warmup_ns: int, measure_ns: int, seed: int
) -> tuple[float, float]:
    spec = i7_3770()
    machine = Machine(spec, seed=seed, default_quantum_ns=quantum_ms * MS)
    pool = machine.create_pool("p", machine.topology.pcpus[:2], quantum_ms * MS)
    vm = machine.new_vm("sync", 4, weight=1024)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    if primitive == "spin":
        workload = SpinWorkload(
            "spin",
            threads=4,
            work_instructions=150_000.0,
            cs_instructions=30_000.0,
            use_barrier=False,
        )
        stats = lambda: workload.lock.stats.mean_duration_ns  # noqa: E731
    elif primitive == "semaphore":
        workload = BlockingSyncWorkload(
            "blocking",
            threads=4,
            work_instructions=150_000.0,
            cs_instructions=30_000.0,
        )
        stats = lambda: workload.semaphore.stats.mean_duration_ns  # noqa: E731
    else:
        raise ValueError(f"unknown primitive {primitive!r}")
    workload.install(machine, vm)
    for i in range(4):
        dvm = machine.new_vm(f"hog{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        CpuBurnWorkload(f"h{i}", lolcf_profile(spec)).install(machine, dvm)
    machine.run(warmup_ns)
    workload.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    return workload.result().value, stats()


def run_sync_primitives(
    quanta_ms: tuple[int, ...] = (1, 30, 90),
    warmup_ns: int = 500 * MS,
    measure_ns: int = 2 * SEC,
    seed: int = 3,
) -> SyncPrimitiveResult:
    result = SyncPrimitiveResult()
    for primitive in ("spin", "semaphore"):
        for quantum_ms in quanta_ms:
            value, duration = _run_cell(
                primitive, quantum_ms, warmup_ns, measure_ns, seed
            )
            result.ns_per_job[(primitive, quantum_ms)] = value
            result.duration_ns[(primitive, quantum_ms)] = duration
    return result


def render_sync_primitives(result: SyncPrimitiveResult) -> str:
    quanta = sorted({q for _, q in result.ns_per_job})
    table = ResultTable(
        "Sync-primitive ablation — 4 synchronised workers + 4 hogs on"
        " 2 pCPUs (ns per job)",
        ["quantum", "spin", "semaphore", "spin dur (us)", "sem dur (us)"],
    )
    for quantum_ms in quanta:
        table.add_row(
            f"{quantum_ms}ms",
            result.ns_per_job[("spin", quantum_ms)],
            result.ns_per_job[("semaphore", quantum_ms)],
            result.duration_ns[("spin", quantum_ms)] / 1000.0,
            result.duration_ns[("semaphore", quantum_ms)] / 1000.0,
        )
    return table.render()


__all__ = [
    "SyncPrimitiveResult",
    "run_sync_primitives",
    "render_sync_primitives",
]
