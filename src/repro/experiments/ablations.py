"""Ablations of the design choices DESIGN.md calls out.

Three studies beyond the paper's own ablation (Fig. 7):

* **BOOST** (:func:`run_boost_ablation`) — Credit's BOOST fast-path is
  the reason exclusive IO is quantum-agnostic (Fig. 2a); with BOOST
  disabled, exclusive-IO latency becomes quantum-bound.  This isolates
  the paper's §3.4 claim that BOOST works *only* for workloads that
  block before exhausting their quantum.
* **Lock handoff** (:func:`run_lock_handoff_ablation`) — strict ticket
  (FIFO) handoff vs test-and-set barging under consolidation.  FIFO
  reproduces the lock-waiter-preemption convoys of [39]; the study
  shows how much worse ticket locks make large quanta.
* **Cache reuse curve** (:func:`run_reuse_ablation`) — the concave
  hit-probability exponent governs how fast an LLC-friendly working
  set re-warms.  Uniform access (exponent 1.0) exaggerates the quantum
  effect; strong hot-subset reuse (0.3) dampens it.  The study reports
  the LLCF 1 ms / 90 ms performance ratio per exponent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.calibration import _build_calibration_machine
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile
from repro.workloads.spin import SpinWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner


# ----------------------------------------------------------------------
# BOOST ablation
# ----------------------------------------------------------------------
@dataclass
class BoostAblation:
    #: (boost_enabled, quantum_ms) -> mean exclusive-IO latency (ns)
    latency: dict[tuple[bool, int], float] = field(default_factory=dict)


def _boost_cell(
    boost: bool, quantum_ms: int, spec: MachineSpec,
    warmup_ns: int, measure_ns: int, seed: int,
) -> float:
    machine = Machine(
        spec,
        seed=seed,
        default_quantum_ns=quantum_ms * MS,
        boost_enabled=boost,
    )
    pool = machine.create_pool(
        "p", machine.topology.pcpus[:1], quantum_ms * MS
    )
    vm = machine.new_vm("io", 1)
    machine.default_pool.remove_vcpu(vm.vcpus[0])
    pool.add_vcpu(vm.vcpus[0])
    workload = IoWorkload.exclusive("io").install(machine, vm)
    for i in range(3):
        dvm = machine.new_vm(f"hog{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        CpuBurnWorkload(f"h{i}", llco_profile(spec)).install(
            machine, dvm
        )
    machine.run(warmup_ns)
    workload.begin_measurement()
    machine.run(measure_ns)
    return workload.result().value


def run_boost_ablation(
    quanta_ms: tuple[int, ...] = (1, 30, 90),
    warmup_ns: int = 500 * MS,
    measure_ns: int = 2 * SEC,
    seed: int = 3,
    runner: Optional["SweepRunner"] = None,
) -> BoostAblation:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    spec = i7_3770()
    grid = [
        (boost, quantum_ms)
        for boost in (True, False)
        for quantum_ms in quanta_ms
    ]
    values = runner.run([
        Cell(
            _boost_cell,
            dict(
                boost=boost, quantum_ms=quantum_ms, spec=spec,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
            ),
            label=f"ablation:boost={boost}:{quantum_ms}ms",
        )
        for boost, quantum_ms in grid
    ])
    result = BoostAblation()
    for cell_id, value in zip(grid, values):
        result.latency[cell_id] = value
    return result


def render_boost_ablation(result: BoostAblation) -> str:
    quanta = sorted({q for _, q in result.latency})
    table = ResultTable(
        "BOOST ablation — exclusive-IO mean latency (ms)",
        ["quantum", "BOOST on", "BOOST off", "off/on"],
    )
    for quantum_ms in quanta:
        on = result.latency[(True, quantum_ms)]
        off = result.latency[(False, quantum_ms)]
        table.add_row(
            f"{quantum_ms}ms", on / 1e6, off / 1e6, off / max(on, 1e-9)
        )
    return table.render()


# ----------------------------------------------------------------------
# lock-handoff ablation
# ----------------------------------------------------------------------
@dataclass
class LockHandoffAblation:
    #: (handoff, quantum_ms) -> ns per job in the dense-lock workload
    ns_per_job: dict[tuple[str, int], float] = field(default_factory=dict)
    #: (handoff, quantum_ms) -> mean lock duration (ns)
    lock_duration: dict[tuple[str, int], float] = field(default_factory=dict)


def _lock_handoff_cell(
    handoff: str, quantum_ms: int, spec: MachineSpec,
    warmup_ns: int, measure_ns: int, seed: int,
) -> tuple[float, float]:
    machine = Machine(
        spec, seed=seed, default_quantum_ns=quantum_ms * MS
    )
    pool = machine.create_pool(
        "p", machine.topology.pcpus[:2], quantum_ms * MS
    )
    vm = machine.new_vm("spin", 4, weight=1024)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    workload = SpinWorkload(
        "dense",
        threads=4,
        work_instructions=150_000.0,
        cs_instructions=30_000.0,
        use_barrier=False,
        lock_handoff=handoff,
    ).install(machine, vm)
    for i in range(4):
        dvm = machine.new_vm(f"hog{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        CpuBurnWorkload(f"h{i}", llcf_profile(spec)).install(
            machine, dvm
        )
    machine.run(warmup_ns)
    workload.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    perf = workload.result()
    return perf.value, dict(perf.details)["mean_lock_duration_ns"]


def run_lock_handoff_ablation(
    quanta_ms: tuple[int, ...] = (1, 30, 90),
    warmup_ns: int = 500 * MS,
    measure_ns: int = 2 * SEC,
    seed: int = 3,
    runner: Optional["SweepRunner"] = None,
) -> LockHandoffAblation:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    spec = i7_3770()
    grid = [
        (handoff, quantum_ms)
        for handoff in ("hybrid", "fifo")
        for quantum_ms in quanta_ms
    ]
    outcomes = runner.run([
        Cell(
            _lock_handoff_cell,
            dict(
                handoff=handoff, quantum_ms=quantum_ms, spec=spec,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
            ),
            label=f"ablation:lock-{handoff}:{quantum_ms}ms",
        )
        for handoff, quantum_ms in grid
    ])
    result = LockHandoffAblation()
    for cell_id, (ns_per_job, lock_duration) in zip(grid, outcomes):
        result.ns_per_job[cell_id] = ns_per_job
        result.lock_duration[cell_id] = lock_duration
    return result


def render_lock_handoff_ablation(result: LockHandoffAblation) -> str:
    quanta = sorted({q for _, q in result.ns_per_job})
    table = ResultTable(
        "Lock-handoff ablation — dense-lock workload, 4 threads + 4 hogs"
        " on 2 pCPUs",
        ["quantum", "hybrid ns/job", "fifo ns/job", "fifo/hybrid",
         "hybrid lock (us)", "fifo lock (us)"],
    )
    for quantum_ms in quanta:
        hybrid = result.ns_per_job[("hybrid", quantum_ms)]
        fifo = result.ns_per_job[("fifo", quantum_ms)]
        table.add_row(
            f"{quantum_ms}ms",
            hybrid,
            fifo,
            fifo / max(hybrid, 1e-9),
            result.lock_duration[("hybrid", quantum_ms)] / 1000.0,
            result.lock_duration[("fifo", quantum_ms)] / 1000.0,
        )
    return table.render()


# ----------------------------------------------------------------------
# cache reuse-curve ablation
# ----------------------------------------------------------------------
@dataclass
class ReuseAblation:
    #: exponent -> (llcf value at 1 ms) / (llcf value at 90 ms)
    quantum_sensitivity: dict[float, float] = field(default_factory=dict)


def _llcf_cell(
    spec: MachineSpec, exponent: float, quantum_ms: int,
    warmup_ns: int, measure_ns: int, seed: int,
) -> float:
    machine, baseline, _ = _build_calibration_machine(
        "llcf", quantum_ms, 4, spec, seed
    )
    for socket in machine.topology.sockets:
        socket.llc.reuse_exponent = exponent
    machine.run(warmup_ns)
    baseline.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    return baseline.result().value


def run_reuse_ablation(
    exponents: tuple[float, ...] = (0.3, 0.5, 1.0),
    warmup_ns: int = 500 * MS,
    measure_ns: int = 2 * SEC,
    seed: int = 3,
    runner: Optional["SweepRunner"] = None,
) -> ReuseAblation:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    spec = i7_3770()
    grid = [
        (exponent, quantum_ms)
        for exponent in exponents
        for quantum_ms in (1, 90)
    ]
    values = runner.run([
        Cell(
            _llcf_cell,
            dict(
                spec=spec, exponent=exponent, quantum_ms=quantum_ms,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
            ),
            label=f"ablation:reuse={exponent}:{quantum_ms}ms",
        )
        for exponent, quantum_ms in grid
    ])
    raw = dict(zip(grid, values))
    result = ReuseAblation()
    for exponent in exponents:
        result.quantum_sensitivity[exponent] = (
            raw[(exponent, 1)] / raw[(exponent, 90)]
        )
    return result


def render_reuse_ablation(result: ReuseAblation) -> str:
    table = ResultTable(
        "Cache reuse-curve ablation — LLCF quantum sensitivity"
        " (perf at 1 ms / perf at 90 ms; > 1 means long quanta help)",
        ["reuse exponent", "1ms / 90ms ratio"],
    )
    for exponent, ratio in sorted(result.quantum_sensitivity.items()):
        table.add_row(f"{exponent:.1f}", ratio)
    return table.render()


__all__ = [
    "BoostAblation",
    "LockHandoffAblation",
    "ReuseAblation",
    "run_boost_ablation",
    "run_lock_handoff_ablation",
    "run_reuse_ablation",
    "render_boost_ablation",
    "render_lock_handoff_ablation",
    "render_reuse_ablation",
]
