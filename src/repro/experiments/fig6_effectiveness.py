"""Fig. 6 + Table 5: AQL_Sched effectiveness.

Left: the five single-socket colocation scenarios (Table 4) under
native Xen vs AQL_Sched, per-application normalised performance and
the clusters AQL formed (Table 5).

Right: the multi-socket Fig. 3 population on the 4-socket machine;
besides the per-type aggregate we report the per-unit spread so the
paper's C90-without-disturbers vs C90-with-disturbers vs C30 ordering
of LLCF performance is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines import AqlPolicy, XenCredit
from repro.experiments.runner import (
    ScenarioRun,
    _placement_key,
    run_scenario,
)
from repro.experiments.scenarios import FIG3_POPULATION, SCENARIOS, Scenario
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner


@dataclass
class ScenarioComparison:
    scenario: str
    #: placement -> normalised perf of AQL vs Xen (lower = AQL better)
    normalized: dict[str, float] = field(default_factory=dict)
    #: per-unit normalised values (for the multi-socket spread)
    per_unit: dict[str, float] = field(default_factory=dict)
    aql_pools: list[tuple[str, int, int, int]] = field(default_factory=list)
    detected_types: dict[int, str] = field(default_factory=dict)


@dataclass
class Fig6Result:
    single_socket: dict[str, ScenarioComparison] = field(default_factory=dict)
    multi_socket: Optional[ScenarioComparison] = None


def _comparison_from_runs(
    scenario: Scenario, xen: ScenarioRun, aql: ScenarioRun
) -> ScenarioComparison:
    comparison = ScenarioComparison(scenario=scenario.name)
    for key, xen_value in xen.by_placement.items():
        comparison.normalized[key] = aql.by_placement[key] / xen_value
    for name, xen_result in xen.results.items():
        comparison.per_unit[name] = (
            aql.results[name].value / xen_result.value
        )
    comparison.aql_pools = aql.pool_layout
    comparison.detected_types = {
        vid: t.value for vid, t in aql.detected_types.items()
    }
    return comparison


def _scenario_cells(scenarios, warmup_ns, measure_ns, seed):
    """Xen + AQL cells for each scenario, interleaved per scenario."""
    from repro.exec import Cell

    cells = []
    for scenario in scenarios:
        for policy in (XenCredit(), AqlPolicy()):
            cells.append(Cell(
                run_scenario,
                dict(
                    scenario=scenario, policy=policy, warmup_ns=warmup_ns,
                    measure_ns=measure_ns, seed=seed,
                ),
                label=f"fig6:{scenario.name}:{policy.name}",
            ))
    return cells


def _compare_all(
    scenarios: list[Scenario],
    warmup_ns: int,
    measure_ns: int,
    seed: int,
    runner: Optional["SweepRunner"],
) -> dict[str, ScenarioComparison]:
    from repro.exec import SweepRunner

    runner = runner or SweepRunner()
    runs = runner.run(_scenario_cells(scenarios, warmup_ns, measure_ns, seed))
    return {
        scenario.name: _comparison_from_runs(
            scenario, runs[2 * i], runs[2 * i + 1]
        )
        for i, scenario in enumerate(scenarios)
    }


def compare_scenario(
    scenario: Scenario,
    warmup_ns: int = 2 * SEC,
    measure_ns: int = 4 * SEC,
    seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> ScenarioComparison:
    return _compare_all(
        [scenario], warmup_ns, measure_ns, seed, runner
    )[scenario.name]


def run_fig6_single(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> dict[str, ScenarioComparison]:
    scenarios = [SCENARIOS[name] for name in ("S1", "S2", "S3", "S4", "S5")]
    return _compare_all(scenarios, warmup_ns, measure_ns, seed, runner)


def run_fig6_multi(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> ScenarioComparison:
    return compare_scenario(
        FIG3_POPULATION, warmup_ns=warmup_ns, measure_ns=measure_ns,
        seed=seed, runner=runner,
    )


def run_fig6(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> Fig6Result:
    # one sweep over all 12 runs (5 single-socket + the multi-socket
    # population, each under Xen and AQL) so a parallel runner can
    # overlap everything
    from repro.exec import SweepRunner

    runner = runner or SweepRunner()
    scenarios = [
        SCENARIOS[name] for name in ("S1", "S2", "S3", "S4", "S5")
    ] + [FIG3_POPULATION]
    comparisons = _compare_all(scenarios, warmup_ns, measure_ns, seed, runner)
    multi = comparisons.pop(FIG3_POPULATION.name)
    return Fig6Result(single_socket=comparisons, multi_socket=multi)


def render_fig6(result: Fig6Result) -> str:
    sections = []
    table = ResultTable(
        "Fig. 6 (left) — AQL_Sched vs native Xen, scenarios S1-S5"
        " (normalised, < 1 means AQL wins)",
        ["scenario", "application", "normalised"],
    )
    for name, comparison in result.single_socket.items():
        for key, value in comparison.normalized.items():
            table.add_row(name, key, value)
    sections.append(table.render())

    pools = ResultTable(
        "Table 5 — clusters AQL formed per scenario",
        ["scenario", "cluster", "quantum", "pCPUs", "vCPUs"],
    )
    for name, comparison in result.single_socket.items():
        for pool_name, quantum_ns, npcpus, nvcpus in comparison.aql_pools:
            pools.add_row(
                name, pool_name, f"{quantum_ns // MS}ms", npcpus, nvcpus
            )
    sections.append(pools.render())

    if result.multi_socket is not None:
        multi = ResultTable(
            "Fig. 6 (right) — multi-socket population (per-type aggregate"
            " and per-unit min/max)",
            ["type", "normalised", "best unit", "worst unit"],
        )
        grouped: dict[str, list[float]] = {}
        for unit, value in result.multi_socket.per_unit.items():
            grouped.setdefault(_placement_key(unit), []).append(value)
        for key, values in grouped.items():
            multi.add_row(
                key,
                sum(values) / len(values),
                min(values),
                max(values),
            )
        sections.append(multi.render())
    return "\n\n".join(sections)


__all__ = [
    "ScenarioComparison",
    "Fig6Result",
    "compare_scenario",
    "run_fig6",
    "run_fig6_single",
    "run_fig6_multi",
    "render_fig6",
]
