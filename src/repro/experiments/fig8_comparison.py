"""Fig. 8: AQL_Sched vs vTurbo, vSlicer and Microsliced on scenario S5.

All values normalised over native Xen.  The paper's reading: each
comparator helps only its niche (vTurbo/vSlicer the IO VMs, Microsliced
IO + spin at the cost of LLCF), while AQL_Sched matches the best
comparator on every application type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AqlPolicy, Microsliced, VSlicer, VTurbo, XenCredit
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC


@dataclass
class Fig8Result:
    #: policy -> placement -> normalised perf vs Xen
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)


def run_fig8(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1
) -> Fig8Result:
    scenario = SCENARIOS["S5"]
    xen = run_scenario(
        scenario, XenCredit(), warmup_ns=warmup_ns, measure_ns=measure_ns,
        seed=seed,
    )
    result = Fig8Result()
    for policy in (VTurbo(), Microsliced(), VSlicer(), AqlPolicy()):
        run = run_scenario(
            scenario, policy, warmup_ns=warmup_ns, measure_ns=measure_ns,
            seed=seed,
        )
        result.normalized[policy.name] = {
            key: run.by_placement[key] / xen.by_placement[key]
            for key in xen.by_placement
        }
    return result


def render_fig8(result: Fig8Result) -> str:
    policies = list(result.normalized)
    placements = sorted(
        {key for values in result.normalized.values() for key in values}
    )
    table = ResultTable(
        "Fig. 8 — comparison with vTurbo / Microsliced / vSlicer on S5"
        " (normalised over Xen, lower is better)",
        ["application"] + policies,
    )
    for key in placements:
        table.add_row(
            key, *(result.normalized[p].get(key, float("nan")) for p in policies)
        )
    return table.render()


__all__ = ["Fig8Result", "run_fig8", "render_fig8"]
