"""Fig. 8: AQL_Sched vs vTurbo, vSlicer and Microsliced on scenario S5.

All values normalised over native Xen.  The paper's reading: each
comparator helps only its niche (vTurbo/vSlicer the IO VMs, Microsliced
IO + spin at the cost of LLCF), while AQL_Sched matches the best
comparator on every application type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines import AqlPolicy, Microsliced, VSlicer, VTurbo, XenCredit
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner


@dataclass
class Fig8Result:
    #: policy -> placement -> normalised perf vs Xen
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)


def run_fig8(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> Fig8Result:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    scenario = SCENARIOS["S5"]
    policies = [XenCredit(), VTurbo(), Microsliced(), VSlicer(), AqlPolicy()]
    runs = runner.run([
        Cell(
            run_scenario,
            dict(
                scenario=scenario, policy=policy, warmup_ns=warmup_ns,
                measure_ns=measure_ns, seed=seed,
            ),
            label=f"fig8:{policy.name}",
        )
        for policy in policies
    ])
    xen, comparator_runs = runs[0], runs[1:]
    result = Fig8Result()
    for policy, run in zip(policies[1:], comparator_runs):
        result.normalized[policy.name] = {
            key: run.by_placement[key] / xen.by_placement[key]
            for key in xen.by_placement
        }
    return result


def render_fig8(result: Fig8Result) -> str:
    policies = list(result.normalized)
    placements = sorted(
        {key for values in result.normalized.values() for key in values}
    )
    table = ResultTable(
        "Fig. 8 — comparison with vTurbo / Microsliced / vSlicer on S5"
        " (normalised over Xen, lower is better)",
        ["application"] + policies,
    )
    for key in placements:
        table.add_row(
            key, *(result.normalized[p].get(key, float("nan")) for p in policies)
        )
    return table.render()


__all__ = ["Fig8Result", "run_fig8", "render_fig8"]
