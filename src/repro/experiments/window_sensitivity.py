"""vTRS window-size sensitivity (§3.3.1).

The paper: "a small value of n (e.g. 1) allows taking quickly into
account sporadic vCPU type variations.  However ... frequent type
variations imply frequent vCPU migrations between pCPUs, which is
known to be negative for the performance of applications.  We have
experimentally seen that setting n to 4 is acceptable."

This experiment re-runs scenario S5 under AQL with ``n`` in
{1, 2, 4, 8} and reports (a) scheduler churn — pool reconfigurations
and vCPU migrations — and (b) per-class performance normalised over
native Xen.  The expectation: churn decreases with n; n = 4 performs
at least as well as n = 1 while migrating far less.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AqlPolicy, XenCredit
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC

WINDOWS = (1, 2, 4, 8)


@dataclass
class WindowSensitivityResult:
    #: n -> placement -> normalised perf vs Xen
    normalized: dict[int, dict[str, float]] = field(default_factory=dict)
    #: n -> pool reconfigurations applied
    reconfigurations: dict[int, int] = field(default_factory=dict)
    #: n -> total vCPU migrations
    migrations: dict[int, int] = field(default_factory=dict)

    def mean_normalized(self, n: int) -> float:
        values = self.normalized[n]
        return sum(values.values()) / len(values)


def _run_once(policy, warmup_ns, measure_ns, seed):
    """S5 plus one phase-shifting VM (the type-flapping stressor)."""
    from repro.experiments.scenarios import build_scenario
    from repro.workloads.phased import BehaviourPhase, PhasedWorkload

    built = build_scenario(SCENARIOS["S5"], seed=seed)
    machine = built.machine
    pool = built.ctx.pool
    assert pool is not None
    shifter_vm = machine.new_vm("shifter", 1)
    machine.default_pool.remove_vcpu(shifter_vm.vcpus[0])
    pool.add_vcpu(shifter_vm.vcpus[0])
    shifter = PhasedWorkload(
        "shifter",
        phases=[
            BehaviourPhase("llco", 400_000_000),
            BehaviourPhase("lolcf", 400_000_000),
            BehaviourPhase("io", 400_000_000),
        ],
    )
    shifter.install(machine, shifter_vm)
    policy.setup(machine, built.ctx)
    machine.run(warmup_ns)
    for workload in built.workloads.values():
        workload.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    by_placement: dict[str, float] = {}
    groups: dict[str, list[float]] = {}
    from repro.experiments.runner import _placement_key

    for name, workload in built.workloads.items():
        groups.setdefault(_placement_key(name), []).append(
            workload.result().value
        )
    for key, values in groups.items():
        by_placement[key] = sum(values) / len(values)
    return built, by_placement


def run_window_sensitivity(
    windows: tuple[int, ...] = WINDOWS,
    warmup_ns: int = 2 * SEC,
    measure_ns: int = 4 * SEC,
    seed: int = 1,
) -> WindowSensitivityResult:
    _, xen = _run_once(XenCredit(), warmup_ns, measure_ns, seed)
    result = WindowSensitivityResult()
    for n in windows:
        policy = AqlPolicy(window=n)
        built, by_placement = _run_once(policy, warmup_ns, measure_ns, seed)
        result.normalized[n] = {
            key: by_placement[key] / xen[key] for key in xen
        }
        assert policy.manager is not None
        result.reconfigurations[n] = policy.manager.reconfigurations
        result.migrations[n] = sum(
            vcpu.migrations for vcpu in built.machine.all_vcpus
        )
    return result


def render_window_sensitivity(result: WindowSensitivityResult) -> str:
    placements = sorted(next(iter(result.normalized.values())))
    table = ResultTable(
        "vTRS window sensitivity on S5 (normalised over Xen; churn in"
        " reconfigurations/migrations)",
        ["n"] + placements + ["mean", "reconfigs", "migrations"],
    )
    for n in sorted(result.normalized):
        table.add_row(
            str(n),
            *(result.normalized[n][key] for key in placements),
            result.mean_normalized(n),
            result.reconfigurations[n],
            result.migrations.get(n, 0),
        )
    return table.render()


__all__ = [
    "WINDOWS",
    "WindowSensitivityResult",
    "run_window_sensitivity",
    "render_window_sensitivity",
]
