"""vTRS window-size sensitivity (§3.3.1).

The paper: "a small value of n (e.g. 1) allows taking quickly into
account sporadic vCPU type variations.  However ... frequent type
variations imply frequent vCPU migrations between pCPUs, which is
known to be negative for the performance of applications.  We have
experimentally seen that setting n to 4 is acceptable."

This experiment re-runs scenario S5 under AQL with ``n`` in
{1, 2, 4, 8} and reports (a) scheduler churn — pool reconfigurations
and vCPU migrations — and (b) per-class performance normalised over
native Xen.  The expectation: churn decreases with n; n = 4 performs
at least as well as n = 1 while migrating far less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines import AqlPolicy, Policy, XenCredit
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

WINDOWS = (1, 2, 4, 8)


@dataclass
class WindowSensitivityResult:
    #: n -> placement -> normalised perf vs Xen
    normalized: dict[int, dict[str, float]] = field(default_factory=dict)
    #: n -> pool reconfigurations applied
    reconfigurations: dict[int, int] = field(default_factory=dict)
    #: n -> total vCPU migrations
    migrations: dict[int, int] = field(default_factory=dict)

    def mean_normalized(self, n: int) -> float:
        values = self.normalized[n]
        return sum(values.values()) / len(values)


def _window_cell(
    policy: Policy, warmup_ns: int, measure_ns: int, seed: int
) -> dict:
    """S5 plus one phase-shifting VM (the type-flapping stressor).

    Returns plain data (perf + churn counters) so the cell can cross a
    process boundary and live in the result cache.
    """
    from repro.experiments.runner import _placement_key
    from repro.experiments.scenarios import build_scenario
    from repro.workloads.phased import BehaviourPhase, PhasedWorkload

    built = build_scenario(SCENARIOS["S5"], seed=seed)
    machine = built.machine
    pool = built.ctx.pool
    assert pool is not None
    shifter_vm = machine.new_vm("shifter", 1)
    machine.default_pool.remove_vcpu(shifter_vm.vcpus[0])
    pool.add_vcpu(shifter_vm.vcpus[0])
    shifter = PhasedWorkload(
        "shifter",
        phases=[
            BehaviourPhase("llco", 400_000_000),
            BehaviourPhase("lolcf", 400_000_000),
            BehaviourPhase("io", 400_000_000),
        ],
    )
    shifter.install(machine, shifter_vm)
    policy.setup(machine, built.ctx)
    machine.run(warmup_ns)
    for workload in built.workloads.values():
        workload.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    groups: dict[str, list[float]] = {}
    for name, workload in built.workloads.items():
        groups.setdefault(_placement_key(name), []).append(
            workload.result().value
        )
    manager = getattr(policy, "manager", None)
    return {
        "by_placement": {
            key: sum(values) / len(values) for key, values in groups.items()
        },
        "reconfigurations": (
            manager.reconfigurations if manager is not None else 0
        ),
        "migrations": sum(
            vcpu.migrations for vcpu in machine.all_vcpus
        ),
    }


def run_window_sensitivity(
    windows: tuple[int, ...] = WINDOWS,
    warmup_ns: int = 2 * SEC,
    measure_ns: int = 4 * SEC,
    seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> WindowSensitivityResult:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    policies: list[Policy] = [XenCredit()]
    policies += [AqlPolicy(window=n) for n in windows]
    labels = ["window:xen"] + [f"window:n={n}" for n in windows]
    cells = [
        Cell(
            _window_cell,
            dict(
                policy=policy, warmup_ns=warmup_ns, measure_ns=measure_ns,
                seed=seed,
            ),
            label=label,
        )
        for policy, label in zip(policies, labels)
    ]
    outcomes = runner.run(cells)
    xen = outcomes[0]["by_placement"]
    result = WindowSensitivityResult()
    for n, outcome in zip(windows, outcomes[1:]):
        by_placement = outcome["by_placement"]
        result.normalized[n] = {
            key: by_placement[key] / xen[key] for key in xen
        }
        result.reconfigurations[n] = outcome["reconfigurations"]
        result.migrations[n] = outcome["migrations"]
    return result


def render_window_sensitivity(result: WindowSensitivityResult) -> str:
    placements = sorted(next(iter(result.normalized.values())))
    table = ResultTable(
        "vTRS window sensitivity on S5 (normalised over Xen; churn in"
        " reconfigurations/migrations)",
        ["n"] + placements + ["mean", "reconfigs", "migrations"],
    )
    for n in sorted(result.normalized):
        table.add_row(
            str(n),
            *(result.normalized[n][key] for key in placements),
            result.mean_normalized(n),
            result.reconfigurations[n],
            result.migrations.get(n, 0),
        )
    return table.render()


__all__ = [
    "WINDOWS",
    "WindowSensitivityResult",
    "run_window_sensitivity",
    "render_window_sensitivity",
]
