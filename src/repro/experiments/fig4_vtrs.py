"""Fig. 4: the online vTRS in action.

Five representative applications (one per type: SPECweb2009 -> IOInt,
astar -> LLCF, libquantum -> LLCO, gobmk -> LoLCF, fluidanimate ->
ConSpin) run consolidated at 4 vCPUs/pCPU while the vTRS records 50
monitoring periods of cursor values.  The paper's claim: each
application's own cursor sits above the others most of the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable
from repro.sim.units import MS
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.profiles import lolcf_profile
from repro.workloads.suites import APP_CATALOG, make_app

#: the paper's five representative programs
REPRESENTATIVES = (
    "specweb2009",
    "astar",
    "libquantum",
    "gobmk",
    "fluidanimate",
)


@dataclass
class Fig4Result:
    #: app -> list of (time, cursors dict) samples
    histories: dict[str, list] = field(default_factory=dict)
    #: app -> final detected type
    detected: dict[str, Optional[VCpuType]] = field(default_factory=dict)
    #: app -> fraction of decided periods where the expected cursor won
    dominance: dict[str, float] = field(default_factory=dict)


def _run_one(name: str, spec: MachineSpec, periods: int, seed: int):
    app_spec = APP_CATALOG[name]
    machine = Machine(spec, seed=seed)
    nv = 4 if app_spec.expected_type == VCpuType.CONSPIN else 1
    pcpus = machine.topology.pcpus[:max(1, nv)]
    pool = machine.create_pool("fig4", pcpus, 30 * MS)
    vm = machine.new_vm(name, nv, weight=256 * nv)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    make_app(name, spec, vcpus=nv).install(machine, vm)
    for i in range(4 * len(pcpus) - nv):
        dvm = machine.new_vm(f"d{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        CpuBurnWorkload(f"d{i}", lolcf_profile(spec)).install(machine, dvm)
    vtrs = VTRS(machine, record_history=True).attach()
    machine.run(periods * vtrs.period_ns + 10 * MS)
    return machine, vtrs, vm


def run_fig4(
    spec: Optional[MachineSpec] = None, periods: int = 50, seed: int = 5
) -> Fig4Result:
    spec = spec or i7_3770()
    result = Fig4Result()
    for name in REPRESENTATIVES:
        expected = APP_CATALOG[name].expected_type
        machine, vtrs, vm = _run_one(name, spec, periods, seed)
        vcpu = vm.vcpus[0]
        history = vtrs.history_of(vcpu)
        result.histories[name] = history
        result.detected[name] = vtrs.type_of(vcpu)
        if history:
            wins = sum(
                1
                for _, cursors in history
                if max(cursors, key=lambda t: cursors[t]) == expected
                or cursors[expected] >= max(cursors.values())
            )
            result.dominance[name] = wins / len(history)
        else:
            result.dominance[name] = 0.0
    return result


def render_fig4(result: Fig4Result) -> str:
    table = ResultTable(
        "Fig. 4 — online vTRS over 50 monitoring periods",
        ["application", "expected", "detected", "cursor dominance"],
    )
    for name in REPRESENTATIVES:
        expected = APP_CATALOG[name].expected_type
        detected = result.detected.get(name)
        table.add_row(
            name,
            expected.value,
            detected.value if detected else "-",
            f"{result.dominance.get(name, 0.0) * 100:.0f}%",
        )
    return table.render()


__all__ = ["Fig4Result", "run_fig4", "render_fig4", "REPRESENTATIVES"]
