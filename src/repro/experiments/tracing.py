"""Representative traced runs: ``--trace-out`` for every CLI family.

``python -m repro.experiments <name> --trace-out trace.json`` runs one
*extra*, representative cell of that experiment family with both
recording layers enabled — the raw scheduling trace (pCPU occupancy
tracks) and the telemetry span layer (quantum slices, vTRS periods,
AQL decisions) — and writes a combined ``chrome://tracing`` document.
The traced run is separate from the experiment's own sweep, so stdout
stays byte-identical with or without the flag, and cached sweep
results keep replaying.

Most families reduce to one scenario x policy run that shows what the
family studies (S2 under AQL for the vTRS figures, S1 under fixed-Xen
for calibration, the 48-vCPU Fig. 3 population for the multi-socket
figures); churn delegates to its own story-driven exporter.  Traced
runs use short windows — a trace of a few hundred milliseconds already
spans several AQL decide periods and is big enough to inspect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import AqlPolicy, XenCredit
from repro.baselines.base import Policy
from repro.experiments.scenarios import (
    FIG3_POPULATION,
    SCENARIOS,
    Scenario,
    build_scenario,
)
from repro.sim.units import MS


def export_scenario_trace(
    path: str,
    scenario: Scenario,
    policy: Policy,
    warmup_ns: int,
    measure_ns: int,
    seed: int = 0,
) -> int:
    """Run one scenario with both recorders on; write the chrome trace."""
    from repro.metrics.chrome_trace import CHROME_KINDS, write_chrome_trace
    from repro.sim.tracing import TraceRecorder
    from repro.telemetry import Telemetry

    trace = TraceRecorder(enabled=True, kinds=set(CHROME_KINDS))
    telemetry = Telemetry(enabled=True)
    built = build_scenario(
        scenario, seed=seed, telemetry=telemetry, trace=trace
    )
    policy.setup(built.machine, built.ctx)
    built.machine.run(warmup_ns)
    for workload in built.workloads.values():
        workload.begin_measurement()
    built.machine.run(measure_ns)
    built.machine.sync()
    telemetry.tracer.close_all(built.machine.sim.now)
    return write_chrome_trace(
        path, trace, end_time=built.machine.sim.now,
        telemetry=telemetry.tracer,
    )


@dataclass(frozen=True)
class TracedRun:
    """The representative traced run of one experiment family."""

    scenario: str  # SCENARIOS key, or "fig3" for the multi-socket pop.
    policy: str  # "xen" | "aql"
    detail: str  # one line: why this run represents the family

    def export(self, path: str, fast: bool = False, seed: int = 0) -> int:
        scenario = (
            FIG3_POPULATION if self.scenario == "fig3"
            else SCENARIOS[self.scenario]
        )
        policy = XenCredit() if self.policy == "xen" else AqlPolicy()
        warmup = 200 * MS if fast else 400 * MS
        measure = 400 * MS if fast else 800 * MS
        return export_scenario_trace(
            path, scenario, policy, warmup, measure, seed=seed
        )


#: family -> its representative traced run ("churn" is story-driven and
#: keeps its own exporter; see :func:`export_experiment_trace`)
TRACED_RUNS: dict[str, TracedRun] = {
    "fig2": TracedRun("S1", "xen",
                      "fixed 30 ms quanta: the calibration baseline"),
    "fig3": TracedRun("fig3", "aql",
                      "the 48-vCPU population AQL clusters per socket"),
    "fig4": TracedRun("S2", "aql",
                      "vTRS re-typing an IO-heavy colocation online"),
    "fig5": TracedRun("S3", "aql",
                      "a CPU/LLC mix under per-cluster quanta"),
    "fig6": TracedRun("S2", "aql",
                      "the scenario whose clusters Table 5 reports"),
    "fig7": TracedRun("S4", "aql",
                      "four app types: quantum customisation visible"),
    "fig8": TracedRun("S5", "aql",
                      "the densest colocation the comparisons use"),
    "table3": TracedRun("S1", "aql",
                        "vTRS recognition over a small mixed population"),
    "overhead": TracedRun("S2", "xen",
                          "the baseline side of the overhead comparison"),
    "ablations": TracedRun("S4", "aql",
                           "BOOST/handoff effects on a 4-type scenario"),
    "sync": TracedRun("S1", "aql",
                      "ConSpin threads under a spin-aware quantum"),
    "window": TracedRun("S3", "aql",
                        "the population the window sweep re-types"),
    "random": TracedRun("S5", "aql",
                        "a dense mix like the random colocations"),
}


def export_experiment_trace(
    family: str, path: str, fast: bool = False, seed: int = 0
) -> int:
    """Write ``family``'s representative chrome trace; returns #events."""
    if family == "churn":
        from repro.experiments.churn import export_churn_trace

        return export_churn_trace(path, fast=fast, seed=seed)
    try:
        traced = TRACED_RUNS[family]
    except KeyError:
        raise ValueError(
            f"no traced run registered for experiment {family!r}"
        ) from None
    return traced.export(path, fast=fast, seed=seed)


__all__ = [
    "TRACED_RUNS",
    "TracedRun",
    "export_experiment_trace",
    "export_scenario_trace",
]
