"""Fig. 5: calibration robustness over the full benchmark set.

Every application of the evaluation (8 SPEC CPU2006 programs, the 12
PARSEC programs, SPECweb2009 and SPECmail2009) runs consolidated at
4 vCPUs/pCPU under each quantum length; values are normalised over the
default 30 ms run.  The paper's claim: each application reaches its
best performance at the quantum calibrated for its vTRS type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

from repro.core.calibration import PAPER_BEST_QUANTA
from repro.core.types import VCpuType
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable, format_quantum
from repro.sim.units import MS, SEC
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.profiles import llco_profile, lolcf_profile
from repro.workloads.suites import APP_CATALOG, make_app

#: the programs shown in Fig. 5 (paper's x-axis)
FIG5_APPS: tuple[str, ...] = (
    "hmmer",
    "sjeng",
    "bzip2",
    "h264ref",
    "mcf",
    "omnetpp",
    "astar",
    "libquantum",
    "bodytrack",
    "blackscholes",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "vips",
    "x264",
    "specweb2009",
    "specmail2009",
)

QUANTA_MS = (1, 10, 30, 60, 90)


@dataclass
class Fig5Result:
    #: (app, quantum_ms) -> normalised perf (30 ms = 1.0)
    normalized: dict[tuple[str, int], float] = field(default_factory=dict)
    #: app -> quantum_ms with the best (lowest) value
    best: dict[str, int] = field(default_factory=dict)

    def matches_calibration(self, app: str, tolerance: float = 0.05) -> bool:
        """Did the app's best quantum match its type's calibrated one?

        Quantum-agnostic types match by definition; for the others the
        best measured value must be within ``tolerance`` of the value
        at the calibrated quantum (ties across a flat region count as
        matching).
        """
        expected = PAPER_BEST_QUANTA[APP_CATALOG[app].expected_type]
        if expected is None:
            return True
        expected_ms = expected // MS
        at_expected = self.normalized[(app, expected_ms)]
        best_value = self.normalized[(app, self.best[app])]
        return at_expected <= best_value * (1.0 + tolerance)


def _measure_app(
    app: str, quantum_ms: int, spec: MachineSpec,
    warmup_ns: int, measure_ns: int, seed: int,
) -> float:
    app_spec = APP_CATALOG[app]
    machine = Machine(spec, seed=seed, default_quantum_ns=quantum_ms * MS)
    nv = 4 if app_spec.expected_type == VCpuType.CONSPIN else 1
    # the paper's consolidation: 4 vCPUs share each pCPU, so a 4-thread
    # ConSpin VM runs over two pCPUs (like the §3.4 calibration cell)
    pcpu_count = 2 if nv == 4 else 1
    pcpus = machine.topology.pcpus[:pcpu_count]
    pool = machine.create_pool("fig5", pcpus, quantum_ms * MS)
    vm = machine.new_vm(app, nv, weight=256 * nv)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    workload = make_app(app, spec, vcpus=nv)
    workload.install(machine, vm)
    # fill to 4 vCPUs per pCPU with a half-trashing, half-quiet mix
    need = 4 * len(pcpus) - nv
    for i in range(need):
        dvm = machine.new_vm(f"d{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        profile = llco_profile(spec) if i % 2 == 0 else lolcf_profile(spec)
        CpuBurnWorkload(f"d{i}", profile).install(machine, dvm)
    machine.run(warmup_ns)
    workload.begin_measurement()
    machine.run(measure_ns)
    machine.sync()
    return workload.result().value


def run_fig5(
    spec: Optional[MachineSpec] = None,
    apps: Sequence[str] = FIG5_APPS,
    warmup_ns: int = 1 * SEC,
    measure_ns: int = 3 * SEC,
    seed: int = 7,
    runner: Optional["SweepRunner"] = None,
) -> Fig5Result:
    from repro.exec import Cell, SweepRunner

    spec = spec or i7_3770()
    runner = runner or SweepRunner()
    grid = [(app, quantum_ms) for app in apps for quantum_ms in QUANTA_MS]
    values = runner.run([
        Cell(
            _measure_app,
            dict(
                app=app, quantum_ms=quantum_ms, spec=spec,
                warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed,
            ),
            label=f"fig5:{app}:{quantum_ms}ms",
        )
        for app, quantum_ms in grid
    ])
    raw_by_app: dict[str, dict[int, float]] = {}
    for (app, quantum_ms), value in zip(grid, values):
        raw_by_app.setdefault(app, {})[quantum_ms] = value
    result = Fig5Result()
    for app, raw in raw_by_app.items():
        reference = raw[30]
        for quantum_ms, value in raw.items():
            result.normalized[(app, quantum_ms)] = value / reference
        result.best[app] = min(raw, key=raw.get)
    return result


def render_fig5(result: Fig5Result) -> str:
    table = ResultTable(
        "Fig. 5 — normalised perf per app x quantum (30ms = 1.0);"
        " best should match the type's calibrated quantum",
        ["app", "type", "1ms", "10ms", "30ms", "60ms", "90ms", "best",
         "calibrated", "match"],
    )
    apps = sorted({app for app, _ in result.normalized})
    for app in apps:
        vtype = APP_CATALOG[app].expected_type
        calibrated = PAPER_BEST_QUANTA[vtype]
        table.add_row(
            app,
            vtype.value,
            *(result.normalized[(app, q)] for q in QUANTA_MS),
            f"{result.best[app]}ms",
            format_quantum(calibrated),
            "yes" if result.matches_calibration(app) else "NO",
        )
    return table.render()


__all__ = ["Fig5Result", "run_fig5", "render_fig5", "FIG5_APPS", "QUANTA_MS"]
