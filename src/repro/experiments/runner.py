"""Run a scenario under a policy and collect per-app performance.

The protocol mirrors the paper's evaluation: build the colocation,
apply the scheduling policy, warm up (enough for vTRS to converge and
caches to settle), open the measurement window, and report each
application's metric.  Results are normalised against a run of the
same scenario under native Xen by the per-figure experiment modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.base import Policy
from repro.core.types import VCpuType
from repro.experiments.scenarios import BuiltScenario, Scenario, build_scenario
from repro.sim.units import SEC
from repro.telemetry import Telemetry
from repro.workloads.base import PerfResult


@dataclass
class ScenarioRun:
    """Everything one scenario x policy run produced."""

    scenario: str
    policy: str
    results: dict[str, PerfResult] = field(default_factory=dict)
    #: mean result per placement key (CPU placements span several unit
    #: VMs named "key.N"; this folds them back together)
    by_placement: dict[str, float] = field(default_factory=dict)
    detected_types: dict[int, VCpuType] = field(default_factory=dict)
    pool_layout: list[tuple[str, int, int, int]] = field(default_factory=list)
    #: flat ``qualified-name -> value`` aggregate from the machine's
    #: telemetry (empty unless run with ``telemetry=True``); plain
    #: floats keyed by sorted strings, so it pickles through sweep
    #: workers and the result cache without touching equivalence
    telemetry_summary: dict[str, float] = field(default_factory=dict)
    #: the live machine when run with ``keep_built=True``; never
    #: serialized — a built scenario holds the whole simulator graph
    #: (RNG state, event queue, guest threads), which neither pickles
    #: nor belongs in a result cache
    built: Optional[BuiltScenario] = None

    def placement_value(self, key: str) -> float:
        return self.by_placement[key]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["built"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _placement_key(result_name: str) -> str:
    """bzip2.3 -> bzip2; specweb2009 -> specweb2009."""
    head, _, tail = result_name.rpartition(".")
    if head and tail.isdigit():
        return head
    return result_name


def run_scenario(
    scenario: Scenario,
    policy: Policy,
    warmup_ns: int = 2 * SEC,
    measure_ns: int = 4 * SEC,
    seed: int = 0,
    keep_built: bool = False,
    telemetry: bool = False,
) -> ScenarioRun:
    """Build, configure, warm up, measure.

    With ``telemetry=True`` the machine records counters, spans and the
    vTRS/AQL decision audit; the run's flat aggregate lands in
    ``ScenarioRun.telemetry_summary`` and the full recorder stays
    reachable via ``run.built.machine.telemetry`` when ``keep_built``.
    Telemetry is a pure function of the virtual clock, so enabling it
    never changes results — only records them.
    """
    recorder = Telemetry(enabled=True) if telemetry else None
    built = build_scenario(scenario, seed=seed, telemetry=recorder)
    policy.setup(built.machine, built.ctx)
    built.machine.run(warmup_ns)
    for workload in built.workloads.values():
        workload.begin_measurement()
    built.machine.run(measure_ns)
    built.machine.sync()

    run = ScenarioRun(scenario=scenario.name, policy=policy.name)
    for name, workload in built.workloads.items():
        run.results[name] = workload.result()

    groups: dict[str, list[float]] = {}
    for name, result in run.results.items():
        groups.setdefault(_placement_key(name), []).append(result.value)
    run.by_placement = {
        key: sum(values) / len(values) for key, values in groups.items()
    }

    manager = getattr(policy, "manager", None)
    if manager is not None:
        run.detected_types = dict(manager.last_types)
    run.pool_layout = [
        (pool.name, pool.quantum_ns, len(pool.pcpus), len(pool.vcpus))
        for pool in built.machine.pools
    ]
    if recorder is not None:
        recorder.tracer.close_all(built.machine.sim.now)
        run.telemetry_summary = recorder.summary()
    if keep_built:
        run.built = built
    return run


__all__ = ["ScenarioRun", "run_scenario", "_placement_key"]
