"""Experiment harness: one module per paper table/figure.

* :mod:`repro.experiments.scenarios` — Table 4's colocation scenarios
  S1-S5, the Fig. 3 multi-socket population and generic builders;
* :mod:`repro.experiments.runner` — run a scenario under a policy and
  collect per-app results;
* ``fig2_calibration`` .. ``fig8_comparison``, ``table3_recognition``,
  ``overhead`` — the per-figure experiments, each with a ``run_*``
  function returning structured data and a ``render_*`` helper that
  prints the same rows/series the paper reports;
* ``ablations``, ``sync_primitives``, ``window_sensitivity``,
  ``random_mixes`` — studies beyond the paper isolating the mechanisms
  the reproduction is built on.

Run any of them from the command line::

    python -m repro.experiments list

See DESIGN.md's per-experiment index for the mapping to paper figures.
"""

from repro.experiments.runner import ScenarioRun, run_scenario
from repro.experiments.scenarios import (
    FIG3_POPULATION,
    SCENARIOS,
    AppPlacement,
    Scenario,
)

__all__ = [
    "AppPlacement",
    "Scenario",
    "SCENARIOS",
    "FIG3_POPULATION",
    "ScenarioRun",
    "run_scenario",
]
