"""Generalisation study: AQL_Sched on random colocation mixes.

The paper evaluates five hand-picked scenarios (Table 4).  A scheduler
that only wins on curated mixes would be a weak result, so this
experiment draws random colocations from the application catalog
(respecting the 16-vCPUs-on-4-pCPUs consolidation), runs each under
native Xen and AQL_Sched, and reports per-class and overall normalised
performance.  Expectation: AQL never loses on average, and the
latency/spin classes win wherever they appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

from repro.baselines import AqlPolicy, XenCredit
from repro.core.types import VCpuType
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import AppPlacement, Scenario
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC

#: draw pool: one representative per class, plus alternates
_CLASS_APPS: dict[VCpuType, tuple[str, ...]] = {
    VCpuType.IOINT: ("specweb2009", "specmail2009"),
    VCpuType.CONSPIN: ("facesim", "fluidanimate", "bodytrack"),
    VCpuType.LLCF: ("bzip2", "astar", "omnetpp"),
    VCpuType.LLCO: ("libquantum", "mcf"),
    VCpuType.LOLCF: ("hmmer", "sjeng", "gobmk"),
}


def draw_mix(rng: np.random.Generator, total_vcpus: int = 16) -> Scenario:
    """A random colocation filling ``total_vcpus`` vCPU slots.

    Multi-threaded classes (IO, spin) take 4-vCPU blocks; CPU classes
    take 1-4 single-vCPU VMs per draw.  At most one trashing (LLCO)
    block is allowed per mix — a streaming-dominated socket has no
    cache left to manage (see DESIGN.md on concurrent trashing).
    """
    placements: list[AppPlacement] = []
    remaining = total_vcpus
    llco_drawn = False
    index = 0
    while remaining > 0:
        choices = [t for t in VCpuType if not (t == VCpuType.LLCO and llco_drawn)]
        vtype = choices[int(rng.integers(len(choices)))]
        apps = _CLASS_APPS[vtype]
        app = apps[int(rng.integers(len(apps)))]
        if vtype in (VCpuType.IOINT, VCpuType.CONSPIN):
            size = 4
        else:
            size = int(rng.integers(1, 5))
        size = min(size, remaining)
        if vtype in (VCpuType.IOINT, VCpuType.CONSPIN) and size < 2:
            vtype = VCpuType.LOLCF
            app = _CLASS_APPS[vtype][0]
        if vtype == VCpuType.LLCO:
            llco_drawn = True
        placements.append(AppPlacement(app, size, label=f"{app}#{index}"))
        index += 1
        remaining -= size
    return Scenario("random", tuple(placements), pcpus=4)


@dataclass
class RandomMixResult:
    #: per mix: placement label -> normalised perf (AQL / Xen)
    per_mix: list[dict[str, float]] = field(default_factory=list)
    #: class -> list of normalised values across every mix
    by_class: dict[VCpuType, list[float]] = field(default_factory=dict)

    def class_mean(self, vtype: VCpuType) -> float:
        values = self.by_class.get(vtype, [])
        return sum(values) / len(values) if values else float("nan")

    @property
    def overall_mean(self) -> float:
        values = [v for values in self.by_class.values() for v in values]
        return sum(values) / len(values)


def run_random_mixes(
    mixes: int = 5,
    warmup_ns: int = 2 * SEC,
    measure_ns: int = 3 * SEC,
    seed: int = 17,
    runner: Optional["SweepRunner"] = None,
) -> RandomMixResult:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    # drawing the mixes is cheap and sequential (each draw advances the
    # rng); only the simulations fan out
    rng = np.random.default_rng(seed)
    scenarios = [draw_mix(rng) for _ in range(mixes)]
    cells = []
    for mix_index, scenario in enumerate(scenarios):
        for policy in (XenCredit(), AqlPolicy()):
            cells.append(Cell(
                run_scenario,
                dict(
                    scenario=scenario, policy=policy, warmup_ns=warmup_ns,
                    measure_ns=measure_ns, seed=seed + mix_index,
                ),
                label=f"random:mix{mix_index}:{policy.name}",
            ))
    runs = runner.run(cells)
    result = RandomMixResult()
    for mix_index, scenario in enumerate(scenarios):
        xen, aql = runs[2 * mix_index], runs[2 * mix_index + 1]
        normalized = {
            key: aql.by_placement[key] / xen.by_placement[key]
            for key in xen.by_placement
        }
        result.per_mix.append(normalized)
        for placement in scenario.placements:
            value = normalized[placement.key]
            result.by_class.setdefault(placement.expected_type, []).append(
                value
            )
    return result


def render_random_mixes(result: RandomMixResult) -> str:
    table = ResultTable(
        f"Random colocation mixes ({len(result.per_mix)} draws) — AQL vs"
        " Xen per class (lower is better)",
        ["class", "mean", "min", "max", "samples"],
    )
    for vtype in VCpuType:
        values = result.by_class.get(vtype, [])
        if not values:
            continue
        table.add_row(
            vtype.value,
            sum(values) / len(values),
            min(values),
            max(values),
            len(values),
        )
    footer = f"\noverall mean: {result.overall_mean:.3f}"
    return table.render() + footer


__all__ = [
    "RandomMixResult",
    "draw_mix",
    "run_random_mixes",
    "render_random_mixes",
]
