"""Colocation scenarios: Table 4 (S1-S5) and the Fig. 3 population.

A :class:`Scenario` lists application placements; building it creates
one VM per placement (multi-vCPU for ConSpin/IO apps, 1-vCPU VMs per
unit for CPU apps — consolidated clouds colocate many small VMs), all
confined to a machine sized exactly like the paper's experiment:
16 vCPUs on 4 pCPUs for S1-S5, 48 vCPUs on three 4-core sockets (one
socket reserved for dom0) for the multi-socket case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.base import PolicyContext
from repro.core.types import VCpuType
from repro.hardware.specs import MachineSpec
from repro.hypervisor.hostspec import HostSpec
from repro.hypervisor.machine import Machine
from repro.sim.tracing import TraceRecorder
from repro.telemetry import Telemetry
from repro.workloads.base import Workload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llco_profile
from repro.workloads.spin import SpinWorkload
from repro.workloads.suites import APP_CATALOG, make_app


@dataclass(frozen=True)
class AppPlacement:
    """One application in a scenario."""

    app: str  # catalog name
    vcpus: int  # how many vCPUs this app occupies
    label: str = ""  # display key (defaults to the app name)
    #: IOInt+ flavour: give the IO app a trashing CGI working set so its
    #: LLCO cursor exceeds 50% (the multi-socket experiment's disturbers)
    trashing_io: bool = False
    #: ConSpin micro-benchmark flavour (no global barrier): the
    #: multi-socket experiment uses per-vCPU micro-benchmarks, so the
    #: spin workers share a lock but not a barrier and tolerate being
    #: split across clusters
    loose_spin: bool = False

    @property
    def key(self) -> str:
        return self.label or self.app

    @property
    def expected_type(self) -> VCpuType:
        return APP_CATALOG[self.app].expected_type


@dataclass(frozen=True)
class Scenario:
    """A named colocation experiment."""

    name: str
    placements: tuple[AppPlacement, ...]
    pcpus: int  # usable pCPUs (excludes any dom0 reservation)
    sockets: int = 1
    reserved_sockets: int = 0  # leading sockets kept for dom0

    @property
    def total_vcpus(self) -> int:
        return sum(p.vcpus for p in self.placements)

    def host_spec(self) -> HostSpec:
        """The frozen machine recipe with exactly this scenario's cores."""
        if self.sockets == 1:
            return HostSpec(model="i7_3770", pcpus=self.pcpus, sockets=1)
        total_sockets = self.sockets + self.reserved_sockets
        per_socket = self.pcpus // self.sockets
        return HostSpec(
            model="xeon_e5_4603",
            pcpus=per_socket * total_sockets,
            sockets=total_sockets,
        )

    def machine_spec(self) -> MachineSpec:
        """A spec with exactly the scenario's core count per socket."""
        return self.host_spec().machine_spec()


#: Table 4: the five single-socket scenarios (16 vCPUs on 4 pCPUs).
SCENARIOS: dict[str, Scenario] = {
    "S1": Scenario(
        "S1",
        (
            AppPlacement("fluidanimate", 5),
            AppPlacement("bzip2", 5),
            AppPlacement("hmmer", 6),
        ),
        pcpus=4,
    ),
    "S2": Scenario(
        "S2",
        (
            AppPlacement("specweb2009", 5),
            AppPlacement("bzip2", 5),
            AppPlacement("libquantum", 6),
        ),
        pcpus=4,
    ),
    "S3": Scenario(
        "S3",
        (
            AppPlacement("bzip2", 5),
            AppPlacement("libquantum", 5),
            AppPlacement("hmmer", 6),
        ),
        pcpus=4,
    ),
    "S4": Scenario(
        "S4",
        (
            AppPlacement("specweb2009", 4),
            AppPlacement("facesim", 4),
            AppPlacement("bzip2", 4),
            AppPlacement("libquantum", 4),
        ),
        pcpus=4,
    ),
    "S5": Scenario(
        "S5",
        (
            AppPlacement("specweb2009", 4),
            AppPlacement("facesim", 4),
            AppPlacement("bzip2", 4),
            AppPlacement("libquantum", 2),
            AppPlacement("hmmer", 2),
        ),
        pcpus=4,
    ),
}

#: Fig. 3 / Fig. 6-right: 48 vCPUs (12 LLCO, 12 IOInt+, 17 LLCF,
#: 7 ConSpin-) on a 4-socket machine with one socket reserved for dom0.
#: LLCO VMs are created first so the trashing list starts with them,
#: reproducing the paper's socket layout exactly.
FIG3_POPULATION = Scenario(
    "fig3",
    (
        AppPlacement("libquantum", 12, label="LLCO"),
        AppPlacement("specweb2009", 12, label="IOInt+", trashing_io=True),
        AppPlacement("bzip2", 17, label="LLCF"),
        AppPlacement("facesim", 7, label="ConSpin-", loose_spin=True),
    ),
    pcpus=12,
    sockets=3,
    reserved_sockets=1,
)


@dataclass
class BuiltScenario:
    """A scenario instantiated on a machine, ready to run."""

    scenario: Scenario
    machine: Machine
    workloads: dict[str, Workload] = field(default_factory=dict)
    ctx: PolicyContext = field(default_factory=PolicyContext)


def _make_workload(
    placement: AppPlacement, spec: MachineSpec, vcpus: int
) -> Workload:
    if placement.trashing_io:
        app = IoWorkload.heterogeneous(placement.key, spec, vcpus=vcpus)
        # an overflowing working set (the LLCO cursor dominates) at a
        # moderate reference rate: an IO app with trashing memory
        # activity, not a full-rate streamer
        app.cgi_profile = llco_profile(spec, ref_rate=0.008)
        return app
    if placement.loose_spin:
        return SpinWorkload(
            placement.key,
            threads=vcpus,
            work_instructions=500_000.0,
            cs_instructions=30_000.0,
            use_barrier=False,
        )
    return make_app(placement.app, spec, vcpus=vcpus)


def build_scenario(
    scenario: Scenario,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    telemetry: Optional[Telemetry] = None,
    trace: Optional[TraceRecorder] = None,
) -> BuiltScenario:
    """Instantiate VMs + workloads for a scenario.

    ConSpin and IO apps get one VM spanning their vCPUs (threads share
    memory / a service spans workers); CPU-burn apps get one 1-vCPU VM
    per unit, mirroring consolidated single-purpose cloud VMs.
    ``telemetry``/``trace`` are handed to the machine unchanged (both
    default to disabled recorders).
    """
    if spec is None:
        machine = scenario.host_spec().build(
            seed=seed, telemetry=telemetry, trace=trace
        )
    else:
        machine = Machine(spec, seed=seed, telemetry=telemetry, trace=trace)
    spec = machine.spec
    built = BuiltScenario(scenario=scenario, machine=machine)

    usable = [
        pcpu
        for socket in machine.topology.sockets[scenario.reserved_sockets:]
        for pcpu in socket.pcpus
    ]
    if len(usable) < scenario.pcpus:
        raise ValueError(
            f"{scenario.name}: needs {scenario.pcpus} pCPUs, "
            f"machine offers {len(usable)}"
        )
    pool = machine.create_pool("scenario", usable[:scenario.pcpus], 30_000_000)
    built.ctx.pool = pool
    if scenario.reserved_sockets:
        built.ctx.sockets = machine.topology.sockets[scenario.reserved_sockets:]

    for placement in scenario.placements:
        etype = placement.expected_type
        if etype in (VCpuType.CONSPIN, VCpuType.IOINT):
            # scale the VM weight with its size so every vCPU in the
            # scenario has equal weight ("4 vCPUs per pCPU for
            # fairness", Table 4)
            vm = machine.new_vm(
                placement.key, placement.vcpus, weight=256 * placement.vcpus
            )
            for vcpu in vm.vcpus:
                machine.default_pool.remove_vcpu(vcpu)
                pool.add_vcpu(vcpu)
                built.ctx.oracle_types[vcpu.vcpu_id] = etype
            workload = _make_workload(placement, spec, placement.vcpus)
            workload.install(machine, vm)
            built.workloads[placement.key] = workload
        else:
            for unit in range(placement.vcpus):
                vm = machine.new_vm(f"{placement.key}.{unit}", 1)
                vcpu = vm.vcpus[0]
                machine.default_pool.remove_vcpu(vcpu)
                pool.add_vcpu(vcpu)
                built.ctx.oracle_types[vcpu.vcpu_id] = etype
                workload = _make_workload(placement, spec, 1)
                workload.name = f"{placement.key}.{unit}"
                workload.install(machine, vm)
                built.workloads[workload.name] = workload
    return built


__all__ = [
    "AppPlacement",
    "Scenario",
    "SCENARIOS",
    "FIG3_POPULATION",
    "BuiltScenario",
    "build_scenario",
]
