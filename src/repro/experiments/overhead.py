"""§4.3 + Table 6: AQL_Sched overhead and the feature matrix.

Overhead is measured two ways, mirroring the paper's argument:

* **end-to-end** — scenario S5 under full online AQL vs AQL driven by
  a ground-truth type oracle.  The delta bundles every cost of the
  online machinery (monitoring, misclassification transients, extra
  migrations); the paper claims < 1 % degradation overall;
* **mechanism accounting** — decisions taken, pool reconfigurations
  applied and vCPU migrations performed, plus the host wall-clock time
  spent inside the vTRS + clustering code per decision (the O(max(m,n))
  argument of §4.3).

Table 6's qualitative feature matrix is rendered verbatim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import AqlPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC


@dataclass
class OverheadResult:
    #: placement -> online AQL / oracle AQL (1.0 = no overhead)
    relative: dict[str, float] = field(default_factory=dict)
    decisions: int = 0
    reconfigurations: int = 0
    total_migrations: int = 0
    wall_seconds_online: float = 0.0
    wall_seconds_oracle: float = 0.0

    @property
    def mean_overhead(self) -> float:
        """Mean performance cost of online recognition (0.01 = 1 %)."""
        if not self.relative:
            return 0.0
        return sum(self.relative.values()) / len(self.relative) - 1.0


def run_overhead(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1
) -> OverheadResult:
    scenario = SCENARIOS["S5"]
    start = time.perf_counter()
    oracle = run_scenario(
        scenario, AqlPolicy(oracle=True), warmup_ns=warmup_ns,
        measure_ns=measure_ns, seed=seed,
    )
    wall_oracle = time.perf_counter() - start

    online_policy = AqlPolicy()
    start = time.perf_counter()
    online = run_scenario(
        scenario, online_policy, warmup_ns=warmup_ns,
        measure_ns=measure_ns, seed=seed, keep_built=True,
    )
    wall_online = time.perf_counter() - start

    result = OverheadResult(
        wall_seconds_online=wall_online, wall_seconds_oracle=wall_oracle
    )
    for key, oracle_value in oracle.by_placement.items():
        result.relative[key] = online.by_placement[key] / oracle_value
    manager = online_policy.manager
    assert manager is not None
    result.decisions = manager.decisions
    result.reconfigurations = manager.reconfigurations
    if online.built is not None:
        result.total_migrations = sum(
            vcpu.migrations for vcpu in online.built.machine.all_vcpus
        )
    return result


def render_overhead(result: OverheadResult) -> str:
    table = ResultTable(
        "AQL_Sched overhead — online vTRS vs ground-truth oracle"
        " (1.0 = free; paper claims < 1% degradation)",
        ["application", "online / oracle"],
    )
    for key, value in result.relative.items():
        table.add_row(key, value)
    summary = ResultTable(
        "Mechanism accounting",
        ["metric", "value"],
    )
    summary.add_row("mean overhead", f"{result.mean_overhead * 100:+.1f}%")
    summary.add_row("vTRS decisions", result.decisions)
    summary.add_row("pool reconfigurations", result.reconfigurations)
    summary.add_row("vCPU migrations", result.total_migrations)
    return table.render() + "\n\n" + summary.render()


#: Table 6, rendered verbatim from the paper.
TABLE6_FEATURES: tuple[tuple[str, str, str, str, str], ...] = (
    ("vTurbo", "not supported", "IO", "no overhead", "no"),
    ("vSlicer", "not supported", "IO", "no overhead", "no"),
    (
        "Microsliced",
        "not supported",
        "IO, spin-lock",
        "overhead for CPU burn",
        "yes",
    ),
    ("Xen BOOST", "supported", "IO", "no overhead", "no"),
    (
        "AQL_Sched",
        "supported",
        "IO, spin-lock, CPU burn",
        "no overhead",
        "no",
    ),
)


def render_table6() -> str:
    table = ResultTable(
        "Table 6 — feature comparison",
        [
            "solution",
            "dynamic type recognition",
            "handled types",
            "overhead",
            "hardware modification",
        ],
    )
    for row in TABLE6_FEATURES:
        table.add_row(*row)
    return table.render()


__all__ = [
    "OverheadResult",
    "run_overhead",
    "render_overhead",
    "render_table6",
    "TABLE6_FEATURES",
]
