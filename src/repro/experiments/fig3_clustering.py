"""Fig. 3: the two-level clustering worked example.

A four-socket machine (one socket reserved for dom0), 48 vCPUs:
12 IOInt+, 7 ConSpin-, 17 LLCF, 12 LLCO.  The paper's expected layout:

* socket 1 — one 1 ms cluster (trashers: 12 LLCO + 4 IOInt+);
* socket 2 — a 1 ms cluster (8 IOInt+) and a 90 ms cluster (8 LLCF);
* socket 3 — a 90 ms cluster (8 LLCF), a 1 ms cluster (4 ConSpin-) and
  a default 30 ms cluster with the 1 LLCF + 3 ConSpin- spill-over —
  six clusters in total.

This experiment runs the clustering *statically* on oracle types (the
algorithm is deterministic), which is exactly the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import PAPER_BEST_QUANTA
from repro.core.clustering import TypedVCpu, build_pool_plan
from repro.core.types import VCpuType
from repro.experiments.scenarios import FIG3_POPULATION, build_scenario
from repro.hypervisor.pools import PoolPlan
from repro.metrics.tables import ResultTable
from repro.sim.units import MS


@dataclass
class Fig3Result:
    plan: PoolPlan
    #: (pool label, quantum_ms, #pcpus, type -> count)
    clusters: list[tuple[str, int, int, dict[str, int]]]


def run_fig3(seed: int = 0) -> Fig3Result:
    built = build_scenario(FIG3_POPULATION, seed=seed)
    machine = built.machine
    typed = []
    for vcpu in machine.all_vcpus:
        vtype = built.ctx.oracle_types[vcpu.vcpu_id]
        # IOInt+ vCPUs have a dominant LLCO cursor (trashing CGI)
        llco_cur = 80.0 if (
            vtype == VCpuType.IOINT
            and vcpu.vm.name.startswith("IOInt+")
        ) else 0.0
        typed.append(TypedVCpu(vcpu, vtype, llco_cur_avg=llco_cur))
    assert built.ctx.sockets is not None
    # "paper" filler policy: this experiment renders the paper's exact
    # Fig. 3 layout from oracle types (the online manager defaults to
    # the "safe" policy; see repro.core.clustering)
    plan = build_pool_plan(
        machine.topology,
        typed,
        PAPER_BEST_QUANTA,
        default_quantum_ns=30 * MS,
        sockets=built.ctx.sockets,
        filler_policy="paper",
    )
    type_by_vcpu = {tv.vcpu: tv.vtype for tv in typed}
    clusters = []
    for name, pcpus, quantum_ns, vcpus in plan.entries:
        counts: dict[str, int] = {}
        for vcpu in vcpus:
            label = type_by_vcpu[vcpu].value
            counts[label] = counts.get(label, 0) + 1
        clusters.append((name, quantum_ns // MS, len(pcpus), counts))
    return Fig3Result(plan=plan, clusters=clusters)


def render_fig3(result: Fig3Result) -> str:
    table = ResultTable(
        "Fig. 3 — 2-level clustering of 48 vCPUs on 3 usable sockets",
        ["cluster", "quantum", "pCPUs", "members"],
    )
    for name, quantum_ms, npcpus, counts in result.clusters:
        members = ", ".join(f"{n}x{t}" for t, n in sorted(counts.items()))
        table.add_row(name, f"{quantum_ms}ms", npcpus, members or "-")
    return table.render()


__all__ = ["Fig3Result", "run_fig3", "render_fig3"]
