"""Table 3: application types as recognised by vTRS.

Every catalog program runs consolidated at 4 vCPUs/pCPU with quiet
CPU-hog neighbours while the online vTRS watches; the detected type is
compared with the paper's Table 3 classification (which our catalog
encodes as each program's expected type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.hardware.specs import MachineSpec, i7_3770
from repro.hypervisor.machine import Machine
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.profiles import lolcf_profile
from repro.workloads.suites import APP_CATALOG, make_app


@dataclass
class Table3Result:
    detected: dict[str, Optional[VCpuType]] = field(default_factory=dict)
    expected: dict[str, VCpuType] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        if not self.detected:
            return 0.0
        hits = sum(
            1
            for app, got in self.detected.items()
            if got == self.expected[app]
        )
        return hits / len(self.detected)


def recognize_app(
    app: str,
    spec: Optional[MachineSpec] = None,
    duration_ns: int = 2 * SEC,
    seed: int = 5,
) -> Optional[VCpuType]:
    """Run one program under vTRS observation; return the detected type."""
    spec = spec or i7_3770()
    app_spec = APP_CATALOG[app]
    machine = Machine(spec, seed=seed)
    nv = 4 if app_spec.expected_type == VCpuType.CONSPIN else 1
    pcpus = machine.topology.pcpus[:max(1, nv)]
    pool = machine.create_pool("t3", pcpus, 30 * MS)
    vm = machine.new_vm(app, nv, weight=256 * nv)
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)
    make_app(app, spec, vcpus=nv).install(machine, vm)
    for i in range(4 * len(pcpus) - nv):
        dvm = machine.new_vm(f"d{i}", 1)
        machine.default_pool.remove_vcpu(dvm.vcpus[0])
        pool.add_vcpu(dvm.vcpus[0])
        CpuBurnWorkload(f"d{i}", lolcf_profile(spec)).install(machine, dvm)
    vtrs = VTRS(machine).attach()
    machine.run(duration_ns)
    types = {vtrs.type_of(vcpu) for vcpu in vm.vcpus}
    if len(types) == 1:
        return types.pop()
    # mixed verdicts across the VM's vCPUs: majority wins
    votes: dict[Optional[VCpuType], int] = {}
    for vcpu in vm.vcpus:
        verdict = vtrs.type_of(vcpu)
        votes[verdict] = votes.get(verdict, 0) + 1
    return max(votes, key=votes.get)


def run_table3(
    apps: Optional[Sequence[str]] = None,
    spec: Optional[MachineSpec] = None,
    duration_ns: int = 2 * SEC,
    seed: int = 5,
) -> Table3Result:
    result = Table3Result()
    for app in apps or sorted(APP_CATALOG):
        result.expected[app] = APP_CATALOG[app].expected_type
        result.detected[app] = recognize_app(
            app, spec=spec, duration_ns=duration_ns, seed=seed
        )
    return result


def render_table3(result: Table3Result) -> str:
    table = ResultTable(
        f"Table 3 — vTRS type recognition"
        f" (accuracy {result.accuracy * 100:.0f}%)",
        ["application", "paper type", "vTRS verdict", "match"],
    )
    for app in sorted(result.detected):
        got = result.detected[app]
        expected = result.expected[app]
        table.add_row(
            app,
            expected.value,
            got.value if got else "-",
            "yes" if got == expected else "NO",
        )
    return table.render()


__all__ = ["Table3Result", "recognize_app", "run_table3", "render_table3"]
