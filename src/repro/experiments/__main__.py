"""Command-line experiment runner.

Regenerate any table/figure of the paper without the benchmark harness:

    python -m repro.experiments list
    python -m repro.experiments fig2 [--fast]
    python -m repro.experiments all [--fast] --jobs 4

``--fast`` cuts simulation durations (~4x) for a quick look; the
default durations match the benchmark suite.

Sweep execution goes through the :mod:`repro.exec` engine: ``--jobs
N`` (or the ``REPRO_JOBS`` environment variable) fans independent
cells out over work-stealing worker processes, and results are
memoised under ``.repro_cache/`` so re-running a sweep replays cached
cells instead of re-simulating.  ``--no-cache`` disables the cache,
``--cache-dir`` moves it.  ``--run-dir DIR`` (or ``REPRO_RUN_DIR``)
makes the run *durable*: every completed cell is journalled to a
content-addressed run directory, so a killed run — Ctrl-C, SIGKILL,
OOM — resumes with only unfinished cells re-executed (automatically,
since the run id derives from the planned sweep; ``--resume RUN-ID``
pins a directory explicitly).  ``--events-out PATH`` additionally
streams the engine's typed event narration as JSONL.  ``--serve
[HOST:]PORT`` (or ``REPRO_SERVE``) attaches the read-only ops plane:
live ``/metrics``, ``/status`` and ``/events`` over HTTP, a flight
recorder that dumps the last events into the run directory when the
run dies, and a slowest-cells table after checkpointed runs.  Per-cell
progress, the cache hit/miss summary and the engine tallies go to
stderr; stdout carries only the experiment tables, so serial,
parallel, cached and resumed runs print byte-identical results.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional

from repro.exec import (
    JsonlSink,
    ProgressPrinter,
    ResultCache,
    RunDirError,
    SweepRunner,
)
from repro.sim.units import MS, SEC


def _fig2(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig2_calibration import render_fig2, run_fig2

    measure = 1 * SEC if fast else 3 * SEC
    return render_fig2(
        run_fig2(warmup_ns=500 * MS, measure_ns=measure, runner=runner)
    )


def _fig3(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig3_clustering import render_fig3, run_fig3

    return render_fig3(run_fig3())


def _fig4(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig4_vtrs import render_fig4, run_fig4

    return render_fig4(run_fig4(periods=20 if fast else 50))


def _fig5(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig5_validation import (
        FIG5_APPS,
        render_fig5,
        run_fig5,
    )

    apps = FIG5_APPS[:6] if fast else FIG5_APPS
    measure = 1 * SEC if fast else 2 * SEC
    return render_fig5(
        run_fig5(
            apps=apps, warmup_ns=500 * MS, measure_ns=measure, runner=runner
        )
    )


def _fig6(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig6_effectiveness import render_fig6, run_fig6

    warmup = 1 * SEC if fast else 2 * SEC
    measure = 2 * SEC if fast else 4 * SEC
    return render_fig6(
        run_fig6(warmup_ns=warmup, measure_ns=measure, runner=runner)
    )


def _fig7(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig7_customization import render_fig7, run_fig7

    warmup = 1 * SEC if fast else 2 * SEC
    measure = 2 * SEC if fast else 4 * SEC
    return render_fig7(
        run_fig7(warmup_ns=warmup, measure_ns=measure, runner=runner)
    )


def _fig8(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fig8_comparison import render_fig8, run_fig8

    warmup = 1 * SEC if fast else 2 * SEC
    measure = 2 * SEC if fast else 4 * SEC
    return render_fig8(
        run_fig8(warmup_ns=warmup, measure_ns=measure, runner=runner)
    )


def _table3(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.table3_recognition import (
        render_table3,
        run_table3,
    )
    from repro.workloads.suites import APP_CATALOG

    apps = sorted(APP_CATALOG)[:8] if fast else None
    duration = 1 * SEC if fast else 2 * SEC
    return render_table3(run_table3(apps=apps, duration_ns=duration))


def _overhead(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.overhead import (
        render_overhead,
        render_table6,
        run_overhead,
    )

    warmup = 1 * SEC if fast else 2 * SEC
    measure = 2 * SEC if fast else 4 * SEC
    text = render_overhead(run_overhead(warmup_ns=warmup, measure_ns=measure))
    return text + "\n\n" + render_table6()


def _sync(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.sync_primitives import (
        render_sync_primitives,
        run_sync_primitives,
    )

    measure = 1 * SEC if fast else 2 * SEC
    return render_sync_primitives(run_sync_primitives(measure_ns=measure))


def _window(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.window_sensitivity import (
        render_window_sensitivity,
        run_window_sensitivity,
    )

    warmup = 1 * SEC if fast else 2 * SEC
    measure = 2 * SEC if fast else 4 * SEC
    return render_window_sensitivity(
        run_window_sensitivity(
            warmup_ns=warmup, measure_ns=measure, runner=runner
        )
    )


def _random(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.random_mixes import (
        render_random_mixes,
        run_random_mixes,
    )

    mixes = 3 if fast else 5
    measure = 2 * SEC if fast else 3 * SEC
    return render_random_mixes(
        run_random_mixes(mixes=mixes, measure_ns=measure, runner=runner)
    )


def _ablations(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.ablations import (
        render_boost_ablation,
        render_lock_handoff_ablation,
        render_reuse_ablation,
        run_boost_ablation,
        run_lock_handoff_ablation,
        run_reuse_ablation,
    )

    measure = 1 * SEC if fast else 2 * SEC
    parts = [
        render_boost_ablation(
            run_boost_ablation(measure_ns=measure, runner=runner)
        ),
        render_lock_handoff_ablation(
            run_lock_handoff_ablation(measure_ns=measure, runner=runner)
        ),
        render_reuse_ablation(
            run_reuse_ablation(measure_ns=measure, runner=runner)
        ),
    ]
    return "\n\n".join(parts)


def _churn(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.churn import render_churn, run_churn

    return render_churn(run_churn(fast=fast, runner=runner))


#: the last telemetry-carrying run, kept for the artifact flags
#: (``--telemetry-out`` / ``--trace-out`` export from the same
#: simulation the report printed); set by the ``telemetry`` and
#: ``fleet`` families
LAST_TELEMETRY_REPORT = None

#: families whose report carries an exportable telemetry record
TELEMETRY_FAMILIES = ("telemetry", "fleet")


def _fleet(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.fleet import render_fleet, run_fleet

    global LAST_TELEMETRY_REPORT
    report = run_fleet(fast=fast, runner=runner)
    LAST_TELEMETRY_REPORT = report
    return render_fleet(report)


def _telemetry(fast: bool, runner: Optional[SweepRunner]) -> str:
    from repro.experiments.telemetry_report import (
        render_telemetry_report,
        run_telemetry_report,
    )

    global LAST_TELEMETRY_REPORT
    warmup = 500 * MS if fast else 1 * SEC
    measure = 1 * SEC if fast else 2 * SEC
    report = run_telemetry_report(
        warmup_ns=warmup, measure_ns=measure, with_trace=True
    )
    LAST_TELEMETRY_REPORT = report
    return render_telemetry_report(report)


EXPERIMENTS: dict[
    str, tuple[str, Callable[[bool, Optional[SweepRunner]], str]]
] = {
    "fig2": ("Fig. 2 — quantum calibration panels + lock inset", _fig2),
    "fig3": ("Fig. 3 — two-level clustering worked example", _fig3),
    "fig4": ("Fig. 4 — online vTRS in action", _fig4),
    "fig5": ("Fig. 5 — per-application robustness", _fig5),
    "fig6": ("Fig. 6 + Table 5 — AQL vs Xen (single & multi socket)", _fig6),
    "fig7": ("Fig. 7 — quantum-customisation ablation", _fig7),
    "fig8": ("Fig. 8 — vs vTurbo/vSlicer/Microsliced", _fig8),
    "table3": ("Table 3 — vTRS recognition over the catalog", _table3),
    "overhead": ("§4.3 + Table 6 — overhead & feature matrix", _overhead),
    "ablations": ("extra ablations: BOOST, lock handoff, reuse curve",
                  _ablations),
    "sync": ("§3.2 ablation: spin locks vs blocking semaphores", _sync),
    "window": ("§3.3.1: vTRS window-size sensitivity", _window),
    "random": ("generalisation: AQL on random colocation mixes", _random),
    "churn": ("dynamics: VM churn, phase changes & faults, AQL vs Xen",
              _churn),
    "fleet": ("datacenter fleet: AQL-aware placement vs bin packing "
              "under diurnal traffic", _fleet),
    "telemetry": ("decision audit: per-vCPU type-flip 'why' table + "
                  "pool-change ledger", _telemetry),
}


def build_runner(args: argparse.Namespace) -> SweepRunner:
    """A SweepRunner from CLI flags (also the CI entry point's shape)."""
    cache = None
    if not args.no_cache:
        cache = (
            ResultCache(root=args.cache_dir) if args.cache_dir
            else ResultCache()
        )
    progress = None if args.quiet else ProgressPrinter()
    sinks = (
        [JsonlSink(args.events_out)] if args.events_out is not None else []
    )
    return SweepRunner(
        jobs=args.jobs,
        cache=cache,
        progress=progress,
        run_root=args.run_dir,
        run_id=args.resume,
        sinks=sinks,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="which experiment to run ('list' to enumerate, 'all' for every one)",
    )
    parser.add_argument(
        "--fast", action="store_true", help="shorter simulations (~4x faster)"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep cells (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-simulate; do not read or write .repro_cache/",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    parser.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="journal completed cells under DIR so a killed run can "
             "resume (default: $REPRO_RUN_DIR, else no checkpointing)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="RUN-ID",
        help="resume this run id under --run-dir (errors if missing; "
             "without the flag, identical sweeps resume automatically)",
    )
    parser.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the engine's typed event stream as JSONL to PATH",
    )
    parser.add_argument(
        "--serve", default=None, metavar="[HOST:]PORT",
        help="serve live /metrics, /status and /events for this run "
             "over HTTP (default: $REPRO_SERVE, else no server; "
             "port 0 picks a free port)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with a single experiment: also run that family's "
             "representative traced cell (scheduling timeline + telemetry "
             "spans) and write a chrome://tracing JSON to PATH",
    )
    parser.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="with the telemetry or fleet experiment: write that run's "
             "telemetry record (instruments, series, spans, audit) as "
             "JSONL to PATH",
    )
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="DEST",
        help="capture a cProfile of the experiment runs; DEST '-' (the "
             "default) prints a pstats table to stderr, a path ending in "
             ".prof writes the binary dump for snakeviz/pstats, any other "
             "path gets the text table",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    try:
        runner = build_runner(args)
    except ValueError as exc:  # bad --jobs / REPRO_JOBS
        parser.error(str(exc))
    from repro.ops import attach_ops, resolve_serve_spec

    try:
        serve_spec = resolve_serve_spec(args.serve)
    except ValueError as exc:  # bad --serve / REPRO_SERVE
        parser.error(str(exc))
    # the ops plane attaches whenever there is something to observe: a
    # live HTTP endpoint, or a run directory the flight recorder can
    # dump into; a bare `python -m repro.experiments fig2` stays free
    plane = None
    if serve_spec is not None or args.run_dir is not None:
        plane = attach_ops(runner.engine, spec=serve_spec)
        if plane.server is not None:
            # stderr: stdout stays byte-identical with/without --serve
            print(f"[ops] serving at {plane.server.url}", file=sys.stderr)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # fail fast — before spending minutes running the experiments
    if args.telemetry_out is not None and (
        len(names) != 1 or names[0] not in TELEMETRY_FAMILIES
    ):
        parser.error(
            "--telemetry-out requires a single telemetry-carrying "
            f"experiment ({', '.join(TELEMETRY_FAMILIES)})"
        )
    if args.trace_out is not None and len(names) != 1:
        parser.error("--trace-out requires a single experiment")

    def run_experiments() -> None:
        for name in names:
            description, experiment = EXPERIMENTS[name]
            print(f"\n=== {name}: {description} ===")
            start = time.perf_counter()
            print(experiment(args.fast, runner))
            print(f"[{name} took {time.perf_counter() - start:.1f}s]")

    try:
        if args.profile is not None:
            from repro.perf import capture

            with capture() as prof:
                run_experiments()
            # stderr: stdout stays byte-identical with/without --profile
            prof.write(args.profile)
            if args.profile != "-":
                print(f"[profile] wrote {args.profile}", file=sys.stderr)
        else:
            run_experiments()
    except KeyboardInterrupt:
        # the engine already flushed its journal and swept temp files;
        # tell the user how to pick the run back up
        engine = runner.engine
        if engine.run_dir is not None:
            print(
                f"\n[engine] interrupted after {engine.stats['ran']} "
                f"cell(s); resume with --run-dir {engine.run_root} "
                f"--resume {engine.run_dir.run_id}",
                file=sys.stderr,
            )
        else:
            print(
                "\n[engine] interrupted (no --run-dir: nothing was "
                "checkpointed)",
                file=sys.stderr,
            )
        if plane is not None:
            plane.close()
        engine.close()
        return 130
    except RunDirError as exc:
        print(f"[engine] {exc}", file=sys.stderr)
        if plane is not None:
            plane.close()
        return 2
    except BaseException:
        # anything else dying mid-run: capture the last events before
        # the traceback unwinds (the dump lands in the run directory)
        if plane is not None:
            plane.recorder.dump("unhandled-exception")
            plane.close()
        raise
    if args.telemetry_out is not None:
        from repro.telemetry import write_jsonl

        report = LAST_TELEMETRY_REPORT
        assert report is not None  # guaranteed: a TELEMETRY_FAMILIES run
        count = write_jsonl(
            args.telemetry_out, report.telemetry,
            end_time_ns=report.end_time_ns,
        )
        # stderr: stdout must stay byte-identical with/without the flag
        print(
            f"[telemetry] wrote {count} records to {args.telemetry_out}",
            file=sys.stderr,
        )
    if args.trace_out is not None:
        if names[0] == "telemetry":
            # export the report's own run: its trace recorder is live
            from repro.metrics.chrome_trace import write_chrome_trace

            report = LAST_TELEMETRY_REPORT
            assert report is not None and report.trace is not None
            count = write_chrome_trace(
                args.trace_out, report.trace,
                end_time=report.end_time_ns,
                telemetry=report.telemetry.tracer,
            )
        else:
            from repro.experiments.tracing import export_experiment_trace

            count = export_experiment_trace(
                names[0], args.trace_out, fast=args.fast
            )
        # stderr: stdout must stay byte-identical with/without the flag
        print(
            f"[trace] wrote {count} events to {args.trace_out}",
            file=sys.stderr,
        )
    if runner.cache is not None:
        print(f"[cache] {runner.cache.stats.as_line()}", file=sys.stderr)
    engine = runner.engine
    if engine.stats["sweeps"]:
        run_id = (
            engine.run_dir.run_id if engine.run_dir is not None else "-"
        )
        print(
            f"[engine] sweeps={engine.stats['sweeps']} "
            f"ran={engine.stats['ran']} hits={engine.stats['hit']} "
            f"resumed={engine.stats['resumed']} run={run_id}",
            file=sys.stderr,
        )
    if engine.run_dir is not None:
        # the where-did-the-time-go table, from the journal's per-cell
        # resource profiles (stderr: stdout carries only the tables)
        from repro.ops import read_journal, render_slowest

        journal = read_journal(engine.run_dir.path / "journal.jsonl")
        executed = [r for r in journal if float(r.get("seconds", 0)) > 0]
        if executed:
            print(f"[ops] {render_slowest(executed, k=5)}", file=sys.stderr)
    if plane is not None:
        plane.close()
    engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
