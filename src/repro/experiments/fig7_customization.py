"""Fig. 7: the benefit of quantum-length customisation.

The Fig. 3 population runs with AQL's clustering active but the
per-cluster quantum customisation *discarded* — every pool forced to a
uniform small (1 ms), medium (30 ms) or large (90 ms) quantum.  Values
are normalised over the full AQL run (clustering + customisation), so
a bar above 1.0 means customisation helped that application class
(the paper's reading: true for almost all types; the small quantum
comes close except for LLCF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.baselines import AqlPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import FIG3_POPULATION
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec import SweepRunner

UNIFORM_QUANTA_MS = {"small": 1, "medium": 30, "large": 90}


@dataclass
class Fig7Result:
    #: variant -> placement -> value normalised over full AQL
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)


def run_fig7(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1,
    runner: Optional["SweepRunner"] = None,
) -> Fig7Result:
    from repro.exec import Cell, SweepRunner

    runner = runner or SweepRunner()
    scenario = FIG3_POPULATION
    labels = list(UNIFORM_QUANTA_MS)
    policies = [AqlPolicy()] + [
        AqlPolicy(uniform_quantum_ns=UNIFORM_QUANTA_MS[label] * MS)
        for label in labels
    ]
    runs = runner.run([
        Cell(
            run_scenario,
            dict(
                scenario=scenario, policy=policy, warmup_ns=warmup_ns,
                measure_ns=measure_ns, seed=seed,
            ),
            label=f"fig7:{policy.name}",
        )
        for policy in policies
    ])
    full, uniforms = runs[0], runs[1:]
    result = Fig7Result()
    for label, uniform in zip(labels, uniforms):
        result.normalized[label] = {
            key: uniform.by_placement[key] / full.by_placement[key]
            for key in full.by_placement
        }
    return result


def render_fig7(result: Fig7Result) -> str:
    placements = sorted(
        {key for values in result.normalized.values() for key in values}
    )
    table = ResultTable(
        "Fig. 7 — clustering-only with uniform quantum, normalised over"
        " full AQL (> 1 means customisation helped)",
        ["type"] + [f"{label} ({q}ms)" for label, q in UNIFORM_QUANTA_MS.items()],
    )
    for key in placements:
        table.add_row(
            key,
            *(
                result.normalized[label].get(key, float("nan"))
                for label in UNIFORM_QUANTA_MS
            ),
        )
    return table.render()


__all__ = ["Fig7Result", "run_fig7", "render_fig7", "UNIFORM_QUANTA_MS"]
