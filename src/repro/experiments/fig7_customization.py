"""Fig. 7: the benefit of quantum-length customisation.

The Fig. 3 population runs with AQL's clustering active but the
per-cluster quantum customisation *discarded* — every pool forced to a
uniform small (1 ms), medium (30 ms) or large (90 ms) quantum.  Values
are normalised over the full AQL run (clustering + customisation), so
a bar above 1.0 means customisation helped that application class
(the paper's reading: true for almost all types; the small quantum
comes close except for LLCF).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AqlPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import FIG3_POPULATION
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC

UNIFORM_QUANTA_MS = {"small": 1, "medium": 30, "large": 90}


@dataclass
class Fig7Result:
    #: variant -> placement -> value normalised over full AQL
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)


def run_fig7(
    warmup_ns: int = 2 * SEC, measure_ns: int = 4 * SEC, seed: int = 1
) -> Fig7Result:
    scenario = FIG3_POPULATION
    full = run_scenario(
        scenario, AqlPolicy(), warmup_ns=warmup_ns, measure_ns=measure_ns,
        seed=seed,
    )
    result = Fig7Result()
    for label, quantum_ms in UNIFORM_QUANTA_MS.items():
        uniform = run_scenario(
            scenario,
            AqlPolicy(uniform_quantum_ns=quantum_ms * MS),
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            seed=seed,
        )
        result.normalized[label] = {
            key: uniform.by_placement[key] / full.by_placement[key]
            for key in full.by_placement
        }
    return result


def render_fig7(result: Fig7Result) -> str:
    placements = sorted(
        {key for values in result.normalized.values() for key in values}
    )
    table = ResultTable(
        "Fig. 7 — clustering-only with uniform quantum, normalised over"
        " full AQL (> 1 means customisation helped)",
        ["type"] + [f"{label} ({q}ms)" for label, q in UNIFORM_QUANTA_MS.items()],
    )
    for key in placements:
        table.add_row(
            key,
            *(
                result.normalized[label].get(key, float("nan"))
                for label in UNIFORM_QUANTA_MS
            ),
        )
    return table.render()


__all__ = ["Fig7Result", "run_fig7", "render_fig7", "UNIFORM_QUANTA_MS"]
