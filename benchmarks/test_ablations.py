"""Bench: ablations of the design choices DESIGN.md calls out.

Not in the paper — these isolate the mechanisms the reproduction is
built on: Credit's BOOST fast-path, the spin-lock handoff policy, and
the cache model's reuse curve.
"""

from repro.experiments.ablations import (
    render_boost_ablation,
    render_lock_handoff_ablation,
    render_reuse_ablation,
    run_boost_ablation,
    run_lock_handoff_ablation,
    run_reuse_ablation,
)


def test_boost_ablation(once, sweep_runner):
    result = once(lambda: run_boost_ablation(runner=sweep_runner))
    print()
    print(render_boost_ablation(result))
    # with BOOST, exclusive IO is quantum-agnostic...
    on_1 = result.latency[(True, 1)]
    on_90 = result.latency[(True, 90)]
    assert abs(on_1 - on_90) / on_1 < 0.15
    # ...without it, latency becomes quantum-bound at large quanta
    off_90 = result.latency[(False, 90)]
    assert off_90 > 3 * on_90


def test_lock_handoff_ablation(once, sweep_runner):
    result = once(lambda: run_lock_handoff_ablation(runner=sweep_runner))
    print()
    print(render_lock_handoff_ablation(result))
    # FIFO (ticket) handoff loses at every quantum once consolidated —
    # a grant to a descheduled waiter stalls the lock...
    for quantum_ms in (1, 30, 90):
        assert (
            result.ns_per_job[("fifo", quantum_ms)]
            > result.ns_per_job[("hybrid", quantum_ms)]
        )
    # ...and it amplifies quantum sensitivity: the 90 ms/1 ms cost
    # ratio is far larger under FIFO than under test-and-set barging
    fifo_ratio = (
        result.ns_per_job[("fifo", 90)] / result.ns_per_job[("fifo", 1)]
    )
    hybrid_ratio = (
        result.ns_per_job[("hybrid", 90)] / result.ns_per_job[("hybrid", 1)]
    )
    assert fifo_ratio > hybrid_ratio


def test_sync_primitives_ablation(once):
    from repro.experiments.sync_primitives import (
        render_sync_primitives,
        run_sync_primitives,
    )

    result = once(run_sync_primitives)
    print()
    print(render_sync_primitives(result))
    # §3.2: spinning degrades with the quantum, blocking barely does
    assert result.degradation("spin") > 1.5
    assert result.degradation("semaphore") < 1.5
    assert result.degradation("spin") > result.degradation("semaphore")


def test_reuse_ablation(once):
    result = once(run_reuse_ablation)
    print()
    print(render_reuse_ablation(result))
    # long quanta help LLCF under every reuse curve...
    for ratio in result.quantum_sensitivity.values():
        assert ratio > 1.0
    # ...and the uniform-access curve exaggerates the effect relative
    # to strong hot-subset reuse
    assert (
        result.quantum_sensitivity[1.0]
        > result.quantum_sensitivity[0.3]
    )
