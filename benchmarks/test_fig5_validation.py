"""Bench: Fig. 5 — calibration robustness across the whole benchmark set.

22 applications x 5 quantum lengths at 4 vCPUs/pCPU; each application
should reach its best performance at its type's calibrated quantum.
"""

from repro.experiments.fig5_validation import (
    FIG5_APPS,
    render_fig5,
    run_fig5,
)
from repro.sim.units import SEC


def test_fig5_validation(once):
    result = once(
        lambda: run_fig5(warmup_ns=1 * SEC, measure_ns=2 * SEC)
    )
    print()
    print(render_fig5(result))

    matches = sum(1 for app in FIG5_APPS if result.matches_calibration(app))
    # the paper's claim holds across the suite; we allow a small number
    # of borderline programs (jittered parameters sit near class edges)
    assert matches >= len(FIG5_APPS) - 2, (
        f"only {matches}/{len(FIG5_APPS)} apps peaked at their type's quantum"
    )
