#!/usr/bin/env python
"""Run the simulator benchmark suite and record ``BENCH_sim.json``.

This is the perf-trajectory driver: it runs the pytest-benchmark
scenarios in ``benchmarks/test_simulator_performance.py`` under one
simulator kernel, derives the two throughput figures the project tracks
— **events/sec** and **virtual-seconds-per-wall-second** — per scenario,
and writes them to ``BENCH_sim.json`` (schema below).  CI runs it with
``--quick --compare BENCH_sim.json`` to fail any change that slows the
small-quantum regime by more than 25%.

    python benchmarks/run_bench.py                    # full, writes BENCH_sim.json
    python benchmarks/run_bench.py --quick            # CI smoke (1 round, short runs)
    python benchmarks/run_bench.py --kernel heap      # measure the heap-only kernel
    python benchmarks/run_bench.py --quick \
        --compare BENCH_sim.json --max-regression 0.25

A second suite tracks the fleet layer: ``--suite fleet`` runs
``benchmarks/test_fleet_performance.py`` (32 hosts through the
bulk-synchronous epoch loop), derives **epochs/sec** and
**simulated-VM-seconds per wall-second**, writes ``BENCH_fleet.json``
and gates on the ``vm_sec_per_wall_sec`` of its single scenario:

    python benchmarks/run_bench.py --suite fleet      # writes BENCH_fleet.json
    python benchmarks/run_bench.py --suite fleet --quick \
        --compare BENCH_fleet.json --max-regression 0.25

Output schema (``schema: 1``)::

    {
      "schema": 1,
      "kernel": "wheel",
      "quick": false,
      "scenarios": {
        "test_small_quantum_simulation_speed": {
          "wall_seconds_min": 0.021,      # fastest round
          "events": 2088,                 # events fired per round
          "virtual_ns": 500000000,        # virtual time per round
          "events_per_sec": 95000.0,      # events / wall_seconds_min
          "virtual_sec_per_wall_sec": 22.9
        },
        ...
      }
    }

Timings use the *fastest* round (minimum wall time): scheduler noise
only ever makes a round slower, so the minimum is the most reproducible
estimate of the code's cost.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The scenario the CI regression gate watches (the paper's expensive
#: 1 ms-quantum regime — the reason the fast-path kernel exists).
GATED_SCENARIO = "test_small_quantum_simulation_speed"

#: Benchmark suites the driver knows how to run and gate.  ``sim`` is
#: the single-host engine (events/sec), ``fleet`` the multi-host epoch
#: loop (simulated-VM-seconds per wall-second at 32 hosts).
SUITES = {
    "sim": {
        "file": "test_simulator_performance.py",
        "out": "BENCH_sim.json",
        "gated": GATED_SCENARIO,
        "metric": "events_per_sec",
        "unit": "ev/s",
    },
    "fleet": {
        "file": "test_fleet_performance.py",
        "out": "BENCH_fleet.json",
        "gated": "test_fleet_epoch_throughput",
        "metric": "vm_sec_per_wall_sec",
        "unit": "vm-sec/wallsec",
    },
}


def run_suite(quick: bool, kernel: str, bench_file: str) -> dict:
    """Run pytest-benchmark and return its parsed ``--benchmark-json``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_SIM_KERNEL"] = kernel
        env["REPRO_BENCH_QUICK"] = "1" if quick else "0"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / bench_file),
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            "-q",
        ]
        result = subprocess.run(command, env=env, cwd=REPO_ROOT)
        if result.returncode != 0:
            raise SystemExit(f"benchmark suite failed (exit {result.returncode})")
        with open(json_path, encoding="utf-8") as handle:
            return json.load(handle)


def summarize(raw: dict, quick: bool, kernel: str) -> dict:
    """Reduce pytest-benchmark output to the BENCH_*.json schema."""
    scenarios: dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        wall_min = bench["stats"]["min"]
        extra = bench.get("extra_info", {})
        events = extra.get("events")
        virtual_ns = extra.get("virtual_ns")
        entry: dict = {"wall_seconds_min": wall_min}
        if events is not None:
            entry["events"] = events
            entry["events_per_sec"] = events / wall_min
        if virtual_ns is not None:
            entry["virtual_ns"] = virtual_ns
            entry["virtual_sec_per_wall_sec"] = virtual_ns / 1e9 / wall_min
        epochs = extra.get("epochs")
        vm_virtual_ns = extra.get("vm_virtual_ns")
        if epochs is not None:
            entry["epochs"] = epochs
            entry["epochs_per_sec"] = epochs / wall_min
        if vm_virtual_ns is not None:
            entry["vm_virtual_ns"] = vm_virtual_ns
            entry["vm_sec_per_wall_sec"] = vm_virtual_ns / 1e9 / wall_min
        scenarios[name] = entry
    return {
        "schema": 1,
        "kernel": kernel,
        "quick": quick,
        "scenarios": scenarios,
    }


def compare(
    current: dict, baseline: dict, max_regression: float, suite: dict
) -> int:
    """Regression gate on the suite's headline scenario; exit code."""
    gated, metric, unit = suite["gated"], suite["metric"], suite["unit"]
    base_rate = baseline.get("scenarios", {}).get(gated, {}).get(metric)
    cur_rate = current.get("scenarios", {}).get(gated, {}).get(metric)
    if base_rate is None or cur_rate is None:
        print(
            f"[bench] cannot compare: {gated} missing {metric} "
            f"(baseline={base_rate}, current={cur_rate})",
            file=sys.stderr,
        )
        return 2
    floor = base_rate * (1.0 - max_regression)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    print(
        f"[bench] {gated}: {cur_rate:,.1f} {unit} vs baseline "
        f"{base_rate:,.1f} {unit} (floor {floor:,.1f}, "
        f"-{max_regression:.0%} tolerance) -> {verdict}",
        file=sys.stderr,
    )
    return 0 if verdict == "OK" else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the simulator benchmarks and write BENCH_sim.json."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 1 round and shorter simulated durations",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="sim",
        help="benchmark suite: 'sim' (single-host engine, BENCH_sim.json) "
             "or 'fleet' (multi-host epoch loop, BENCH_fleet.json)",
    )
    parser.add_argument(
        "--kernel", choices=("heap", "wheel"), default="wheel",
        help="simulator kernel to measure (default: wheel)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="where to write the summary (default: the suite's baseline "
             "file at repo root)",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a committed baseline JSON and exit non-zero "
             "if the suite's gated scenario regressed",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRACTION",
        help="allowed events/sec drop vs the baseline (default: 0.25)",
    )
    args = parser.parse_args(argv)
    suite = SUITES[args.suite]
    if args.out is None:
        args.out = str(REPO_ROOT / suite["out"])

    # resolve before running: --compare BENCH_sim.json with the default
    # --out must diff against the *committed* baseline, not the rewrite
    baseline = None
    if args.compare is not None:
        baseline_path = Path(args.compare)
        if not baseline_path.exists():
            print(f"[bench] no baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)

    raw = run_suite(
        quick=args.quick, kernel=args.kernel, bench_file=suite["file"]
    )
    summary = summarize(raw, quick=args.quick, kernel=args.kernel)
    out_path = Path(args.out)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in sorted(summary["scenarios"].items()):
        parts = [f"[bench] {name}: {entry['wall_seconds_min']:.4f}s"]
        for key, unit in (
            ("events_per_sec", "ev/s"),
            ("virtual_sec_per_wall_sec", "vsec/wallsec"),
            ("epochs_per_sec", "epochs/s"),
            ("vm_sec_per_wall_sec", "vm-sec/wallsec"),
        ):
            value = entry.get(key)
            if value is not None:
                parts.append(f"{value:,.1f} {unit}")
        print(" ".join(parts), file=sys.stderr)
    print(f"[bench] wrote {out_path}", file=sys.stderr)

    if baseline is not None:
        return compare(summary, baseline, args.max_regression, suite)
    return 0


if __name__ == "__main__":
    sys.exit(main())
