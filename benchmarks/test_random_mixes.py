"""Bench: generalisation — AQL_Sched on random colocation mixes."""

from repro.core.types import VCpuType
from repro.experiments.random_mixes import (
    render_random_mixes,
    run_random_mixes,
)


def test_random_mixes(once, sweep_runner):
    result = once(lambda: run_random_mixes(mixes=5, runner=sweep_runner))
    print()
    print(render_random_mixes(result))

    # across random mixes, AQL never loses on average
    assert result.overall_mean < 1.02
    # the latency class wins decisively wherever it appears
    io_values = result.by_class.get(VCpuType.IOINT, [])
    if io_values:
        assert max(io_values) < 0.9
    # quantum-agnostic classes are never badly harmed
    for vtype in (VCpuType.LOLCF, VCpuType.LLCO):
        for value in result.by_class.get(vtype, []):
            assert value < 1.30
