"""Bench: simulator throughput (not a paper artifact).

These use pytest-benchmark conventionally — multiple timed rounds — to
track the engine's own speed: virtual-seconds per wall-second for a
representative consolidated host, and raw event-loop throughput.
Regressions here make every experiment slower.
"""

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.sim.engine import Simulator, noop
from repro.sim.units import MS
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile


def test_event_loop_throughput(benchmark):
    """Raw queue: schedule-and-fire 10k events."""

    def run():
        sim = Simulator()
        for t in range(10_000):
            sim.at(t, noop)
        sim.run_until(10_000)
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def test_consolidated_host_simulation_speed(benchmark):
    """One virtual second of a busy 16-vCPU-on-4-pCPU host."""

    def run():
        machine = Machine(seed=0, default_quantum_ns=30 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:4], 30 * MS)
        spec = machine.spec
        io_vm = machine.new_vm("io", 4, weight=1024, pool=pool)
        IoWorkload.heterogeneous("io", spec, vcpus=4).install(machine, io_vm)
        for i in range(12):
            vm = machine.new_vm(f"cpu{i}", 1, pool=pool)
            profile = llcf_profile(spec) if i % 2 else llco_profile(spec)

            def hog(thread, p=profile):
                while True:
                    yield Compute(5_000_000, profile=p)

            vm.guest.add_thread(GuestThread(f"t{i}", hog))
        machine.run(1_000 * MS)
        return machine.sim.events_fired

    fired = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert fired > 1_000


def test_small_quantum_simulation_speed(benchmark):
    """The expensive regime: 1 ms quanta mean 30x the scheduling events."""

    def run():
        machine = Machine(seed=0, default_quantum_ns=1 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 1 * MS)
        for i in range(8):
            vm = machine.new_vm(f"cpu{i}", 1, pool=pool)

            def hog(thread):
                while True:
                    yield Compute(5_000_000)

            vm.guest.add_thread(GuestThread(f"t{i}", hog))
        machine.run(500 * MS)
        return machine.sim.events_fired

    fired = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert fired > 2_000
