"""Bench: simulator throughput (not a paper artifact).

These use pytest-benchmark conventionally — multiple timed rounds — to
track the engine's own speed: virtual-seconds per wall-second for a
representative consolidated host, and raw event-loop throughput.
Regressions here make every experiment slower.

Each benchmark records ``extra_info["events"]`` (events fired per
round) and ``extra_info["virtual_ns"]`` (virtual time simulated per
round) so ``benchmarks/run_bench.py`` can derive events/sec and
virtual-seconds-per-wall-second for ``BENCH_sim.json``.

Setting ``REPRO_BENCH_QUICK=1`` shrinks rounds and simulated durations
for the CI smoke job; rates (events/sec) stay comparable because the
workloads are steady-state.
"""

import os

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.sim.engine import Simulator, noop
from repro.sim.units import MS
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile

_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
_ROUNDS = 1 if _QUICK else 3


def test_event_loop_throughput(benchmark):
    """Raw queue: schedule-and-fire 10k events."""

    def run():
        sim = Simulator()
        for t in range(10_000):
            sim.at(t, noop)
        sim.run_until(10_000)
        return sim.events_fired

    fired = benchmark(run)
    benchmark.extra_info["events"] = fired
    benchmark.extra_info["virtual_ns"] = 10_000
    assert fired == 10_000


def test_consolidated_host_simulation_speed(benchmark):
    """One virtual second of a busy 16-vCPU-on-4-pCPU host."""
    duration_ns = (250 if _QUICK else 1_000) * MS

    def run():
        machine = Machine(seed=0, default_quantum_ns=30 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:4], 30 * MS)
        spec = machine.spec
        io_vm = machine.new_vm("io", 4, weight=1024, pool=pool)
        IoWorkload.heterogeneous("io", spec, vcpus=4).install(machine, io_vm)
        for i in range(12):
            vm = machine.new_vm(f"cpu{i}", 1, pool=pool)
            profile = llcf_profile(spec) if i % 2 else llco_profile(spec)

            def hog(thread, p=profile):
                while True:
                    yield Compute(5_000_000, profile=p)

            vm.guest.add_thread(GuestThread(f"t{i}", hog))
        machine.run(duration_ns)
        return machine.sim.events_fired

    fired = benchmark.pedantic(run, rounds=_ROUNDS, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = fired
    benchmark.extra_info["virtual_ns"] = duration_ns
    assert fired > (250 if _QUICK else 1_000)


def test_small_quantum_simulation_speed(benchmark):
    """The expensive regime: 1 ms quanta mean 30x the scheduling events."""
    duration_ns = (250 if _QUICK else 500) * MS

    def run():
        machine = Machine(seed=0, default_quantum_ns=1 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 1 * MS)
        for i in range(8):
            vm = machine.new_vm(f"cpu{i}", 1, pool=pool)

            def hog(thread):
                while True:
                    yield Compute(5_000_000)

            vm.guest.add_thread(GuestThread(f"t{i}", hog))
        machine.run(duration_ns)
        return machine.sim.events_fired

    fired = benchmark.pedantic(run, rounds=_ROUNDS, iterations=1, warmup_rounds=0)
    benchmark.extra_info["events"] = fired
    benchmark.extra_info["virtual_ns"] = duration_ns
    assert fired > (1_000 if _QUICK else 2_000)
