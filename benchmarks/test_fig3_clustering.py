"""Bench: Fig. 3 — the two-level clustering worked example."""

from repro.experiments.fig3_clustering import render_fig3, run_fig3


def test_fig3_clustering(once):
    result = once(run_fig3)
    print()
    print(render_fig3(result))

    populated = [c for c in result.clusters if c[3]]
    assert len(populated) == 6  # the paper's six clusters
    quanta = sorted(q for _, q, _, m in populated)
    assert quanta == [1, 1, 1, 30, 90, 90]
    # socket 1: every vCPU 1ms-QLC (12 LLCO + 4 IOInt+)
    s1 = [c for c in populated if c[0].startswith("s1.")]
    assert len(s1) == 1 and s1[0][1] == 1
    # the default cluster holds exactly the paper's spill: 1 LLCF + 3 ConSpin
    default = [c for c in populated if c[1] == 30][0]
    assert default[3] == {"LLCF": 1, "ConSpin": 3}
