"""Bench: §3.3.1 — vTRS window-size sensitivity on scenario S5."""

from repro.experiments.window_sensitivity import (
    render_window_sensitivity,
    run_window_sensitivity,
)


def test_window_sensitivity(once, sweep_runner):
    result = once(lambda: run_window_sensitivity(runner=sweep_runner))
    print()
    print(render_window_sensitivity(result))

    # churn never *increases* with the window (allow small-sample noise)
    assert result.migrations[8] <= result.migrations[1] + 5
    assert result.reconfigurations[8] <= result.reconfigurations[1] + 2
    # the paper's operating point n=4 performs at least comparably to
    # the twitchy n=1
    assert result.mean_normalized(4) <= result.mean_normalized(1) * 1.10
    # and every window still beats native Xen on average
    for n in result.normalized:
        assert result.mean_normalized(n) < 1.0
