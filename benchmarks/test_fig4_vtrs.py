"""Bench: Fig. 4 — the online vTRS over 50 monitoring periods."""

from repro.experiments.fig4_vtrs import REPRESENTATIVES, render_fig4, run_fig4
from repro.workloads.suites import APP_CATALOG


def test_fig4_vtrs(once):
    result = once(lambda: run_fig4(periods=50))
    print()
    print(render_fig4(result))

    for app in REPRESENTATIVES:
        assert result.detected[app] == APP_CATALOG[app].expected_type
        # the app's own cursor dominates "most of the time" (paper)
        assert result.dominance[app] > 0.6
