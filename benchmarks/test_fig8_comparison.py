"""Bench: Fig. 8 — AQL_Sched vs vTurbo / vSlicer / Microsliced on S5.

The paper's conclusion: no comparator wins everywhere; AQL_Sched
matches the best comparator on every application type.
"""

from repro.experiments.fig8_comparison import render_fig8, run_fig8
from repro.sim.units import SEC


def test_fig8_comparison(once, sweep_runner):
    result = once(
        lambda: run_fig8(
            warmup_ns=2 * SEC, measure_ns=4 * SEC, seed=1,
            runner=sweep_runner,
        )
    )
    print()
    print(render_fig8(result))

    aql = result.normalized["aql"]
    micro = result.normalized["microsliced"]
    vturbo = result.normalized["vturbo"]
    vslicer = result.normalized["vslicer"]

    # every IO-focused comparator helps IO
    assert vturbo["specweb2009"] < 1.0
    assert vslicer["specweb2009"] < 1.0
    # Microsliced helps IO and spin but hurts the LLC-friendly class
    assert micro["specweb2009"] < 1.0
    assert micro["facesim"] < 1.0
    assert micro["bzip2"] > aql["bzip2"]
    # vTurbo/vSlicer do not help the spin class the way AQL does
    assert aql["facesim"] <= min(vturbo["facesim"], vslicer["facesim"]) * 1.05
    # headline: AQL at least roughly matches the best comparator per app
    for app in aql:
        best_other = min(
            micro[app], vturbo[app], vslicer[app]
        )
        assert aql[app] <= best_other * 1.25, (
            f"{app}: aql={aql[app]:.2f} vs best comparator {best_other:.2f}"
        )
