"""Bench: Fig. 7 — benefit of the quantum-customisation step.

Clustering stays on; every pool is forced to a uniform small/medium/
large quantum.  Values are normalised over full AQL: above 1.0 means
customisation helped that class.
"""

from repro.experiments.fig7_customization import render_fig7, run_fig7
from repro.sim.units import SEC


def test_fig7_customization(once, sweep_runner):
    result = once(
        lambda: run_fig7(
            warmup_ns=2 * SEC, measure_ns=4 * SEC, seed=1,
            runner=sweep_runner,
        )
    )
    print()
    print(render_fig7(result))

    # medium (30 ms everywhere) hurts the latency/spin classes
    medium = result.normalized["medium"]
    assert medium["IOInt+"] > 1.5
    assert medium["ConSpin-"] > 1.0
    # large (90 ms everywhere) hurts them even more
    large = result.normalized["large"]
    assert large["IOInt+"] > medium["IOInt+"] * 0.9
    # small (1 ms everywhere) is close to AQL except for LLCF
    small = result.normalized["small"]
    assert small["LLCF"] > 1.1  # LLCF needs its large quantum
    assert small["IOInt+"] < 1.2  # but IO is fine with small
