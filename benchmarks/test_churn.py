"""Bench: the churn stories — online adaptation, AQL vs fixed Xen.

The quantitative claims behind the dynamics subsystem:

* AQL notices every churn event within a few decide intervals and the
  pool layout re-converges within a bounded number of decisions;
* after the dust settles, AQL has recovered the static-mix win — the
  heterogeneous-IO VMs do strictly better than under fixed 30 ms Xen,
  and no workload class is badly harmed by the re-clustering churn;
* the fixed-quantum baseline, by construction, never adapts (its
  scheduler-side metrics are all None).
"""

from repro.experiments.churn import make_stories, render_churn, run_churn

#: AQL decides every window(4) x period(30 ms) = 120 ms; three decide
#: intervals is a generous "noticed promptly" bound
DETECTION_BOUND_MS = 360.0
#: decisions until the plan signature stops changing within the window
CONVERGENCE_BOUND = 5
#: pool moves chargeable to a single event (machine has <= 7 vCPUs)
MIGRATION_BOUND = 8


def test_churn_adaptation(once, sweep_runner):
    result = once(lambda: run_churn(fast=False, runner=sweep_runner))
    print()
    print(render_churn(result))

    stories = {story.name: story for story in make_stories(fast=False)}
    for story_name, runs in result.items():
        timeline = stories[story_name].timeline
        xen, aql = runs["xen"], runs["aql"]
        label = f"story {story_name}"

        # every scripted event actually fired, under both policies
        assert xen.events_applied == len(timeline), label
        assert aql.events_applied == len(timeline), label

        # a fixed quantum has no adaptation machinery
        assert xen.decisions == 0 and xen.reconfigurations == 0, label
        for record in xen.records:
            assert record.detection_ms is None, label
            assert record.convergence_periods is None, label
            assert record.stable is None, label

        # AQL reconverges within bounded monitoring periods
        for record in aql.records:
            where = f"{label}: {record.event}"
            if record.detection_ms is not None:
                assert record.detection_ms <= DETECTION_BOUND_MS, where
            assert record.convergence_periods is not None, where
            assert record.convergence_periods <= CONVERGENCE_BOUND, where
            assert record.migrations <= MIGRATION_BOUND, where
        # by the end of the tail window the layout has settled
        assert aql.records[-1].stable is True, label

        # post-churn, AQL has recovered the static-mix win: the
        # quantum-sensitive (heterogeneous IO) VMs beat fixed Xen and
        # the compute classes are not badly harmed by re-clustering
        assert aql.final.keys() == xen.final.keys(), label
        for name, mode in aql.final_modes.items():
            ratio = aql.final[name] / xen.final[name]
            where = f"{label}: {name} ({mode})"
            if mode == "io":
                assert ratio < 0.95, f"{where}: AQL should win ({ratio:.3f})"
            else:
                assert ratio < 1.35, f"{where}: harmed by churn ({ratio:.3f})"
