"""Bench: Fig. 6 + Table 5 — AQL_Sched vs native Xen.

Left: the five Table 4 colocation scenarios on the single-socket
machine.  Right: the Fig. 3 population on the 4-socket machine.
"""

from repro.experiments.fig6_effectiveness import (
    Fig6Result,
    render_fig6,
    run_fig6_multi,
    run_fig6_single,
)
from repro.sim.units import SEC
from repro.workloads.suites import APP_CATALOG

RUN = dict(warmup_ns=2 * SEC, measure_ns=4 * SEC, seed=1)

#: which placements are quantum-sensitive (must not regress under AQL)
SENSITIVE = {"IOInt", "ConSpin"}


def test_fig6_single_socket(once, sweep_runner):
    single = once(lambda: run_fig6_single(runner=sweep_runner, **RUN))
    print()
    print(render_fig6(Fig6Result(single_socket=single)))

    for name, comparison in single.items():
        for key, value in comparison.normalized.items():
            vtype = APP_CATALOG[key].expected_type.value
            if vtype in ("IOInt", "ConSpin"):
                assert value < 0.95, f"{name}/{key}: AQL should win ({value})"
            elif vtype == "LLCF":
                assert value < 1.10, f"{name}/{key}: LLCF regressed ({value})"
            else:  # quantum-agnostic classes stay near parity
                assert value < 1.25, f"{name}/{key}: agnostic harmed ({value})"


def test_fig6_multi_socket(once, sweep_runner):
    multi = once(lambda: run_fig6_multi(runner=sweep_runner, **RUN))
    print()
    print(render_fig6(Fig6Result(single_socket={}, multi_socket=multi)))

    # IOInt+ and ConSpin- gain from their 1 ms clusters
    assert multi.normalized["IOInt+"] < 0.9
    assert multi.normalized["ConSpin-"] < 1.0
    # trashers are quantum-agnostic: near parity
    assert multi.normalized["LLCO"] < 1.2
    # the paper's LLCF spread: units in the disturber-free 90 ms
    # cluster do better than the unit spilled into the 30 ms default
    llcf_units = {
        unit: value
        for unit, value in multi.per_unit.items()
        if unit.startswith("LLCF")
    }
    assert min(llcf_units.values()) < max(llcf_units.values())
