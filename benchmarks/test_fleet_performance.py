"""Bench: fleet epoch throughput at 32 hosts (not a paper artifact).

Tracks the cost of the bulk-synchronous fleet loop — the quantity that
bounds how large a placement study the repo can run.  One benchmark
round drives a 32-host fleet through the ``weekday`` story under the
AQL-aware placer and records ``extra_info["epochs"]`` (barriers
crossed) and ``extra_info["vm_virtual_ns"]`` (simulated VM-time:
resident VMs x epoch wall, summed over epochs) so
``benchmarks/run_bench.py --suite fleet`` can derive **epochs/sec**
and **simulated-VM-seconds per wall-second** for ``BENCH_fleet.json``.

``REPRO_BENCH_QUICK=1`` shrinks epoch count and durations for the CI
smoke job; the host count stays at 32 so the per-barrier fan-out cost
being measured is the real one.  ``REPRO_JOBS`` shards the host cells
exactly as it does for experiments — the committed baseline is serial.
"""

import os

from repro.exec import SweepRunner
from repro.fleet import STORIES, FleetSimulation, FleetSpec, make_placer
from repro.sim.units import MS

_QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: the shape the bench pins: 32 hosts x 8 slots = 256 VM slots
BENCH_SPEC = FleetSpec(
    hosts=32,
    host_class="medium",
    vcpu_ratio=2,
    epochs=2 if _QUICK else 3,
    warmup_ns=(40 if _QUICK else 80) * MS,
    epoch_ns=(120 if _QUICK else 240) * MS,
    migration_lag_ns=(20 if _QUICK else 40) * MS,
    migration_budget=8,
)


def test_fleet_epoch_throughput(benchmark):
    """One fleet run: 32 hosts, diurnal weekday traffic, AQL placement."""

    def run():
        return FleetSimulation(
            BENCH_SPEC,
            STORIES["weekday"],
            make_placer("aql_aware"),
            seed=0,
            runner=SweepRunner(),
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    epoch_wall_ns = BENCH_SPEC.warmup_ns + BENCH_SPEC.epoch_ns
    vm_epochs = sum(metrics.vms for metrics in result.epochs)
    benchmark.extra_info["epochs"] = BENCH_SPEC.epochs
    benchmark.extra_info["vm_virtual_ns"] = vm_epochs * epoch_wall_ns
    assert len(result.epochs) == BENCH_SPEC.epochs
    assert result.peak_vms >= 128  # the 0.99 peak of a 256-slot fleet
    assert result.units > 0
