"""Benchmark-harness configuration.

Every benchmark reproduces one table or figure of the paper.  They run
full simulations, so each is executed exactly once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
printed table (run with ``pytest benchmarks/ --benchmark-only -s``),
and the benchmark timing records the experiment's wall-clock cost.

Sweep-based benchmarks take the session-scoped ``sweep_runner``
fixture: by default it runs serially with no cache (timings stay
honest), but setting ``REPRO_JOBS=8`` fans the sweep cells of each
figure out over worker processes — the whole harness then scales with
the machine instead of a single core.
"""

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner


@pytest.fixture(scope="session")
def sweep_runner():
    """Shared sweep engine: serial unless ``REPRO_JOBS`` says otherwise.

    Deliberately cache-less — a benchmark that replays cached results
    would report a meaningless wall-clock time.
    """
    from repro.exec import SweepRunner

    return SweepRunner()
