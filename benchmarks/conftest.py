"""Benchmark-harness configuration.

Every benchmark reproduces one table or figure of the paper.  They run
full simulations, so each is executed exactly once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the
printed table (run with ``pytest benchmarks/ --benchmark-only -s``),
and the benchmark timing records the experiment's wall-clock cost.
"""

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
