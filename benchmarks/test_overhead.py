"""Bench: §4.3 — AQL_Sched overhead + Table 6 feature matrix."""

from repro.experiments.overhead import (
    render_overhead,
    render_table6,
    run_overhead,
)
from repro.sim.units import SEC


def test_overhead(once):
    result = once(
        lambda: run_overhead(warmup_ns=2 * SEC, measure_ns=4 * SEC, seed=1)
    )
    print()
    print(render_overhead(result))
    print()
    print(render_table6())

    # the paper claims < 1% degradation; we allow a few % because our
    # online/oracle comparison also includes misclassification
    # transients during warm-up
    assert result.mean_overhead < 0.05
    assert result.decisions > 0
    assert result.reconfigurations >= 1
