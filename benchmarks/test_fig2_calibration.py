"""Bench: Fig. 2 — the quantum-length calibration (panels a-f + inset).

Regenerates the paper's calibration series: normalised performance per
application type across quantum lengths and consolidation ratios, the
lock-duration inset, and the derived best quantum per type.
"""

from repro.core.calibration import PAPER_BEST_QUANTA
from repro.core.types import VCpuType
from repro.experiments.fig2_calibration import render_fig2, run_fig2
from repro.sim.units import MS, SEC


def test_fig2_calibration(once, sweep_runner):
    result = once(lambda: run_fig2(
        warmup_ns=1 * SEC, measure_ns=3 * SEC, runner=sweep_runner
    ))
    print()
    print(render_fig2(result))

    # shape assertions (see EXPERIMENTS.md)
    hetero = result.normalized_series("io_hetero", 4)
    assert hetero[1] < 0.5  # paper: ~62% improvement at 1 ms
    conspin = result.normalized_series("conspin", 4)
    assert min(conspin, key=conspin.get) == 1
    llcf = result.normalized_series("llcf", 4)
    assert min(llcf, key=llcf.get) in (60, 90)
    # lock duration grows with the quantum
    durations = result.lock_duration_ns
    assert durations[90] > durations[1]
    # the derived best quanta match the paper's
    for vtype, expected in PAPER_BEST_QUANTA.items():
        assert result.best_quanta[vtype] == expected, vtype
