"""Bench: Table 3 — vTRS type recognition across the full catalog."""

from repro.experiments.table3_recognition import render_table3, run_table3
from repro.sim.units import SEC


def test_table3_recognition(once):
    result = once(lambda: run_table3(duration_ns=2 * SEC))
    print()
    print(render_table3(result))
    # the paper's Table 3 has every program correctly classified;
    # we tolerate one borderline program across the 31-entry catalog
    assert result.accuracy >= 0.96
