#!/usr/bin/env python3
"""Calibrate the best quantum per application type for a platform.

The paper's §3.4 calibration, runnable against any machine spec: sweep
quantum lengths for each application type and report the best quantum
(or "agnostic").  Here we calibrate a hypothetical small host with a
4 MB LLC to show how the results are platform-dependent — a smaller LLC
makes the LLCF class more fragile, but the *structure* (IO/spin want
1 ms, LLCF wants long quanta) is stable.

Run:  python examples/calibrate_platform.py            (fast sweep)
      python examples/calibrate_platform.py --full     (paper-length)
"""

import sys
from dataclasses import replace

from repro.core.calibration import run_calibration
from repro.hardware.specs import CacheSpec, i7_3770
from repro.metrics.tables import ResultTable, format_quantum
from repro.sim.units import SEC


def main() -> None:
    full = "--full" in sys.argv
    measure = 3 * SEC if full else 1 * SEC
    kinds = None if full else ("io_hetero", "conspin", "llcf", "lolcf", "llco")
    quanta = (1, 10, 30, 60, 90) if full else (1, 30, 90)
    consolidations = (2, 4) if full else (4,)

    small_host = replace(
        i7_3770(),
        name="small-llc host",
        llc=CacheSpec(4 * 1024 * 1024, hit_ns=12.0, miss_ns=80.0),
    )

    for spec in (i7_3770(), small_host):
        print(f"\ncalibrating {spec.name} "
              f"(LLC {spec.llc.capacity_bytes // (1024 * 1024)} MB)...")
        from repro.core.calibration import CALIBRATION_KINDS, KIND_FOR_TYPE

        result = run_calibration(
            spec=spec,
            warmup_ns=1 * SEC,
            measure_ns=measure,
            seed=11,
            kinds=kinds or CALIBRATION_KINDS,
            quanta_ms=quanta,
            consolidations=consolidations,
        )
        quanta_label = "/".join(str(q) for q in quanta)
        table = ResultTable(
            f"best quantum per type on {spec.name}",
            ["type", "best quantum", f"normalised series ({quanta_label} ms)"],
        )
        for vtype, quantum in result.best_quanta.items():
            kind = KIND_FOR_TYPE[vtype]
            if kinds is not None and kind not in kinds:
                continue
            series = result.normalized_series(kind, consolidations[-1])
            rendered = " ".join(f"{series[q]:.2f}" for q in sorted(series))
            table.add_row(vtype.value, format_quantum(quantum), rendered)
        print(table.render())


if __name__ == "__main__":
    main()
