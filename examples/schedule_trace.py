#!/usr/bin/env python3
"""Visualise what the scheduler actually did: a terminal Gantt chart.

Traces a small consolidated host for half a second under the default
30 ms quantum and again under a 5 ms quantum, reconstructs each pCPU's
schedule, and draws both — the quantum length is immediately visible
in the stripe widths, and the IO vCPU's BOOST preemptions show up as
thin slivers inside the hogs' slots.

Run:  python examples/schedule_trace.py
"""

from repro.guest.phases import Compute, WaitEvent
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.metrics.timeline import (
    build_timeline,
    render_gantt,
    scheduling_delays,
)
from repro.sim.tracing import TraceRecorder
from repro.sim.units import MS
from repro.workloads.profiles import llcf_profile, lolcf_profile


def run(quantum_ns: int) -> None:
    machine = Machine(
        seed=11,
        default_quantum_ns=quantum_ns,
        trace=TraceRecorder(enabled=True),
    )
    pool = machine.create_pool("p", machine.topology.pcpus[:2], quantum_ns)
    spec = machine.spec

    profiles = [llcf_profile(spec), lolcf_profile(spec)]
    for i in range(5):
        vm = machine.new_vm(f"hog{i}", 1, pool=pool)

        def hog(thread, p=profiles[i % 2]):
            while True:
                yield Compute(5_000_000, profile=p)

        vm.guest.add_thread(GuestThread(f"h{i}", hog))

    io_vm = machine.new_vm("io", 1, pool=pool)
    port = machine.new_port(io_vm.vcpus[0], "port")

    def server(thread):
        while True:
            yield WaitEvent(port)
            yield Compute(50_000)

    io_vm.guest.add_thread(GuestThread("srv", server))

    def send():
        port.post(machine.sim.now)
        machine.sim.after(20 * MS, send)

    machine.sim.after(3 * MS, send)
    machine.run(500 * MS)

    timeline = build_timeline(machine.trace, machine.sim.now)
    print(f"\n--- quantum = {quantum_ns // MS} ms ---")
    print(render_gantt(timeline, start=100 * MS, end=400 * MS, width=100))
    delays = scheduling_delays(timeline, "io/v0")
    if delays:
        mean = sum(delays) / len(delays)
        print(f"io vCPU wake-to-dispatch: mean {mean / 1e3:.1f} us "
              f"over {len(delays)} wakes (BOOST at work)")


def main() -> None:
    run(30 * MS)
    run(5 * MS)


if __name__ == "__main__":
    main()
