#!/usr/bin/env python3
"""Quickstart: a consolidated host, four application types, AQL_Sched.

Builds an i7-3770-like machine, colocates a web service, a parallel
spin-synchronised program, a cache-friendly program and a trashing
program at 4 vCPUs per pCPU, attaches AQL_Sched, and prints what the
scheduler detected and how each application performed compared with a
plain Xen-Credit run.

Run:  python examples/quickstart.py
"""

from repro import AqlScheduler, Machine, make_app
from repro.hardware.specs import i7_3770
from repro.metrics.tables import ResultTable
from repro.sim.units import MS, SEC

APPS = [
    # (name, vCPUs) — one entry per VM
    ("specweb2009", 1),  # IOInt: latency-critical web service
    ("facesim", 2),      # ConSpin: spin-synchronised parallel program
    ("bzip2", 1),        # LLCF: working set fits the LLC
    ("mcf", 2),          # LLCO: trashing working set
    ("hmmer", 2),        # LoLCF: L2-resident compute
]


def run(use_aql: bool) -> dict[str, float]:
    spec = i7_3770()
    machine = Machine(spec, seed=7)
    pool = machine.create_pool("apps", machine.topology.pcpus[:2], 30 * MS)

    workloads = {}
    for name, vcpus in APPS:
        vm = machine.new_vm(name, vcpus, weight=256 * vcpus, pool=pool)
        workloads[name] = make_app(name, spec, vcpus=vcpus).install(machine, vm)

    manager = None
    if use_aql:
        # restrict AQL to the pool's cores so the consolidation ratio
        # (and the comparison with Xen) stays apples-to-apples
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()

    machine.run(2 * SEC)  # warm-up: caches settle, vTRS converges
    for workload in workloads.values():
        workload.begin_measurement()
    machine.run(4 * SEC)
    machine.sync()

    if manager is not None:
        print("\nAQL_Sched detected types:")
        for vm in machine.vms:
            types = {
                str(manager.vtrs.type_of(vcpu)) for vcpu in vm.vcpus
            }
            print(f"  {vm.name:14s} -> {', '.join(sorted(types))}")
        print("pool layout:", [
            f"{p.name}@{p.quantum_ns // MS}ms({len(p.pcpus)}p/{len(p.vcpus)}v)"
            for p in machine.pools if p.vcpus
        ])

    return {name: w.result().value for name, w in workloads.items()}


def main() -> None:
    print("running native Xen Credit (30 ms quantum)...")
    xen = run(use_aql=False)
    print("running AQL_Sched...")
    aql = run(use_aql=True)

    table = ResultTable(
        "\nPerformance, AQL_Sched normalised over Xen (lower is better)",
        ["application", "xen (raw)", "aql (raw)", "normalised"],
    )
    for name in xen:
        table.add_row(name, xen[name], aql[name], aql[name] / xen[name])
    print(table.render())


if __name__ == "__main__":
    main()
