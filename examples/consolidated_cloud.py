#!/usr/bin/env python3
"""A consolidated-cloud scenario under four schedulers.

Runs the paper's scenario S5 (4 IOInt + 4 ConSpin + 4 LLCF + 2 LLCO +
2 LoLCF vCPUs on 4 pCPUs) under native Xen, Microsliced, vSlicer,
vTurbo and AQL_Sched, and prints a Fig. 8-style comparison.

Run:  python examples/consolidated_cloud.py
"""

from repro.baselines import (
    AqlPolicy,
    Microsliced,
    VSlicer,
    VTurbo,
    XenCredit,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.tables import ResultTable
from repro.sim.units import SEC


def main() -> None:
    scenario = SCENARIOS["S5"]
    policies = [XenCredit(), Microsliced(), VSlicer(), VTurbo(), AqlPolicy()]
    kwargs = dict(warmup_ns=2 * SEC, measure_ns=4 * SEC, seed=1)

    runs = {}
    for policy in policies:
        print(f"running S5 under {policy.name}...")
        runs[policy.name] = run_scenario(scenario, policy, **kwargs)

    xen = runs["xen"].by_placement
    table = ResultTable(
        "\nScenario S5, normalised over native Xen (lower is better)",
        ["application"] + [p.name for p in policies[1:]],
    )
    for app in xen:
        table.add_row(
            app,
            *(
                runs[p.name].by_placement[app] / xen[app]
                for p in policies[1:]
            ),
        )
    print(table.render())

    aql = runs["aql"]
    print("\nAQL_Sched's clusters:")
    for name, quantum_ns, npcpus, nvcpus in aql.pool_layout:
        if nvcpus:
            print(
                f"  {name}: quantum {quantum_ns // 1_000_000}ms, "
                f"{npcpus} pCPUs, {nvcpus} vCPUs"
            )


if __name__ == "__main__":
    main()
