#!/usr/bin/env python3
"""Watch vTRS re-type a vCPU whose workload changes behaviour.

The paper's argument for *online* recognition (§3.3): "the hypothesis
of a fixed type for a VM vCPU during its overall lifetime is not
realistic".  This example runs a VM whose single vCPU alternates
between a trashing phase (mcf-like), an L2-resident phase (sjeng-like)
and an IO phase — and prints the cursor window plus the detected type
every few monitoring periods.

Run:  python examples/online_recognition.py
"""

from repro import Machine, VTRS
from repro.core.types import VCpuType
from repro.guest.phases import Compute, WaitEvent
from repro.guest.thread import GuestThread
from repro.sim.units import MS, SEC
from repro.workloads.profiles import llco_profile, lolcf_profile


def main() -> None:
    machine = Machine(seed=3)
    pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
    vm = machine.new_vm("shape-shifter", 1, pool=pool)

    spec = machine.spec
    port = machine.new_port(vm.vcpus[0], "io")

    def reply_then_next_request():
        """Closed-loop client: next request 5 ms after each response."""
        machine.sim.after(5 * MS, lambda: port.post(machine.sim.now))

    def body(thread):
        while True:
            # ~1 s of trashing
            yield Compute(600_000_000, profile=llco_profile(spec))
            # ~1 s of L2-resident compute
            yield Compute(3_000_000_000, profile=lolcf_profile(spec))
            # ~1 s of IO handling (closed loop: requests only flow
            # while the worker is in its IO phase)
            for _ in range(150):
                wait = WaitEvent(port)
                yield wait
                yield Compute(100_000)
                reply_then_next_request()

    vm.guest.add_thread(GuestThread("worker", body), vm.vcpus[0])
    machine.sim.after(1 * MS, lambda: port.post(machine.sim.now))

    vtrs = VTRS(machine).attach()
    machine.start()

    print(f"{'time':>8}  {'detected':10}  cursor averages")
    for step in range(30):
        machine.run(120 * MS)  # one vTRS decision window
        vcpu = vm.vcpus[0]
        detected = vtrs.type_of(vcpu)
        averages = vtrs.cursor_averages(vcpu)
        rendered = "  ".join(
            f"{t.value}:{averages[t]:5.1f}" for t in VCpuType
        )
        print(f"{machine.sim.now / 1e9:7.2f}s  {str(detected):10}  {rendered}")


if __name__ == "__main__":
    main()
