"""Smoke tests: every experiment module runs end to end (short runs)
and renders the paper-style tables without errors."""

import pytest

from repro.experiments.fig2_calibration import render_fig2, run_fig2
from repro.experiments.fig3_clustering import render_fig3, run_fig3
from repro.experiments.fig4_vtrs import render_fig4, run_fig4
from repro.experiments.fig5_validation import render_fig5, run_fig5
from repro.experiments.fig6_effectiveness import (
    compare_scenario,
    render_fig6,
    run_fig6_multi,
)
from repro.experiments.fig7_customization import render_fig7, run_fig7
from repro.experiments.fig8_comparison import render_fig8, run_fig8
from repro.experiments.overhead import (
    render_overhead,
    render_table6,
    run_overhead,
)
from repro.experiments.scenarios import SCENARIOS
from repro.experiments.table3_recognition import render_table3, run_table3
from repro.experiments.fig6_effectiveness import Fig6Result
from repro.sim.units import MS, SEC

FAST = dict(warmup_ns=500 * MS, measure_ns=1 * SEC)


class TestFig2:
    def test_small_sweep_renders(self):
        result = run_fig2(warmup_ns=300 * MS, measure_ns=600 * MS, seed=3)
        text = render_fig2(result)
        assert "Fig. 2 (a) Excl. IOInt" in text
        assert "lock duration" in text
        assert "best quantum" in text


class TestFig3:
    def test_reproduces_paper_layout(self):
        result = run_fig3()
        populated = [c for c in result.clusters if c[3]]
        assert len(populated) == 6
        quanta = sorted(q for _, q, _, members in populated if members)
        assert quanta == [1, 1, 1, 30, 90, 90]
        text = render_fig3(result)
        assert "cluster" in text

    def test_socket1_is_one_1ms_cluster(self):
        result = run_fig3()
        socket1 = [c for c in result.clusters if c[0].startswith("s1.")]
        assert len(socket1) == 1
        name, quantum_ms, npcpus, members = socket1[0]
        assert quantum_ms == 1 and npcpus == 4
        assert members.get("LLCO") == 12 and members.get("IOInt") == 4

    def test_default_cluster_spill(self):
        """Socket 3's mixed pCPU: 1 LLCF + 3 ConSpin at 30 ms."""
        result = run_fig3()
        default = [
            c for c in result.clusters if c[1] == 30 and c[3]
        ]
        assert len(default) == 1
        members = default[0][3]
        assert members == {"LLCF": 1, "ConSpin": 3}


class TestFig4:
    def test_all_representatives_detected(self):
        result = run_fig4(periods=20, seed=5)
        for app, detected in result.detected.items():
            assert detected is not None
        text = render_fig4(result)
        assert "specweb2009" in text


class TestFig5:
    def test_subset_of_apps(self):
        result = run_fig5(
            apps=("hmmer", "bzip2", "specweb2009"),
            warmup_ns=500 * MS,
            measure_ns=1 * SEC,
            seed=7,
        )
        assert result.normalized[("bzip2", 30)] == pytest.approx(1.0)
        assert result.matches_calibration("hmmer")  # agnostic: trivially
        text = render_fig5(result)
        assert "bzip2" in text


class TestFig6:
    def test_single_scenario_comparison(self):
        comparison = compare_scenario(SCENARIOS["S3"], seed=1, **FAST)
        assert set(comparison.normalized) == {"bzip2", "libquantum", "hmmer"}
        result = Fig6Result(single_socket={"S3": comparison})
        assert "S3" in render_fig6(result)

    def test_multi_socket_runs(self):
        comparison = run_fig6_multi(seed=1, **FAST)
        assert set(comparison.normalized) == {
            "LLCO", "IOInt+", "LLCF", "ConSpin-"
        }


class TestFig7:
    def test_three_uniform_variants(self):
        result = run_fig7(seed=1, **FAST)
        assert set(result.normalized) == {"small", "medium", "large"}
        text = render_fig7(result)
        assert "small" in text


class TestFig8:
    def test_all_policies_compared(self):
        result = run_fig8(seed=1, **FAST)
        assert set(result.normalized) == {
            "vturbo", "microsliced", "vslicer", "aql"
        }
        text = render_fig8(result)
        assert "aql" in text


class TestTable3:
    def test_subset_recognition(self):
        result = run_table3(
            apps=("astar", "libquantum", "hmmer", "specweb2009"),
            duration_ns=1500 * MS,
        )
        assert result.accuracy == 1.0
        assert "astar" in render_table3(result)


class TestWindowSensitivity:
    def test_single_window_runs(self):
        from repro.experiments.window_sensitivity import (
            render_window_sensitivity,
            run_window_sensitivity,
        )

        result = run_window_sensitivity(
            windows=(4,), warmup_ns=500 * MS, measure_ns=1 * SEC
        )
        assert 4 in result.normalized
        assert result.reconfigurations[4] >= 1
        assert "vTRS window" in render_window_sensitivity(result)


class TestRandomMixes:
    def test_two_mixes_run(self):
        from repro.core.types import VCpuType
        from repro.experiments.random_mixes import (
            render_random_mixes,
            run_random_mixes,
        )

        result = run_random_mixes(
            mixes=2, warmup_ns=500 * MS, measure_ns=1 * SEC
        )
        assert len(result.per_mix) == 2
        assert result.by_class  # at least one class sampled
        assert "overall mean" in render_random_mixes(result)


class TestOverheadAndTable6:
    def test_overhead_run(self):
        result = run_overhead(seed=1, **FAST)
        assert result.decisions > 0
        assert result.relative
        text = render_overhead(result)
        assert "overhead" in text.lower()

    def test_table6_matrix(self):
        text = render_table6()
        assert "AQL_Sched" in text
        assert "vTurbo" in text
        assert "Microsliced" in text
